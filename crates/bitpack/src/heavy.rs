//! Heavy-compression baseline, standing in for the Vectorwise storage the paper
//! compares against in Table 1 and Table 2.
//!
//! Vectorwise compresses whole columns with PFOR (patched frame of reference),
//! PFOR-DELTA and PDICT: values are bit-packed at a width chosen for the *common
//! case*, and outliers go to an exception ("patch") list. This compresses better
//! than byte-aligned Data Blocks (the paper reports ~25 % smaller), but scans must
//! decompress whole column ranges — there is no cheap positional access and no early
//! SARGable filtering on the compressed form.

use crate::horizontal::{bits_for, BitPackedColumn};

/// A whole-column heavy-compressed representation.
#[derive(Debug, Clone, PartialEq)]
pub enum HeavyColumn {
    /// Patched frame-of-reference: `value = reference + packed[i]`, except for
    /// positions listed in `exceptions`.
    Pfor {
        /// The frame of reference (column minimum of the non-outlier values).
        reference: i64,
        /// Bit-packed deltas for the common case.
        packed: BitPackedColumn,
        /// Outliers: `(position, actual value)`.
        exceptions: Vec<(u32, i64)>,
    },
    /// Dictionary compression for strings with bit-packed codes.
    Dict {
        /// Sorted distinct values.
        dict: Vec<String>,
        /// Bit-packed dictionary codes.
        packed: BitPackedColumn,
    },
}

impl HeavyColumn {
    /// Compress an integer column with PFOR. The packed bit width is chosen so that
    /// roughly 99 % of the values fit; the rest become exceptions.
    pub fn compress_ints(values: &[i64]) -> HeavyColumn {
        assert!(!values.is_empty(), "cannot compress an empty column");
        let reference = *values.iter().min().expect("non-empty");
        let mut deltas: Vec<u64> = values.iter().map(|&v| (v - reference) as u64).collect();
        // choose the 99th-percentile delta as the packing limit
        let mut sorted = deltas.clone();
        sorted.sort_unstable();
        let p99 = sorted[(sorted.len() - 1) * 99 / 100];
        let bits = bits_for(p99).min(32);
        let limit = if bits >= 32 {
            u32::MAX as u64
        } else {
            (1u64 << bits) - 1
        };

        let mut exceptions = Vec::new();
        for (i, delta) in deltas.iter_mut().enumerate() {
            if *delta > limit {
                exceptions.push((i as u32, values[i]));
                *delta = 0;
            }
        }
        let small: Vec<u32> = deltas.iter().map(|&d| d as u32).collect();
        HeavyColumn::Pfor {
            reference,
            packed: BitPackedColumn::pack(&small, bits),
            exceptions,
        }
    }

    /// Compress a string column with a dictionary and bit-packed codes.
    pub fn compress_strings(values: &[String]) -> HeavyColumn {
        assert!(!values.is_empty(), "cannot compress an empty column");
        let mut dict: Vec<String> = values.to_vec();
        dict.sort_unstable();
        dict.dedup();
        let codes: Vec<u32> = values
            .iter()
            .map(|v| dict.binary_search(v).expect("value in dict") as u32)
            .collect();
        let bits = bits_for(dict.len().saturating_sub(1) as u64).min(32);
        HeavyColumn::Dict {
            dict,
            packed: BitPackedColumn::pack(&codes, bits),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            HeavyColumn::Pfor { packed, .. } | HeavyColumn::Dict { packed, .. } => packed.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compressed size in bytes (packed payload + exceptions + dictionary).
    pub fn byte_size(&self) -> usize {
        match self {
            HeavyColumn::Pfor {
                packed, exceptions, ..
            } => 8 + packed.byte_size() + exceptions.len() * 12,
            HeavyColumn::Dict { dict, packed } => {
                dict.iter().map(|s| s.len() + 4).sum::<usize>() + packed.byte_size()
            }
        }
    }

    /// Decompress the whole integer column (scans on this format decompress ranges
    /// wholesale — there is no early filtering).
    pub fn decompress_ints(&self) -> Vec<i64> {
        match self {
            HeavyColumn::Pfor {
                reference,
                packed,
                exceptions,
            } => {
                let mut out: Vec<i64> = (0..packed.len())
                    .map(|i| reference + packed.get(i) as i64)
                    .collect();
                for &(pos, value) in exceptions {
                    out[pos as usize] = value;
                }
                out
            }
            HeavyColumn::Dict { .. } => panic!("decompress_ints called on a string column"),
        }
    }

    /// Decompress the whole string column.
    pub fn decompress_strings(&self) -> Vec<String> {
        match self {
            HeavyColumn::Dict { dict, packed } => (0..packed.len())
                .map(|i| dict[packed.get(i) as usize].clone())
                .collect(),
            HeavyColumn::Pfor { .. } => panic!("decompress_strings called on an integer column"),
        }
    }

    /// Scan `lo <= v <= hi` the way this storage model does it: decompress the column
    /// range, then filter. Returns matching positions.
    pub fn scan_between(&self, lo: i64, hi: i64) -> Vec<u32> {
        let values = self.decompress_ints();
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= lo && v <= hi)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Point access (always a decompress-at-position; for PFOR it must also consult
    /// the exception list, for dictionaries it is a code lookup).
    pub fn get_int(&self, index: usize) -> i64 {
        match self {
            HeavyColumn::Pfor {
                reference,
                packed,
                exceptions,
            } => {
                if let Ok(found) = exceptions.binary_search_by_key(&(index as u32), |&(p, _)| p) {
                    exceptions[found].1
                } else {
                    reference + packed.get(index) as i64
                }
            }
            HeavyColumn::Dict { .. } => panic!("get_int called on a string column"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_ints(n: usize) -> Vec<i64> {
        // mostly small values with a few huge outliers — the case PFOR patching targets
        (0..n as i64)
            .map(|i| {
                if i % 1000 == 999 {
                    1_000_000_000 + i
                } else {
                    500 + i % 200
                }
            })
            .collect()
    }

    #[test]
    fn pfor_roundtrip_with_exceptions() {
        let values = skewed_ints(10_000);
        let compressed = HeavyColumn::compress_ints(&values);
        assert_eq!(compressed.decompress_ints(), values);
        match &compressed {
            HeavyColumn::Pfor {
                exceptions, packed, ..
            } => {
                assert!(!exceptions.is_empty(), "outliers become patches");
                assert!(
                    packed.bits() <= 10,
                    "common case packed narrowly, got {}",
                    packed.bits()
                );
            }
            _ => panic!("expected PFOR"),
        }
        // point access agrees, both for common values and exceptions
        assert_eq!(compressed.get_int(0), values[0]);
        assert_eq!(compressed.get_int(999), values[999]);
        assert_eq!(compressed.get_int(1999), values[1999]);
    }

    #[test]
    fn pfor_compresses_better_than_byte_aligned() {
        let values = skewed_ints(65_536);
        let heavy = HeavyColumn::compress_ints(&values);
        // Byte-aligned truncation needs 8-byte codes because of the huge outliers
        // (domain > 2^32); PFOR sidesteps them with patches.
        let byte_aligned_size = values.len() * 8;
        assert!(heavy.byte_size() * 4 < byte_aligned_size);
    }

    #[test]
    fn dict_roundtrip() {
        let values: Vec<String> = (0..5_000).map(|i| format!("city-{}", i % 300)).collect();
        let compressed = HeavyColumn::compress_strings(&values);
        assert_eq!(compressed.decompress_strings(), values);
        assert!(compressed.byte_size() < values.iter().map(|s| s.len() + 24).sum());
    }

    #[test]
    fn scan_between_matches_reference() {
        let values = skewed_ints(8_000);
        let compressed = HeavyColumn::compress_ints(&values);
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| (550..=600).contains(&v))
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(compressed.scan_between(550, 600), expected);
    }

    #[test]
    fn uniform_column_has_no_exceptions() {
        let values: Vec<i64> = (0..4_096).map(|i| 10_000 + i % 128).collect();
        match HeavyColumn::compress_ints(&values) {
            HeavyColumn::Pfor { exceptions, .. } => assert!(exceptions.is_empty()),
            _ => panic!("expected PFOR"),
        }
    }

    #[test]
    #[should_panic(expected = "empty column")]
    fn empty_input_rejected() {
        HeavyColumn::compress_ints(&[]);
    }
}
