//! # bitpack — the compression baselines Data Blocks are evaluated against
//!
//! Two comparators from the paper's evaluation live here:
//!
//! * [`horizontal`] — horizontal (sub-byte) bit-packing, the BitWeaving-style format
//!   whose expensive positional access motivates the byte-addressable design of Data
//!   Blocks (Section 5.4, Figure 12);
//! * [`heavy`] — whole-column PFOR / PDICT compression with patching, standing in for
//!   the Vectorwise storage format that compresses ~25 % better than Data Blocks but
//!   cannot filter early or access single positions cheaply (Tables 1 and 2).

#![warn(missing_docs)]

pub mod heavy;
pub mod horizontal;

pub use heavy::HeavyColumn;
pub use horizontal::{bits_for, BitPackedColumn};
