//! Horizontal bit-packing — the sub-byte encoding Data Blocks deliberately reject.
//!
//! Values are packed at their minimal bit width back to back across 64-bit words
//! (BitWeaving/​horizontal style). This achieves a higher compression ratio than
//! byte-aligned truncation, but positional access must reassemble a value from up to
//! two words with shifts and masks, and scans that select a sparse set of tuples pay
//! that cost per qualifying tuple (Section 5.4, Figure 12).

/// A column packed at `bits` bits per value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPackedColumn {
    bits: u32,
    len: usize,
    words: Vec<u64>,
}

/// Number of bits needed to represent `max_value`.
pub fn bits_for(max_value: u64) -> u32 {
    (64 - max_value.leading_zeros()).max(1)
}

impl BitPackedColumn {
    /// Pack `values` at `bits` bits each.
    ///
    /// # Panics
    ///
    /// Panics if a value does not fit in `bits` bits or `bits` is not in `1..=32`.
    pub fn pack(values: &[u32], bits: u32) -> BitPackedColumn {
        assert!(
            (1..=32).contains(&bits),
            "bit width must be between 1 and 32"
        );
        let total_bits = values.len() as u64 * bits as u64;
        let mut words = vec![0u64; total_bits.div_ceil(64) as usize + 1];
        for (i, &v) in values.iter().enumerate() {
            assert!(
                (v as u64) < (1u64 << bits),
                "value {v} does not fit in {bits} bits"
            );
            let bit_pos = i as u64 * bits as u64;
            let word = (bit_pos / 64) as usize;
            let offset = (bit_pos % 64) as u32;
            words[word] |= (v as u64) << offset;
            if offset + bits > 64 {
                words[word + 1] |= (v as u64) >> (64 - offset);
            }
        }
        BitPackedColumn {
            bits,
            len: values.len(),
            words,
        }
    }

    /// Number of packed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit width per value.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Size of the packed payload in bytes.
    pub fn byte_size(&self) -> usize {
        (self.len * self.bits as usize).div_ceil(8)
    }

    /// Positional access: unpack the value at `index` (the per-tuple cost the paper
    /// measures in Figure 12(b)).
    #[inline]
    pub fn get(&self, index: usize) -> u32 {
        debug_assert!(index < self.len);
        let bit_pos = index as u64 * self.bits as u64;
        let word = (bit_pos / 64) as usize;
        let offset = (bit_pos % 64) as u32;
        let mask = if self.bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits) - 1
        };
        let mut v = self.words[word] >> offset;
        if offset + self.bits > 64 {
            v |= self.words[word + 1] << (64 - offset);
        }
        (v & mask) as u32
    }

    /// Unpack every value (the "unpack all and filter" strategy of Figure 12(b)).
    pub fn unpack_all(&self, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.len);
        for i in 0..self.len {
            out.push(self.get(i));
        }
    }

    /// Unpack only the values at `positions` ("positional access" strategy).
    pub fn unpack_positions(&self, positions: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(positions.len());
        for &pos in positions {
            out.push(self.get(pos as usize));
        }
    }

    /// Predicate scan `lo <= v <= hi`, branchy variant: push each qualifying position
    /// as it is found. Fast when almost nothing or almost everything matches, but
    /// suffers branch mispredictions at moderate selectivities — this is the
    /// behaviour Figure 12(a) shows for plain horizontal bit-packing.
    pub fn scan_between_branchy(&self, lo: u32, hi: u32, out: &mut Vec<u32>) -> usize {
        out.clear();
        for i in 0..self.len {
            let v = self.get(i);
            if v >= lo && v <= hi {
                out.push(i as u32);
            }
        }
        out.len()
    }

    /// Predicate scan `lo <= v <= hi`, selectivity-robust variant: unconditional write
    /// plus cursor advance (the positions-table trick of Section 4.2 applied to the
    /// bit-packed format, as the paper does for its comparison).
    pub fn scan_between_robust(&self, lo: u32, hi: u32, out: &mut Vec<u32>) -> usize {
        out.clear();
        out.reserve(self.len);
        // Branch-free selection over the unpacked stream.
        unsafe {
            let ptr = out.as_mut_ptr();
            let mut w = 0usize;
            for i in 0..self.len {
                let v = self.get(i);
                *ptr.add(w) = i as u32;
                w += (v >= lo && v <= hi) as usize;
            }
            out.set_len(w);
            w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, modulus: u32) -> Vec<u32> {
        let mut x = 0x1234_5678u32;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                x % modulus
            })
            .collect()
    }

    #[test]
    fn bits_for_domain() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(65_535), 16);
        assert_eq!(bits_for(65_536), 17);
    }

    #[test]
    fn pack_get_roundtrip_all_widths() {
        for bits in [1u32, 3, 7, 8, 9, 13, 17, 24, 31, 32] {
            let modulus = if bits == 32 {
                u32::MAX
            } else {
                (1u32 << bits) - 1
            }
            .max(1);
            let values = sample(4_097, modulus);
            let packed = BitPackedColumn::pack(&values, bits);
            assert_eq!(packed.len(), values.len());
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(packed.get(i), v, "bits {bits} index {i}");
            }
        }
    }

    #[test]
    fn byte_size_reflects_bit_width() {
        let values = sample(65_536, 1 << 9);
        let packed9 = BitPackedColumn::pack(&values, 9);
        assert_eq!(packed9.byte_size(), 65_536 * 9 / 8);
        // byte-aligned storage of the same data would need 2 bytes per value
        assert!(packed9.byte_size() < 65_536 * 2);
    }

    #[test]
    fn unpack_all_and_positions() {
        let values = sample(10_000, 1 << 17);
        let packed = BitPackedColumn::pack(&values, 17);
        let mut all = Vec::new();
        packed.unpack_all(&mut all);
        assert_eq!(all, values);
        let positions: Vec<u32> = (0..10_000).step_by(97).collect();
        let mut some = Vec::new();
        packed.unpack_positions(&positions, &mut some);
        assert_eq!(some.len(), positions.len());
        for (k, &pos) in positions.iter().enumerate() {
            assert_eq!(some[k], values[pos as usize]);
        }
    }

    #[test]
    fn scans_agree_with_reference() {
        let values = sample(20_000, 1 << 13);
        let packed = BitPackedColumn::pack(&values, 13);
        let (lo, hi) = (1000, 3000);
        let expected: Vec<u32> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v >= lo && v <= hi)
            .map(|(i, _)| i as u32)
            .collect();
        let mut branchy = Vec::new();
        let mut robust = Vec::new();
        assert_eq!(
            packed.scan_between_branchy(lo, hi, &mut branchy),
            expected.len()
        );
        assert_eq!(
            packed.scan_between_robust(lo, hi, &mut robust),
            expected.len()
        );
        assert_eq!(branchy, expected);
        assert_eq!(robust, expected);
    }

    #[test]
    fn empty_column() {
        let packed = BitPackedColumn::pack(&[], 9);
        assert!(packed.is_empty());
        assert_eq!(packed.byte_size(), 0);
        let mut out = Vec::new();
        assert_eq!(packed.scan_between_branchy(0, 10, &mut out), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn value_too_large_rejected() {
        BitPackedColumn::pack(&[512], 9);
    }
}
