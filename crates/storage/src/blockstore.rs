//! The file-backed block store: cold Data Blocks on secondary storage behind a
//! pinning, capacity-bounded block cache — with a persisted directory manifest,
//! dead-frame compaction and sequential read-ahead.
//!
//! Data Blocks are self-contained and byte-addressable precisely so cold data can
//! leave main memory (Lang et al., Section 2); this module is the subsystem that
//! makes that real. A [`BlockStore`] owns a family of **generation files** of
//! [`datablocks::frame`]-encoded blocks (generation 0 is the store path itself,
//! generation *g* is `<path>.g<g>`; compaction rolls the store forward one
//! generation at a time) plus, in memory:
//!
//! * a **block directory** — for every block id the generation/offset/length of
//!   its frame and its [`BlockSummary`] (tuple counts and per-attribute SMAs),
//!   kept hot so SMA block-skipping and size accounting never touch the disk;
//! * a **block cache** — decoded [`DataBlock`]s up to a configured byte capacity,
//!   with **pin counts** (a pinned block is never evicted; scans pin for the
//!   duration of a morsel) and CLOCK second-chance eviction for the rest.
//!
//! # Durability: the manifest
//!
//! The directory itself is persisted in a sidecar **manifest** at
//! `<path>.manifest`: a log of checksummed [`ManifestRecord`]s (FNV-1a 64, same
//! scheme as the block frames). Every directory mutation — an append or a
//! rewrite — appends one `Put` record *after* the frame bytes are written, so the
//! manifest never references unwritten data; on close (store drop) and after
//! every compaction the manifest is **checkpointed**: rewritten from scratch as
//! one `Snapshot` record plus one `Put` per live directory entry, via a
//! temp-file-and-rename so the swap is atomic. [`BlockStore::reopen`] replays the
//! manifest to rebuild the exact directory — including per-block tombstone
//! counts, which travel in the summaries — **without reading any block
//! payloads**; a torn final record (the bytes a crash leaves mid-append) fails
//! its checksum or length check, is discarded, and the manifest is truncated
//! back to its valid prefix. Replay is last-writer-wins per block id, so a log
//! holding both the original append and a later rewrite of the same block
//! resolves to the rewrite.
//!
//! # Durability modes
//!
//! How hard those writes are pushed toward the platter is the store's
//! [`Durability`] mode ([`SpillPolicy::durability`]):
//!
//! * [`Durability::Buffered`] (default) issues no `fsync` at all — "crash
//!   consistency" then means *torn-write detection and a directory that always
//!   reaches a valid replayable state*, not a barrier against power loss
//!   reordering writes. This is the right trade for temp spill files that do
//!   not outlive the process.
//! * [`Durability::Sync`] adds real power-loss barriers: every frame write is
//!   `sync_data`ed **before** the manifest `Put` that references it (the
//!   manifest never points at data the disk may not have), manifest appends
//!   are group-committed — one `fsync` per `group_commit` records — and the
//!   checkpoint swap becomes a true commit point: temp file written, synced,
//!   renamed over the manifest, parent directory fsynced. With
//!   `group_commit: 1` no acknowledged write can be lost; with `n > 1` the
//!   acknowledgement window is bounded at the last `n - 1` un-synced records.
//!
//! Transient I/O errors (`EINTR`-class: `Interrupted`/`WouldBlock`/`TimedOut`)
//! are absorbed by a bounded retry on every store I/O path, counted in
//! [`IoStats::retries`].
//!
//! # Fault injection
//!
//! Every frame, manifest and generation-file I/O in this module goes through a
//! [`crate::faults::StoreFile`] tagged with a named **failpoint site**, so a
//! seeded [`crate::faults::FaultInjector`] (attached via
//! [`BlockStore::create_opts`] / [`BlockStore::reopen_opts`]) can
//! deterministically return transient errors, tear a write short, or enter
//! crash-stop at any of them. The site inventory:
//!
//! | site                 | operation                                           |
//! |----------------------|-----------------------------------------------------|
//! | `gen.append_write`   | frame write of [`BlockStore::append`]               |
//! | `gen.rewrite_write`  | frame write of [`BlockStore::rewrite`]              |
//! | `gen.sync`           | `sync_data` of a generation file (Sync mode)        |
//! | `manifest.append`    | manifest record write                               |
//! | `manifest.sync`      | group-commit `fsync` of the manifest (Sync mode)    |
//! | `pin.read`           | demand frame read of a cache miss                   |
//! | `prefetch.read`      | frame read on the read-ahead worker                 |
//! | `compact.read`       | live-frame read during compaction                   |
//! | `compact.write`      | live-frame copy into the new generation             |
//! | `compact.sync`       | new generation `sync_data` before the checkpoint    |
//! | `compact.reclaim`    | truncation of the reclaimed generation-0 file       |
//! | `checkpoint.write`   | checkpoint temp-file write                          |
//! | `checkpoint.sync`    | checkpoint temp-file `sync_data` (Sync mode)        |
//! | `checkpoint.rename`  | atomic rename over `<path>.manifest`                |
//! | `checkpoint.dir_sync`| parent-directory fsync after the rename (Sync mode) |
//!
//! `tests/fault_injection.rs` enumerates a crash at every site and asserts the
//! reopen contract: old-or-new directory state, loudly `Corrupt` when the disk
//! is truly inconsistent, never silently wrong — and under `Sync` no
//! acknowledged write lost.
//!
//! # Dead-frame compaction
//!
//! The store is append-only within a generation: deleting a record of a spilled
//! block rewrites the whole block at the end of the current generation file and
//! repoints the directory entry ([`BlockStore::rewrite`]), leaving the old frame
//! as dead space. The store tracks live vs dead bytes; when the garbage ratio
//! exceeds the configured threshold ([`SpillPolicy::compaction_garbage_ratio`],
//! settable via [`BlockStore::set_garbage_threshold`]), the next mutation
//! triggers **compaction**: live frames are copied byte-for-byte into a fresh
//! generation file, the directory is repointed, the manifest is checkpointed
//! (the atomic swap), and generation files no longer referenced by any entry are
//! deleted. Compaction never moves a **pinned** frame — a scan holding a pin
//! keeps reading its old generation file, which survives until no directory
//! entry references it. [`IoStats`] counts compactions, frames/bytes moved and
//! pinned frames skipped so tests can pin the behaviour down.
//!
//! # Read-ahead
//!
//! [`BlockStore::prefetch`] queues block ids for a lazily-spawned helper thread
//! that pages them into the cache (plain positional `read_at`, no extra
//! dependencies) so a sequential cold scan can run ahead of the pinning morsel.
//! Prefetch reads are counted in [`IoStats::prefetch_reads`], *not* in
//! [`IoStats::block_reads`] — the counters distinguish demand I/O from
//! read-ahead. A prefetched block enters the cache unpinned; the later demand
//! pin is then a cache hit. Races are benign: if a demand read and the prefetch
//! worker both load a block, one copy wins the cache and both reads are counted
//! under their respective counters.
//!
//! # Concurrency
//!
//! All I/O is positional (`read_at`/`write_at` via [`std::os::unix::fs::FileExt`]),
//! so concurrent scan workers loading different blocks never contend on a shared
//! file cursor. The cache index is behind one [`Mutex`], but the lock is **not**
//! held across disk reads or frame decoding: a miss records the directory entry
//! under the lock, performs the read/decode unlocked, and re-takes the lock to
//! publish the block (two workers racing on the same block both pay the read, one
//! insert wins — a deliberate trade of occasional duplicate I/O for an uncontended
//! hot path). Mutations ([`BlockStore::mutate`], [`BlockStore::rewrite`],
//! [`BlockStore::compact`]) serialise on a dedicated mutation lock that is never
//! held while ordinary pins wait, so reads proceed concurrently with a mutation's
//! I/O.
//!
//! Finally, a process-local **live registry** guards against double-opening: a
//! path already backing an open store in this process cannot be opened again
//! ([`BlockStore::create`] / [`BlockStore::reopen`] fail with
//! [`std::io::ErrorKind::AlreadyExists`]) — reopening a live store would hand
//! two caches the same file and corrupt it on the first rewrite.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::{File, OpenOptions};
use std::io;
use std::ops::Deref;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};

use datablocks::frame::{
    self, manifest_record_to_bytes, replay_manifest, ManifestRecord, FRAME_HEADER_LEN,
};
use datablocks::{BlockSummary, DataBlock, FrameError};

use crate::faults::{self, FaultInjector, StoreFile};

/// Identifier of a block within one [`BlockStore`] (its directory index).
pub type BlockId = usize;

/// Default garbage ratio above which a mutation triggers dead-frame compaction.
pub const DEFAULT_GARBAGE_RATIO: f64 = 0.5;

/// How many times a transient I/O error (`Interrupted`/`WouldBlock`/`TimedOut`)
/// is retried before it is surfaced to the caller.
const MAX_IO_RETRIES: u32 = 3;

/// How hard the store pushes writes toward stable storage. See the module docs
/// ("Durability modes") for the exact barrier placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// No `fsync` anywhere: crash-*consistent* (replayable manifest, torn-write
    /// detection) but acknowledged writes may be lost to a power cut. The
    /// default, and the right trade for temporary spill files.
    #[default]
    Buffered,
    /// Power-loss barriers on: generation files are `sync_data`ed before the
    /// manifest `Put` referencing them, manifest appends are group-committed
    /// under one `fsync` per `group_commit` records, and the checkpoint swap is
    /// a true commit point (temp-file sync + rename + parent-directory fsync).
    Sync {
        /// Manifest records per group-commit `fsync`. `1` (or `0`, treated as
        /// `1`) syncs every record — no acknowledged write can be lost; `n > 1`
        /// bounds the loss window to the last `n - 1` acknowledged records.
        group_commit: usize,
    },
}

/// How a relation spills frozen blocks to secondary storage.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillPolicy {
    /// Byte budget of the in-memory block cache. Pinned blocks may push the resident
    /// set above this bound transiently; unpinned blocks are evicted down to it.
    pub cache_capacity_bytes: usize,
    /// Spill file location. `None` creates a per-store temporary file (deleted when
    /// the store is dropped). For [`crate::Database::enable_spill`] a `Some` path
    /// names a *directory* receiving one `<relation>.dbs` file per relation; for
    /// [`crate::Relation::enable_spill`] it names the file itself (kept on drop).
    pub path: Option<PathBuf>,
    /// Fraction of the store's on-disk bytes that may be dead frames before the
    /// next mutation compacts live frames into a fresh generation file. `1.0`
    /// effectively disables automatic compaction ([`BlockStore::compact`] can
    /// still be called explicitly).
    pub compaction_garbage_ratio: f64,
    /// Power-loss durability mode of the spill store (fsync barriers and group
    /// commit). [`Durability::Buffered`] — no fsync — by default.
    pub durability: Durability,
}

impl Default for SpillPolicy {
    fn default() -> SpillPolicy {
        SpillPolicy {
            cache_capacity_bytes: 64 << 20,
            path: None,
            compaction_garbage_ratio: DEFAULT_GARBAGE_RATIO,
            durability: Durability::Buffered,
        }
    }
}

impl SpillPolicy {
    /// A policy with the given cache budget, spilling to a temporary file.
    pub fn with_cache_capacity(cache_capacity_bytes: usize) -> SpillPolicy {
        SpillPolicy {
            cache_capacity_bytes,
            ..SpillPolicy::default()
        }
    }
}

/// Errors surfaced by block store operations.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// A frame or manifest record failed validation (checksum, magic, version,
    /// truncation).
    Frame(FrameError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "block store I/O error: {err}"),
            StoreError::Frame(err) => write!(f, "block store frame error: {err}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            StoreError::Frame(err) => Some(err),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(err: io::Error) -> StoreError {
        StoreError::Io(err)
    }
}

impl From<FrameError> for StoreError {
    fn from(err: FrameError) -> StoreError {
        StoreError::Frame(err)
    }
}

impl From<StoreError> for io::Error {
    fn from(err: StoreError) -> io::Error {
        match err {
            StoreError::Io(err) => err,
            StoreError::Frame(err) => io::Error::new(io::ErrorKind::InvalidData, err.to_string()),
        }
    }
}

/// A cold block could not be paged in: the typed error the scan paths carry
/// instead of panicking a worker. Names exactly where the failure happened —
/// block id, generation file, byte offset — plus the underlying cause, so a
/// corrupt or unreadable frame is reported loudly and precisely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColdReadError {
    /// Directory index of the block that failed to load.
    pub block_id: BlockId,
    /// Generation file the directory pointed at.
    pub generation: u32,
    /// Byte offset of the frame within that generation file.
    pub offset: u64,
    /// The underlying [`StoreError`], rendered to text (`io::Error` is not
    /// `Clone`, and the scan paths need a cloneable error to fan out of a
    /// worker pool).
    pub detail: String,
}

impl std::fmt::Display for ColdReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cold block {} unreadable (generation {}, offset {}): {}",
            self.block_id, self.generation, self.offset, self.detail
        )
    }
}

impl std::error::Error for ColdReadError {}

impl From<ColdReadError> for io::Error {
    fn from(err: ColdReadError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, err.to_string())
    }
}

/// Counters describing what a store actually did. Reads/writes count **disk**
/// operations only — cache hits and summary-pruned blocks cost zero reads, which is
/// what the scan-skipping assertions in the differential tests pin down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Block payloads read from disk **on demand** (cache misses on a pin).
    /// Read-ahead I/O is counted separately in [`IoStats::prefetch_reads`].
    pub block_reads: u64,
    /// Bytes read from disk (demand and prefetch).
    pub bytes_read: u64,
    /// Block frames written to disk (appends and rewrites; compaction copies are
    /// counted in [`IoStats::compacted_frames`] instead).
    pub block_writes: u64,
    /// Bytes written to disk by appends and rewrites.
    pub bytes_written: u64,
    /// Pins served from the cache.
    pub cache_hits: u64,
    /// Pins that had to load from disk.
    pub cache_misses: u64,
    /// Cached blocks evicted to stay within capacity.
    pub evictions: u64,
    /// Block payloads read from disk by the read-ahead worker.
    pub prefetch_reads: u64,
    /// Dead-frame compaction passes completed.
    pub compactions: u64,
    /// Live frames copied into a new generation file by compaction.
    pub compacted_frames: u64,
    /// Bytes copied by compaction.
    pub compacted_bytes: u64,
    /// Frames a compaction pass left in their old generation because they were
    /// pinned at the time (compaction never moves a pinned frame).
    pub compaction_pinned_skipped: u64,
    /// Transient I/O errors (`Interrupted`/`WouldBlock`/`TimedOut`) absorbed by
    /// the store's bounded retry instead of surfacing to the caller.
    pub retries: u64,
    /// Read-ahead loads that failed. A prefetch error never kills the worker or
    /// the scan — the block simply stays cold and the later demand pin pays the
    /// read (or reports the real error).
    pub prefetch_errors: u64,
}

/// One directory entry: which generation file holds the block's frame, where,
/// plus its hot summary.
#[derive(Debug, Clone)]
struct DirEntry {
    generation: u32,
    offset: u64,
    len: u32,
    summary: BlockSummary,
}

#[derive(Debug)]
struct CacheEntry {
    block: Arc<DataBlock>,
    pins: u32,
    /// CLOCK reference bit: set on every pin, cleared on the hand's first pass.
    referenced: bool,
    bytes: usize,
}

#[derive(Debug)]
struct Inner {
    directory: Vec<DirEntry>,
    cache: HashMap<BlockId, CacheEntry>,
    /// Ring of cached block ids the CLOCK hand sweeps (order approximates insertion
    /// order; eviction uses `swap_remove`, so it is a second-chance clock, not LRU).
    clock: Vec<BlockId>,
    hand: usize,
    cached_bytes: usize,
    /// Largest `cached_bytes` ever observed (pins can push the resident set
    /// above the capacity transiently; this records how far).
    cache_high_water: usize,
    /// Generation new frames are appended to.
    current_gen: u32,
    /// Append point within the current generation file.
    end_offset: u64,
    /// Bytes of frames the directory references.
    live_bytes: u64,
    /// Bytes of superseded frames still occupying generation files.
    dead_bytes: u64,
    /// Garbage ratio above which a mutation compacts (see
    /// [`BlockStore::set_garbage_threshold`]).
    garbage_threshold: f64,
    stats: IoStats,
}

impl Inner {
    fn new() -> Inner {
        Inner {
            directory: Vec::new(),
            cache: HashMap::new(),
            clock: Vec::new(),
            hand: 0,
            cached_bytes: 0,
            cache_high_water: 0,
            current_gen: 0,
            end_offset: 0,
            live_bytes: 0,
            dead_bytes: 0,
            garbage_threshold: DEFAULT_GARBAGE_RATIO,
            stats: IoStats::default(),
        }
    }
}

/// The append handle of the manifest log (swapped wholesale on checkpoint).
#[derive(Debug)]
struct ManifestFile {
    file: StoreFile,
    len: u64,
    /// Records appended since the last group-commit `fsync` (only meaningful
    /// under [`Durability::Sync`]; a checkpoint resets it).
    pending: usize,
}

/// Queue shared with the read-ahead worker. Owned by an `Arc` on both sides so
/// the worker can park on the condvar holding only a [`Weak`] to the store
/// itself — the store's `Drop` is what shuts the worker down, so the worker
/// must never keep the store alive.
#[derive(Debug)]
struct PrefetchShared {
    state: Mutex<PrefetchState>,
    work: Condvar,
    /// Signalled whenever the queue and in-flight set both drain (and on
    /// shutdown); [`BlockStore::quiesce_prefetch`] parks here.
    idle: Condvar,
}

#[derive(Debug, Default)]
struct PrefetchState {
    queue: VecDeque<BlockId>,
    /// Ids queued or currently being loaded (dedup across prefetch calls).
    queued: HashSet<BlockId>,
    shutdown: bool,
    worker: Option<std::thread::JoinHandle<()>>,
}

/// A file-backed store of frozen Data Blocks with a persisted manifest, an
/// in-memory directory and a pinning block cache. See the module docs for the
/// design.
#[derive(Debug)]
pub struct BlockStore {
    /// Open generation files, keyed by generation number. [`StoreFile`] clones
    /// share the underlying handle, so a reader can clone one out and read
    /// without any store lock held — and a generation file unlinked by
    /// compaction stays readable for pins taken before the swap.
    files: Mutex<HashMap<u32, StoreFile>>,
    path: PathBuf,
    /// Key under which this store is registered live (absolute form of `path`).
    registered: PathBuf,
    delete_on_drop: bool,
    capacity: usize,
    /// Power-loss durability mode (fsync barrier placement); see [`Durability`].
    durability: Durability,
    /// Deterministic fault plan threaded through every I/O site, if attached.
    faults: Option<Arc<FaultInjector>>,
    /// Transient I/O errors absorbed by the bounded retry (merged into
    /// [`IoStats::retries`] by [`BlockStore::stats`]); an atomic because retry
    /// sites deliberately hold no store lock across I/O.
    retries: AtomicU64,
    inner: Mutex<Inner>,
    manifest: Mutex<ManifestFile>,
    /// Serialises block mutations ([`BlockStore::mutate`], [`BlockStore::rewrite`],
    /// [`BlockStore::compact`]) — never held while waiting on `inner` from a
    /// non-mutation path, so ordinary pins proceed concurrently with a mutation's
    /// I/O.
    mutation: Mutex<()>,
    prefetch: Arc<PrefetchShared>,
}

/// Monotonic counter distinguishing temp files of one process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Error kinds worth a bounded retry: the `EINTR` class that a signal or a
/// momentarily saturated device produces, not real failures.
fn is_transient(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Paths of every live (open) store in this process. Guards against
/// double-opening one spill file into two independent caches.
fn live_registry() -> &'static Mutex<HashSet<PathBuf>> {
    static LIVE: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    LIVE.get_or_init(|| Mutex::new(HashSet::new()))
}

fn absolute_path(path: &Path) -> PathBuf {
    if path.is_absolute() {
        path.to_path_buf()
    } else {
        std::env::current_dir()
            .map(|cwd| cwd.join(path))
            .unwrap_or_else(|_| path.to_path_buf())
    }
}

fn register_live(path: &Path) -> io::Result<PathBuf> {
    let key = absolute_path(path);
    let mut live = live_registry().lock().expect("live registry lock");
    if !live.insert(key.clone()) {
        return Err(io::Error::new(
            io::ErrorKind::AlreadyExists,
            format!(
                "block store {} is live (already open in this process); \
                 close it before reopening",
                path.display()
            ),
        ));
    }
    Ok(key)
}

fn unregister_live(key: &Path) {
    live_registry()
        .lock()
        .expect("live registry lock")
        .remove(key);
}

/// Path of generation `g`'s data file (generation 0 is the store path itself).
fn gen_path(base: &Path, generation: u32) -> PathBuf {
    if generation == 0 {
        base.to_path_buf()
    } else {
        sibling(base, &format!(".g{generation}"))
    }
}

fn manifest_path(base: &Path) -> PathBuf {
    sibling(base, ".manifest")
}

fn manifest_tmp_path(base: &Path) -> PathBuf {
    sibling(base, ".manifest.tmp")
}

fn sibling(base: &Path, suffix: &str) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

/// The generation number encoded in a sibling file name of `base`, if any
/// (`<base>.g<N>` → `Some(N)`).
fn sibling_generation(base: &Path, candidate: &Path) -> Option<u32> {
    let base_name = base.file_name()?.to_str()?;
    let name = candidate.file_name()?.to_str()?;
    let rest = name.strip_prefix(base_name)?.strip_prefix(".g")?;
    rest.parse().ok()
}

/// Delete sibling files of a previous store at `base` (generation files, the
/// manifest and its temp), keeping generations in `keep`.
fn remove_stale_siblings(base: &Path, keep: &HashSet<u32>) -> io::Result<()> {
    let _ = std::fs::remove_file(manifest_tmp_path(base));
    if keep.is_empty() {
        let _ = std::fs::remove_file(manifest_path(base));
    }
    let Some(parent) = base.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(());
    };
    let Ok(entries) = std::fs::read_dir(parent) else {
        return Ok(());
    };
    for entry in entries.flatten() {
        let candidate = entry.path();
        if let Some(generation) = sibling_generation(base, &candidate) {
            if !keep.contains(&generation) {
                let _ = std::fs::remove_file(&candidate);
            }
        }
    }
    Ok(())
}

impl BlockStore {
    /// Create a store over a fresh temporary file (deleted when the store drops).
    pub fn create_temp(capacity: usize) -> io::Result<Arc<BlockStore>> {
        BlockStore::create_temp_opts(capacity, Durability::Buffered, None)
    }

    /// [`BlockStore::create_temp`] with an explicit [`Durability`] mode and an
    /// optional [`FaultInjector`] (see [`BlockStore::create_opts`]).
    pub fn create_temp_opts(
        capacity: usize,
        durability: Durability,
        faults: Option<Arc<FaultInjector>>,
    ) -> io::Result<Arc<BlockStore>> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("datablocks-spill-{}-{n}.dbs", std::process::id()));
        BlockStore::create_at(path, capacity, true, true, durability, faults)
    }

    /// Create a store over `path`, truncating any existing file (and removing any
    /// stale manifest or generation files of a previous store at the same path).
    /// The files are kept when the store drops.
    pub fn create(path: impl AsRef<Path>, capacity: usize) -> io::Result<Arc<BlockStore>> {
        BlockStore::create_opts(path, capacity, Durability::Buffered, None)
    }

    /// [`BlockStore::create`] with an explicit [`Durability`] mode and an
    /// optional [`FaultInjector`] threaded through every I/O site (see the
    /// module docs for the failpoint inventory).
    pub fn create_opts(
        path: impl AsRef<Path>,
        capacity: usize,
        durability: Durability,
        faults: Option<Arc<FaultInjector>>,
    ) -> io::Result<Arc<BlockStore>> {
        BlockStore::create_at(
            path.as_ref().to_path_buf(),
            capacity,
            false,
            false,
            durability,
            faults,
        )
    }

    fn create_at(
        path: PathBuf,
        capacity: usize,
        delete_on_drop: bool,
        create_new: bool,
        durability: Durability,
        faults: Option<Arc<FaultInjector>>,
    ) -> io::Result<Arc<BlockStore>> {
        let registered = register_live(&path)?;
        let result = (|| {
            remove_stale_siblings(&path, &HashSet::new())?;
            let mut open = OpenOptions::new();
            open.read(true).write(true);
            if create_new {
                open.create_new(true);
            } else {
                open.create(true).truncate(true);
            }
            let file = open.open(&path)?;
            let manifest = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(manifest_path(&path))?;
            Ok::<_, io::Error>(Arc::new(BlockStore {
                files: Mutex::new(HashMap::from([(
                    0u32,
                    StoreFile::new(file, faults.clone()),
                )])),
                path,
                registered: registered.clone(),
                delete_on_drop,
                capacity,
                durability,
                faults: faults.clone(),
                retries: AtomicU64::new(0),
                inner: Mutex::new(Inner::new()),
                manifest: Mutex::new(ManifestFile {
                    file: StoreFile::new(manifest, faults.clone()),
                    len: 0,
                    pending: 0,
                }),
                mutation: Mutex::new(()),
                prefetch: Arc::new(PrefetchShared {
                    state: Mutex::new(PrefetchState::default()),
                    work: Condvar::new(),
                    idle: Condvar::new(),
                }),
            }))
        })();
        if result.is_err() {
            unregister_live(&registered);
        }
        result
    }

    /// Reopen a store from its **persisted manifest**, rebuilding the exact
    /// directory — generations, offsets, summaries and therefore per-block
    /// tombstone counts — **without reading any block payloads**. A torn final
    /// manifest record (simulated crash mid-append) is detected by its checksum
    /// or length, discarded, and the manifest is truncated back to its valid
    /// prefix. Generation files no longer referenced by any directory entry
    /// (orphans of a crashed compaction) are removed.
    ///
    /// Files without a manifest (produced by a pre-manifest store, or by hand)
    /// fall back to the frame walk of [`BlockStore::open`] and gain a manifest
    /// checkpoint immediately.
    ///
    /// Fails with [`std::io::ErrorKind::AlreadyExists`] when `path` backs a
    /// store that is still live in this process — reopening a live store would
    /// split its cache and corrupt the file on the next rewrite.
    pub fn reopen(path: impl AsRef<Path>, capacity: usize) -> Result<Arc<BlockStore>, StoreError> {
        BlockStore::reopen_opts(path, capacity, Durability::Buffered, None)
    }

    /// [`BlockStore::reopen`] with an explicit [`Durability`] mode and an
    /// optional [`FaultInjector`] (see [`BlockStore::create_opts`]).
    pub fn reopen_opts(
        path: impl AsRef<Path>,
        capacity: usize,
        durability: Durability,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Arc<BlockStore>, StoreError> {
        let path = path.as_ref().to_path_buf();
        let registered = register_live(&path)?;
        match BlockStore::reopen_inner(path, registered.clone(), capacity, durability, faults) {
            Ok(store) => Ok(store),
            Err(err) => {
                unregister_live(&registered);
                Err(err)
            }
        }
    }

    fn reopen_inner(
        path: PathBuf,
        registered: PathBuf,
        capacity: usize,
        durability: Durability,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Arc<BlockStore>, StoreError> {
        let mpath = manifest_path(&path);
        let (directory, current_gen, manifest, fresh_checkpoint) = if mpath.exists() {
            let bytes = std::fs::read(&mpath)?;
            let (records, valid_len, _torn) = replay_manifest(&bytes);
            let (directory, current_gen) = BlockStore::directory_from_records(records)?;
            let file = OpenOptions::new().read(true).write(true).open(&mpath)?;
            if (valid_len as u64) < bytes.len() as u64 {
                // Torn tail: drop the partial record so later appends extend a
                // clean log.
                file.set_len(valid_len as u64)?;
            }
            let manifest = ManifestFile {
                file: StoreFile::new(file, faults.clone()),
                len: valid_len as u64,
                pending: 0,
            };
            (directory, current_gen, manifest, false)
        } else {
            // Pre-manifest file: rebuild by walking the appended frames, then
            // checkpoint below so the store is manifest-backed from here on.
            let directory = BlockStore::walk_frames(&path)?;
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&mpath)?;
            let manifest = ManifestFile {
                file: StoreFile::new(file, faults.clone()),
                len: 0,
                pending: 0,
            };
            (directory, 0, manifest, true)
        };

        // Open every generation the directory references, plus the append
        // generation.
        let mut referenced: HashSet<u32> = directory.iter().map(|e| e.generation).collect();
        referenced.insert(current_gen);
        let mut files = HashMap::new();
        let mut on_disk = 0u64;
        for &generation in &referenced {
            let gpath = gen_path(&path, generation);
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(generation == current_gen) // append gen may be empty/new
                .open(&gpath)
                .map_err(|err| {
                    io::Error::new(
                        err.kind(),
                        format!(
                            "generation file {} referenced by the manifest: {err}",
                            gpath.display()
                        ),
                    )
                })?;
            on_disk += file.metadata()?.len();
            files.insert(generation, StoreFile::new(file, faults.clone()));
        }
        // Orphans of a crashed compaction (a generation file the manifest never
        // came to reference) are garbage: remove them.
        remove_stale_siblings(&path, &referenced)?;

        let live_bytes: u64 = directory.iter().map(|e| e.len as u64).sum();
        let end_offset = files[&current_gen].metadata()?.len();
        let mut inner = Inner::new();
        inner.directory = directory;
        inner.current_gen = current_gen;
        inner.end_offset = end_offset;
        inner.live_bytes = live_bytes;
        inner.dead_bytes = on_disk.saturating_sub(live_bytes);

        let store = Arc::new(BlockStore {
            files: Mutex::new(files),
            path,
            registered,
            delete_on_drop: false,
            capacity,
            durability,
            faults,
            retries: AtomicU64::new(0),
            inner: Mutex::new(inner),
            manifest: Mutex::new(manifest),
            mutation: Mutex::new(()),
            prefetch: Arc::new(PrefetchShared {
                state: Mutex::new(PrefetchState::default()),
                work: Condvar::new(),
                idle: Condvar::new(),
            }),
        });
        if fresh_checkpoint {
            store.checkpoint()?;
        }
        Ok(store)
    }

    /// Fold replayed manifest records into a directory. `Snapshot` resets the
    /// state (the checkpoint prefix); `Put` is last-writer-wins per block id. Two
    /// shapes of damage are rejected loudly rather than silently shrinking the
    /// store: a checkpoint whose declared entry count exceeds the `Put`s that
    /// actually follow (the torn tail ate checkpoint entries, not just an
    /// incremental append), and a directory with holes (an id never `Put`, e.g.
    /// a log torn between two concurrent appends).
    fn directory_from_records(
        records: Vec<ManifestRecord>,
    ) -> Result<(Vec<DirEntry>, u32), StoreError> {
        let mut slots: Vec<Option<DirEntry>> = Vec::new();
        let mut current_gen = 0u32;
        let mut snapshot_expected: Option<u32> = None;
        let mut puts_since_snapshot = 0u32;
        for record in records {
            match record {
                ManifestRecord::Snapshot {
                    generation,
                    entries,
                } => {
                    slots.clear();
                    current_gen = current_gen.max(generation);
                    snapshot_expected = Some(entries);
                    puts_since_snapshot = 0;
                }
                ManifestRecord::Put {
                    block_id,
                    generation,
                    offset,
                    len,
                    summary,
                } => {
                    let idx = block_id as usize;
                    if slots.len() <= idx {
                        slots.resize_with(idx + 1, || None);
                    }
                    slots[idx] = Some(DirEntry {
                        generation,
                        offset,
                        len,
                        summary,
                    });
                    current_gen = current_gen.max(generation);
                    puts_since_snapshot += 1;
                }
            }
        }
        if let Some(expected) = snapshot_expected {
            if puts_since_snapshot < expected {
                return Err(StoreError::Frame(FrameError::Corrupt(
                    "manifest checkpoint is torn (fewer entries than declared)",
                )));
            }
        }
        let mut directory = Vec::with_capacity(slots.len());
        for slot in slots {
            directory.push(slot.ok_or(StoreError::Frame(FrameError::Corrupt(
                "manifest leaves directory holes",
            )))?);
        }
        Ok((directory, current_gen))
    }

    /// Rebuild a directory by walking a file of appended frames, reading only
    /// each frame's header and summary section.
    fn walk_frames(path: &Path) -> Result<Vec<DirEntry>, StoreError> {
        let file = OpenOptions::new().read(true).open(path)?;
        let file_len = file.metadata()?.len();
        let mut directory = Vec::new();
        let mut offset = 0u64;
        while offset < file_len {
            let mut header_buf = [0u8; FRAME_HEADER_LEN];
            file.read_exact_at(&mut header_buf, offset)?;
            let header = frame::read_header(&header_buf)?;
            let mut prefix = vec![0u8; header.payload_off as usize];
            file.read_exact_at(&mut prefix, offset)?;
            let summary = frame::read_summary(&prefix)?;
            let len = header.frame_len() as u32;
            directory.push(DirEntry {
                generation: 0,
                offset,
                len,
                summary,
            });
            offset += len as u64;
        }
        Ok(directory)
    }

    /// Reopen a store from an existing file of appended frames, rebuilding the
    /// directory by reading **only** each frame's header and summary section — block
    /// payloads are not touched (and not checksummed) until first pinned.
    ///
    /// Only valid for files produced by appends: a store that performed
    /// [`BlockStore::rewrite`]s or compactions leaves superseded frames and
    /// generation files this walk cannot interpret — use [`BlockStore::reopen`],
    /// which replays the persisted manifest instead (and which this method now
    /// merely predates; it is kept for frame files produced without a store).
    pub fn open(path: impl AsRef<Path>, capacity: usize) -> Result<Arc<BlockStore>, StoreError> {
        let path = path.as_ref().to_path_buf();
        let registered = register_live(&path)?;
        let result = (|| {
            let directory = BlockStore::walk_frames(&path)?;
            let file = OpenOptions::new().read(true).write(true).open(&path)?;
            let end_offset = file.metadata()?.len();
            let manifest = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(manifest_path(&path))?;
            let live_bytes: u64 = directory.iter().map(|e| e.len as u64).sum();
            let mut inner = Inner::new();
            inner.directory = directory;
            inner.end_offset = end_offset;
            inner.live_bytes = live_bytes;
            inner.dead_bytes = end_offset.saturating_sub(live_bytes);
            let store = Arc::new(BlockStore {
                files: Mutex::new(HashMap::from([(0u32, StoreFile::new(file, None))])),
                path,
                registered: registered.clone(),
                delete_on_drop: false,
                capacity,
                durability: Durability::Buffered,
                faults: None,
                retries: AtomicU64::new(0),
                inner: Mutex::new(inner),
                manifest: Mutex::new(ManifestFile {
                    file: StoreFile::new(manifest, None),
                    len: 0,
                    pending: 0,
                }),
                mutation: Mutex::new(()),
                prefetch: Arc::new(PrefetchShared {
                    state: Mutex::new(PrefetchState::default()),
                    work: Condvar::new(),
                    idle: Condvar::new(),
                }),
            });
            store.checkpoint()?;
            Ok::<_, StoreError>(store)
        })();
        if result.is_err() {
            unregister_live(&registered);
        }
        result
    }

    /// The spill file location (generation 0; later generations live at
    /// `<path>.g<n>`, the manifest at `<path>.manifest`).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Delete every on-disk file of a **closed** store at `path`: the base
    /// generation file, all `<path>.g<N>` generation files, the manifest and
    /// its temp. The tidy-up counterpart of [`BlockStore::create`] with a
    /// `Some` path, for tests and benches cleaning up named stores — callers
    /// must not invoke it on a path that is still live.
    pub fn remove_files(path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        remove_stale_siblings(path, &HashSet::new())?;
        let _ = std::fs::remove_file(path);
        Ok(())
    }

    /// The configured cache byte budget.
    pub fn cache_capacity(&self) -> usize {
        self.capacity
    }

    /// Number of blocks in the directory.
    pub fn block_count(&self) -> usize {
        self.inner.lock().expect("store lock").directory.len()
    }

    /// Bytes of decoded blocks currently resident in the cache.
    pub fn cached_bytes(&self) -> usize {
        self.inner.lock().expect("store lock").cached_bytes
    }

    /// Largest cache residency, in bytes, the store has ever reached. Pinned
    /// blocks may push the resident set above
    /// [`cache_capacity`](BlockStore::cache_capacity) transiently; this is the
    /// observable bound on that overshoot (the query service's budget tests
    /// assert against it).
    pub fn cache_high_water_bytes(&self) -> usize {
        self.inner.lock().expect("store lock").cache_high_water
    }

    /// Bytes of frames the directory currently references.
    pub fn live_bytes(&self) -> u64 {
        self.inner.lock().expect("store lock").live_bytes
    }

    /// Bytes of superseded (dead) frames still occupying generation files.
    pub fn dead_bytes(&self) -> u64 {
        self.inner.lock().expect("store lock").dead_bytes
    }

    /// Set the garbage ratio (dead ÷ total on-disk bytes) above which the next
    /// mutation triggers dead-frame compaction. `1.0` disables auto-compaction.
    pub fn set_garbage_threshold(&self, ratio: f64) {
        self.inner.lock().expect("store lock").garbage_threshold = ratio.clamp(0.0, 1.0);
    }

    /// Snapshot of the I/O and cache counters.
    pub fn stats(&self) -> IoStats {
        let mut stats = self.inner.lock().expect("store lock").stats;
        stats.retries = self.retries.load(Ordering::Relaxed);
        stats
    }

    /// Reset the I/O and cache counters (the bench harness isolates phases with
    /// this).
    pub fn reset_stats(&self) {
        self.inner.lock().expect("store lock").stats = IoStats::default();
        self.retries.store(0, Ordering::Relaxed);
    }

    /// The store's power-loss durability mode.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Serialized size of block `id` on disk, in bytes.
    pub fn entry_len(&self, id: BlockId) -> usize {
        self.inner.lock().expect("store lock").directory[id].len as usize
    }

    /// Consult the hot, in-memory summary of block `id` without any I/O.
    pub fn with_summary<R>(&self, id: BlockId, f: impl FnOnce(&BlockSummary) -> R) -> R {
        let inner = self.inner.lock().expect("store lock");
        f(&inner.directory[id].summary)
    }

    /// The open handle of generation `generation`'s data file. `None` when the
    /// generation has been closed by a compaction that ran after the caller
    /// snapshotted a directory entry — readers treat that exactly like a
    /// repointed entry and retry against the fresh directory.
    fn gen_file(&self, generation: u32) -> Option<StoreFile> {
        self.files
            .lock()
            .expect("store files lock")
            .get(&generation)
            .cloned()
    }

    /// Run `op`, retrying up to [`MAX_IO_RETRIES`] times on transient error
    /// kinds (`Interrupted`/`WouldBlock`/`TimedOut`). Every absorbed failure is
    /// counted in [`IoStats::retries`]; a persistent fault still surfaces.
    fn retry_io<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempts = 0u32;
        loop {
            match op() {
                Err(err) if attempts < MAX_IO_RETRIES && is_transient(&err) => {
                    attempts += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                }
                other => return other,
            }
        }
    }

    /// Is the store running with fsync barriers on?
    fn sync_mode(&self) -> bool {
        matches!(self.durability, Durability::Sync { .. })
    }

    /// Append one record to the manifest log. Under [`Durability::Sync`] the
    /// log is group-committed: one `fsync` per `group_commit` records (the
    /// batch a crash can lose is therefore bounded at `group_commit - 1`
    /// acknowledged records; `group_commit: 1` syncs every append).
    fn append_manifest(&self, record: &ManifestRecord) -> io::Result<()> {
        let bytes = manifest_record_to_bytes(record);
        let mut manifest = self.manifest.lock().expect("manifest lock");
        let offset = manifest.len;
        self.retry_io(|| {
            manifest
                .file
                .write_all_at(&bytes, offset, "manifest.append")
        })?;
        manifest.len += bytes.len() as u64;
        if let Durability::Sync { group_commit } = self.durability {
            manifest.pending += 1;
            if manifest.pending >= group_commit.max(1) {
                self.retry_io(|| manifest.file.sync_data("manifest.sync"))?;
                manifest.pending = 0;
            }
        }
        Ok(())
    }

    /// Checkpoint the manifest: rewrite it from scratch as one `Snapshot` plus
    /// one `Put` per directory entry, swapped in atomically via a temp file and
    /// rename. Runs on close (drop) and after every compaction; callable any
    /// time to bound manifest growth.
    ///
    /// Takes the mutation lock: the directory snapshot and the rename must not
    /// interleave with an append/rewrite, whose `Put` in the pre-rename file
    /// would otherwise be discarded *without* being reflected in the snapshot.
    pub fn checkpoint(&self) -> io::Result<()> {
        let _mutation = self.mutation.lock().expect("store mutation lock");
        self.checkpoint_locked()
    }

    /// The checkpoint body; caller holds the mutation lock (so the directory
    /// cannot change between the snapshot below and the rename).
    fn checkpoint_locked(&self) -> io::Result<()> {
        let records = {
            let inner = self.inner.lock().expect("store lock");
            let mut records = Vec::with_capacity(inner.directory.len() + 1);
            records.push(ManifestRecord::Snapshot {
                generation: inner.current_gen,
                entries: inner.directory.len() as u32,
            });
            for (id, entry) in inner.directory.iter().enumerate() {
                records.push(ManifestRecord::Put {
                    block_id: id as u32,
                    generation: entry.generation,
                    offset: entry.offset,
                    len: entry.len,
                    summary: entry.summary.clone(),
                });
            }
            records
        };
        let mut bytes = Vec::new();
        for record in &records {
            bytes.extend_from_slice(&manifest_record_to_bytes(record));
        }
        let tmp = manifest_tmp_path(&self.path);
        {
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            let tmp_file = StoreFile::new(file, self.faults.clone());
            self.retry_io(|| tmp_file.write_all_at(&bytes, 0, "checkpoint.write"))?;
            // Under Sync the rename below is a true commit point: the bytes it
            // publishes must already be on stable storage.
            if self.sync_mode() {
                self.retry_io(|| tmp_file.sync_data("checkpoint.sync"))?;
            }
        }
        // The mutation lock (held by the caller) already excludes concurrent
        // appends/rewrites; the manifest lock below additionally keeps the
        // handle swap atomic with respect to any other reader of the struct.
        let mut manifest = self.manifest.lock().expect("manifest lock");
        faults::failpoint(&self.faults, "checkpoint.rename")?;
        std::fs::rename(&tmp, manifest_path(&self.path))?;
        if self.sync_mode() {
            // Persist the directory entry for the rename itself — without this
            // a power cut can roll the whole swap back.
            if let Some(parent) = self.path.parent().filter(|p| !p.as_os_str().is_empty()) {
                let dir = StoreFile::new(File::open(parent)?, self.faults.clone());
                self.retry_io(|| dir.sync_all("checkpoint.dir_sync"))?;
            }
        }
        manifest.file = StoreFile::new(
            OpenOptions::new()
                .read(true)
                .write(true)
                .open(manifest_path(&self.path))?,
            self.faults.clone(),
        );
        manifest.len = bytes.len() as u64;
        manifest.pending = 0;
        Ok(())
    }

    /// Serialize `block`, append its frame to the current generation file,
    /// register it in the directory and log the mutation to the manifest. The
    /// decoded block is admitted to the cache **unpinned** (so a freeze
    /// immediately followed by a scan hits memory, while a tiny cache evicts it
    /// right away — write-out on freeze either way). Returns the new block's id.
    ///
    /// Takes the store's mutation lock (like every directory mutation): a
    /// compaction or checkpoint must never observe a directory entry whose
    /// frame bytes are still being written. Pins don't take this lock, so
    /// cache-hit reads never stall behind an append.
    pub fn append(&self, block: Arc<DataBlock>) -> io::Result<BlockId> {
        let _mutation = self.mutation.lock().expect("store mutation lock");
        let bytes = frame::to_frame(&block);
        let summary = BlockSummary::of(&block);
        // Reserve the file range and directory slot under the inner lock, then
        // write without it, so cache-hit pins never stall behind spill I/O.
        // Publishing the directory entry before the bytes are durable is safe:
        // the id is unreachable by any reader until this call returns it, and
        // the mutation lock held above keeps compaction from copying the
        // half-written frame. (If the write fails, the reserved entry points at
        // unwritten bytes; callers treat a failed append as fatal and never
        // hand the id out.)
        let (generation, offset, id) = {
            let mut inner = self.inner.lock().expect("store lock");
            let generation = inner.current_gen;
            let offset = inner.end_offset;
            inner.end_offset += bytes.len() as u64;
            inner.live_bytes += bytes.len() as u64;
            let id = inner.directory.len();
            inner.directory.push(DirEntry {
                generation,
                offset,
                len: bytes.len() as u32,
                summary: summary.clone(),
            });
            (generation, offset, id)
        };
        let gen_file = self
            .gen_file(generation)
            .expect("current generation file is open");
        self.retry_io(|| gen_file.write_all_at(&bytes, offset, "gen.append_write"))?;
        // Sync barrier: the frame must be on stable storage *before* the
        // manifest Put that references it, or a power cut could replay a
        // directory pointing at bytes the disk never got.
        if self.sync_mode() {
            self.retry_io(|| gen_file.sync_data("gen.sync"))?;
        }
        self.append_manifest(&ManifestRecord::Put {
            block_id: id as u32,
            generation,
            offset,
            len: bytes.len() as u32,
            summary,
        })?;
        let mut inner = self.inner.lock().expect("store lock");
        inner.stats.block_writes += 1;
        inner.stats.bytes_written += bytes.len() as u64;
        self.admit(&mut inner, id, block, 0);
        Ok(id)
    }

    /// Replace block `id` with a new version: append the new frame at the end of
    /// the current generation file, repoint the directory entry, log the mutation
    /// to the manifest and refresh the cached copy (the old frame becomes dead
    /// space, reclaimed by the next compaction). This is how delete flags reach
    /// spilled blocks — the "update a frozen record" path of the paper, applied
    /// to the on-disk tier.
    ///
    /// Takes the store's mutation lock; may trigger dead-frame compaction when
    /// the garbage threshold is crossed.
    pub fn rewrite(&self, id: BlockId, block: Arc<DataBlock>) -> io::Result<()> {
        let _mutation = self.mutation.lock().expect("store mutation lock");
        self.rewrite_locked(id, block)?;
        self.maybe_compact_locked()
    }

    /// The rewrite body; caller holds the mutation lock.
    fn rewrite_locked(&self, id: BlockId, block: Arc<DataBlock>) -> io::Result<()> {
        let bytes = frame::to_frame(&block);
        let summary = BlockSummary::of(&block);
        // Reserve the file range under the lock, write without it (same reasoning
        // as in `append`). The directory is repointed only after the write
        // completes, so concurrent pins read the old, fully written version until
        // the rewrite commits — and `pin`'s position re-check catches the flip.
        let (generation, offset) = {
            let mut inner = self.inner.lock().expect("store lock");
            let generation = inner.current_gen;
            let offset = inner.end_offset;
            inner.end_offset += bytes.len() as u64;
            (generation, offset)
        };
        let gen_file = self
            .gen_file(generation)
            .expect("current generation file is open");
        self.retry_io(|| gen_file.write_all_at(&bytes, offset, "gen.rewrite_write"))?;
        // Same barrier as `append`: frame durable before the Put referencing it.
        if self.sync_mode() {
            self.retry_io(|| gen_file.sync_data("gen.sync"))?;
        }
        self.append_manifest(&ManifestRecord::Put {
            block_id: id as u32,
            generation,
            offset,
            len: bytes.len() as u32,
            summary: summary.clone(),
        })?;
        let mut inner = self.inner.lock().expect("store lock");
        inner.stats.block_writes += 1;
        inner.stats.bytes_written += bytes.len() as u64;
        let old_len = inner.directory[id].len as u64;
        inner.dead_bytes += old_len;
        inner.live_bytes = inner.live_bytes - old_len + bytes.len() as u64;
        inner.directory[id] = DirEntry {
            generation,
            offset,
            len: bytes.len() as u32,
            summary,
        };
        if let Some(entry) = inner.cache.get_mut(&id) {
            // Readers still holding the old Arc keep reading the old version; new
            // pins observe the rewrite.
            let new_bytes = block.byte_size();
            let old_bytes = std::mem::replace(&mut entry.bytes, new_bytes);
            entry.block = block;
            inner.cached_bytes = inner.cached_bytes - old_bytes + new_bytes;
            inner.cache_high_water = inner.cache_high_water.max(inner.cached_bytes);
            self.evict_to_capacity(&mut inner);
        } else {
            self.admit(&mut inner, id, block, 0);
        }
        Ok(())
    }

    /// Compact if the garbage ratio crossed the threshold; caller holds the
    /// mutation lock.
    fn maybe_compact_locked(&self) -> io::Result<()> {
        let over = {
            let inner = self.inner.lock().expect("store lock");
            let total = inner.live_bytes + inner.dead_bytes;
            inner.dead_bytes > 0
                && total > 0
                && !inner.directory.is_empty()
                && (inner.dead_bytes as f64 / total as f64) > inner.garbage_threshold
        };
        if over {
            self.compact_locked()?;
        }
        Ok(())
    }

    /// Compact the store now: copy every live, unpinned frame byte-for-byte into
    /// a fresh generation file, repoint the directory, checkpoint the manifest
    /// (the atomic swap) and delete generation files no longer referenced by any
    /// entry. Pinned frames are never moved — they stay in their old generation,
    /// which survives until nothing references it.
    ///
    /// Runs automatically from [`BlockStore::rewrite`] / [`BlockStore::mutate`]
    /// when the garbage threshold is crossed.
    pub fn compact(&self) -> io::Result<()> {
        let _mutation = self.mutation.lock().expect("store mutation lock");
        self.compact_locked()
    }

    /// The compaction body; caller holds the mutation lock (so no append id can
    /// be rewritten mid-pass — appends may still add *new* ids, which land in the
    /// new generation file and are untouched here).
    fn compact_locked(&self) -> io::Result<()> {
        // Snapshot the directory and the pinned set. Pins taken after this
        // snapshot are safe either way: the frame contents are identical in both
        // generations, and old generation files are only deleted once no
        // directory entry references them (open handles keep in-flight reads
        // alive even past the unlink).
        let (entries, pinned, old_gen) = {
            let inner = self.inner.lock().expect("store lock");
            let pinned: HashSet<BlockId> = inner
                .cache
                .iter()
                .filter(|(_, e)| e.pins > 0)
                .map(|(&id, _)| id)
                .collect();
            (inner.directory.clone(), pinned, inner.current_gen)
        };
        let new_gen = old_gen + 1;
        let new_path = gen_path(&self.path, new_gen);
        let new_file = StoreFile::new(
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&new_path)?,
            self.faults.clone(),
        );

        let mut moves: Vec<(BlockId, u64)> = Vec::new();
        let mut write_off = 0u64;
        let mut moved_bytes = 0u64;
        let mut skipped = 0u64;
        for (id, entry) in entries.iter().enumerate() {
            if pinned.contains(&id) {
                skipped += 1;
                continue;
            }
            let mut buf = vec![0u8; entry.len as usize];
            // The mutation lock (held here) excludes other compactions and all
            // directory mutations, so every referenced generation stays open.
            let src = self
                .gen_file(entry.generation)
                .expect("referenced generation file is open during compaction");
            self.retry_io(|| src.read_exact_at(&mut buf, entry.offset, "compact.read"))?;
            self.retry_io(|| new_file.write_all_at(&buf, write_off, "compact.write"))?;
            moves.push((id, write_off));
            write_off += entry.len as u64;
            moved_bytes += entry.len as u64;
        }
        // Sync barrier: the copied frames must be durable before the
        // checkpoint below publishes directory entries pointing at them.
        if self.sync_mode() {
            self.retry_io(|| new_file.sync_data("compact.sync"))?;
        }

        // Publish the new generation file before repointing, so a pin that
        // observes a repointed entry always finds its file handle.
        self.files
            .lock()
            .expect("store files lock")
            .insert(new_gen, new_file);

        let referenced = {
            let mut inner = self.inner.lock().expect("store lock");
            for &(id, offset) in &moves {
                // The mutation lock bars rewrites, so the snapshot positions are
                // still current; only repointing is left.
                let len = inner.directory[id].len;
                let summary = inner.directory[id].summary.clone();
                inner.directory[id] = DirEntry {
                    generation: new_gen,
                    offset,
                    len,
                    summary,
                };
            }
            inner.current_gen = new_gen;
            inner.end_offset = write_off;
            inner.stats.compactions += 1;
            inner.stats.compacted_frames += moves.len() as u64;
            inner.stats.compacted_bytes += moved_bytes;
            inner.stats.compaction_pinned_skipped += skipped;
            inner
                .directory
                .iter()
                .map(|e| e.generation)
                .chain(std::iter::once(new_gen))
                .collect::<HashSet<u32>>()
        };

        // Durable swap: the checkpointed manifest is the commit point. A crash
        // before the rename leaves the old manifest (pointing at the old
        // generations, all still present); after it, the new one. Either state
        // replays to a consistent directory. (The caller already holds the
        // mutation lock — take the `_locked` entry point.)
        self.checkpoint_locked()?;

        // Reclaim: close and delete generation files nothing references anymore.
        // Generation 0 is special — its file *is* the store path, the identity
        // callers (and `reopen`) look for on disk — so it is truncated to zero
        // bytes rather than unlinked.
        {
            let mut files = self.files.lock().expect("store files lock");
            let stale: Vec<u32> = files
                .keys()
                .filter(|g| !referenced.contains(g))
                .copied()
                .collect();
            for generation in stale {
                if generation == 0 {
                    if let Some(file) = files.get(&0) {
                        let _ = file.set_len(0, "compact.reclaim");
                    }
                    continue;
                }
                files.remove(&generation);
                let _ = std::fs::remove_file(gen_path(&self.path, generation));
            }
        }

        // Dead bytes now: whatever survives on disk beyond the live frames —
        // old generations kept alive by pinned frames still carry their garbage.
        // (The files lock is released before taking `inner`: nothing in the
        // store may ever hold `files` while waiting on `inner`.)
        let on_disk = {
            let files = self.files.lock().expect("store files lock");
            let mut total = 0u64;
            for file in files.values() {
                total += file.metadata()?.len();
            }
            total
        };
        {
            let mut inner = self.inner.lock().expect("store lock");
            inner.dead_bytes = on_disk.saturating_sub(inner.live_bytes);
        }
        Ok(())
    }

    /// Pin block `id` into memory and return a guard that keeps it cached (and the
    /// underlying `Arc` alive) until dropped. Scans hold one pin per morsel, so a
    /// worker never observes eviction mid-scan.
    pub fn pin(self: &Arc<Self>, id: BlockId) -> Result<PinnedBlock, StoreError> {
        loop {
            let (generation, offset, len) = {
                let mut inner = self.inner.lock().expect("store lock");
                if let Some(entry) = inner.cache.get_mut(&id) {
                    entry.pins += 1;
                    entry.referenced = true;
                    let block = Arc::clone(&entry.block);
                    inner.stats.cache_hits += 1;
                    return Ok(PinnedBlock {
                        store: Arc::clone(self),
                        id,
                        block,
                    });
                }
                inner.stats.cache_misses += 1;
                inner.stats.block_reads += 1;
                let entry = &inner.directory[id];
                let position = (entry.generation, entry.offset, entry.len as usize);
                inner.stats.bytes_read += entry.len as u64;
                position
            };
            // Read and decode without holding the lock: misses on different blocks
            // proceed in parallel. Failures are judged *after* re-checking the
            // directory — a concurrent compaction may have closed this
            // generation (`gen_file` → `None`), truncated the reclaimed
            // generation-0 file mid-read, or repointed the entry, all of which
            // surface as I/O or checksum errors here but simply mean "retry
            // against the fresh directory entry".
            let loaded: Result<Arc<DataBlock>, StoreError> = match self.gen_file(generation) {
                Some(file) => {
                    let mut bytes = vec![0u8; len];
                    self.retry_io(|| file.read_exact_at(&mut bytes, offset, "pin.read"))
                        .map_err(StoreError::from)
                        .and_then(|()| {
                            frame::from_frame(&bytes)
                                .map(Arc::new)
                                .map_err(StoreError::from)
                        })
                }
                None => Err(StoreError::Io(io::Error::new(
                    io::ErrorKind::NotFound,
                    "generation file closed by compaction",
                ))),
            };

            let mut inner = self.inner.lock().expect("store lock");
            if let Some(entry) = inner.cache.get_mut(&id) {
                // Another worker published the block while we were reading. Any
                // cached entry passed the directory check below (or came straight
                // from an append/rewrite), so it is at least as new as our read.
                entry.pins += 1;
                entry.referenced = true;
                let block = Arc::clone(&entry.block);
                return Ok(PinnedBlock {
                    store: Arc::clone(self),
                    id,
                    block,
                });
            }
            let current = &inner.directory[id];
            if current.offset != offset || current.generation != generation {
                // A rewrite (or compaction) repointed the block while we were
                // reading the old frame: publishing our copy could resurrect
                // pre-rewrite data for every later pin — and any read failure
                // above was the concurrent move, not corruption. Retry against
                // the new directory entry (a wasted read is counted — the
                // counters report I/O performed).
                continue;
            }
            // Entry unmoved: a failure here is real (disk error, bit rot).
            let block = loaded?;
            self.admit(&mut inner, id, Arc::clone(&block), 1);
            return Ok(PinnedBlock {
                store: Arc::clone(self),
                id,
                block,
            });
        }
    }

    /// [`BlockStore::pin`] with the typed scan error: a failure comes back as a
    /// [`ColdReadError`] naming the block id, generation file and byte offset
    /// of the frame that could not be loaded. This is the error the scan paths
    /// carry out of worker threads instead of panicking.
    pub fn pin_described(self: &Arc<Self>, id: BlockId) -> Result<PinnedBlock, ColdReadError> {
        self.pin(id).map_err(|err| {
            // `pin` fails only when the directory entry was *unmoved* across
            // the read, so the position it reports now is the one that failed.
            let (generation, offset) = {
                let inner = self.inner.lock().expect("store lock");
                inner
                    .directory
                    .get(id)
                    .map(|e| (e.generation, e.offset))
                    .unwrap_or((0, 0))
            };
            ColdReadError {
                block_id: id,
                generation,
                offset,
                detail: err.to_string(),
            }
        })
    }

    /// Atomically read-modify-write block `id`: `f` receives the current version
    /// and returns the replacement block (or `None` to leave it unchanged) plus a
    /// caller result. The whole load → rebuild → rewrite sequence holds the
    /// store's mutation lock, so two relation clones mutating the same block
    /// through their shared store serialise instead of losing an update. May
    /// trigger dead-frame compaction when the garbage threshold is crossed.
    pub fn mutate<R>(
        self: &Arc<Self>,
        id: BlockId,
        f: impl FnOnce(&DataBlock) -> (Option<DataBlock>, R),
    ) -> Result<R, StoreError> {
        let _mutation = self.mutation.lock().expect("store mutation lock");
        let pinned = self.pin(id)?;
        let (replacement, result) = f(&pinned);
        drop(pinned);
        if let Some(block) = replacement {
            self.rewrite_locked(id, Arc::new(block))?;
            self.maybe_compact_locked()?;
        }
        Ok(result)
    }

    // ------------------------------------------------------------------ read-ahead

    /// Queue blocks for the read-ahead worker: each id not already cached (or
    /// queued) is paged into the cache from a helper thread, unpinned, counted
    /// under [`IoStats::prefetch_reads`]. Sequential cold scans call this for the
    /// next few cold morsels ahead of the one they are pinning, so the demand pin
    /// finds the block already resident. Errors during a prefetch are swallowed —
    /// the demand read surfaces them.
    pub fn prefetch(self: &Arc<Self>, ids: &[BlockId]) {
        if ids.is_empty() {
            return;
        }
        let mut state = self.prefetch.state.lock().expect("prefetch lock");
        if state.shutdown {
            return;
        }
        let mut queued_any = false;
        for &id in ids {
            if state.queued.contains(&id) || self.is_cached(id) {
                continue;
            }
            state.queued.insert(id);
            state.queue.push_back(id);
            queued_any = true;
        }
        if queued_any && state.worker.is_none() {
            let weak = Arc::downgrade(self);
            let shared = Arc::clone(&self.prefetch);
            state.worker = Some(std::thread::spawn(move || prefetch_worker(weak, shared)));
        }
        drop(state);
        if queued_any {
            self.prefetch.work.notify_one();
        }
    }

    /// Load one prefetched block into the cache (the worker's body).
    fn prefetch_load(self: &Arc<Self>, id: BlockId) -> Result<(), StoreError> {
        let (generation, offset, len) = {
            let mut inner = self.inner.lock().expect("store lock");
            if inner.cache.contains_key(&id) {
                return Ok(()); // a demand read beat us to it
            }
            let entry = &inner.directory[id];
            let position = (entry.generation, entry.offset, entry.len as usize);
            inner.stats.prefetch_reads += 1;
            inner.stats.bytes_read += position.2 as u64;
            position
        };
        // A prefetch is best-effort: a generation closed (or a frame moved) by
        // a concurrent compaction just means the demand pin will do the work
        // against the fresh directory — never an error, never a panic.
        let Some(file) = self.gen_file(generation) else {
            return Ok(());
        };
        let mut bytes = vec![0u8; len];
        self.retry_io(|| file.read_exact_at(&mut bytes, offset, "prefetch.read"))?;
        let block = Arc::new(frame::from_frame(&bytes)?);
        let mut inner = self.inner.lock().expect("store lock");
        if inner.cache.contains_key(&id) {
            return Ok(());
        }
        let current = &inner.directory[id];
        if current.offset != offset || current.generation != generation {
            return Ok(()); // repointed mid-read: don't publish a stale frame
        }
        self.admit(&mut inner, id, block, 0);
        Ok(())
    }

    /// Block until the read-ahead queue is empty and no prefetch load is in
    /// flight. Benches and differential tests call this before
    /// [`clear_cache`](BlockStore::clear_cache)/[`reset_stats`](BlockStore::reset_stats)
    /// so a straggling prefetch from a previous scan can neither warm blocks
    /// into the next measurement nor leak reads out of it.
    pub fn quiesce_prefetch(&self) {
        let mut state = self.prefetch.state.lock().expect("prefetch lock");
        while !(state.shutdown || state.queue.is_empty() && state.queued.is_empty()) {
            state = self
                .prefetch
                .idle
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Stop the read-ahead worker (idempotent; runs from `Drop`).
    fn shutdown_prefetch(&self) {
        let handle = {
            let mut state = self.prefetch.state.lock().expect("prefetch lock");
            state.shutdown = true;
            state.queue.clear();
            state.queued.clear();
            state.worker.take()
        };
        self.prefetch.work.notify_all();
        self.prefetch.idle.notify_all();
        if let Some(handle) = handle {
            // If the worker's own upgraded Arc was the last one, this drop runs
            // *on* the worker thread — joining ourselves would deadlock; the
            // thread exits right after this returns.
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }

    /// Drop every unpinned cached block (the bench harness uses this to measure
    /// cold scans).
    pub fn clear_cache(&self) {
        let inner = &mut *self.inner.lock().expect("store lock");
        let mut freed = 0;
        inner.cache.retain(|_, entry| {
            if entry.pins > 0 {
                true
            } else {
                freed += entry.bytes;
                false
            }
        });
        inner.cached_bytes -= freed;
        let cache = &inner.cache;
        inner.clock.retain(|id| cache.contains_key(id));
        inner.hand = 0;
    }

    /// Number of cached blocks with at least one live pin. Streaming scans hold one
    /// pin per in-flight cold morsel, so this never exceeds the worker count — the
    /// tests of the bounded streaming scan assert exactly that.
    pub fn pinned_count(&self) -> usize {
        self.inner
            .lock()
            .expect("store lock")
            .cache
            .values()
            .filter(|entry| entry.pins > 0)
            .count()
    }

    /// Is block `id` currently resident in the cache? (Test/bench introspection.)
    pub fn is_cached(&self, id: BlockId) -> bool {
        self.inner
            .lock()
            .expect("store lock")
            .cache
            .contains_key(&id)
    }

    /// Which generation file holds block `id`'s frame (test/bench introspection —
    /// compaction tests assert pinned frames stay put).
    pub fn entry_generation(&self, id: BlockId) -> u32 {
        self.inner.lock().expect("store lock").directory[id].generation
    }

    fn admit(&self, inner: &mut Inner, id: BlockId, block: Arc<DataBlock>, pins: u32) {
        let bytes = block.byte_size();
        inner.cache.insert(
            id,
            CacheEntry {
                block,
                pins,
                referenced: true,
                bytes,
            },
        );
        inner.clock.push(id);
        inner.cached_bytes += bytes;
        inner.cache_high_water = inner.cache_high_water.max(inner.cached_bytes);
        self.evict_to_capacity(inner);
    }

    /// CLOCK sweep: evict unpinned, unreferenced blocks until the cache fits the
    /// capacity. Pinned blocks are skipped; if everything left is pinned the cache
    /// transiently overshoots (pins are short-lived — one morsel).
    fn evict_to_capacity(&self, inner: &mut Inner) {
        let mut wraps = 0u32;
        while inner.cached_bytes > self.capacity && !inner.clock.is_empty() {
            if inner.hand >= inner.clock.len() {
                inner.hand = 0;
                wraps += 1;
                if wraps > 2 {
                    break; // everything pinned: give up, pins drain soon
                }
            }
            let id = inner.clock[inner.hand];
            let entry = inner.cache.get_mut(&id).expect("clock entry is cached");
            if entry.pins > 0 {
                inner.hand += 1;
            } else if entry.referenced {
                entry.referenced = false;
                inner.hand += 1;
            } else {
                let entry = inner.cache.remove(&id).expect("checked above");
                inner.cached_bytes -= entry.bytes;
                inner.stats.evictions += 1;
                inner.clock.swap_remove(inner.hand);
            }
        }
    }

    fn unpin(&self, id: BlockId) {
        let mut inner = self.inner.lock().expect("store lock");
        if let Some(entry) = inner.cache.get_mut(&id) {
            debug_assert!(entry.pins > 0, "unpin without pin");
            entry.pins = entry.pins.saturating_sub(1);
        }
    }
}

/// The read-ahead worker: drain the queue, paging blocks into the cache. Holds
/// only a [`Weak`] to the store while parked, so the store's `Drop` (which
/// requests the shutdown) is never kept from running by its own worker.
fn prefetch_worker(weak: Weak<BlockStore>, shared: Arc<PrefetchShared>) {
    loop {
        let id = {
            let mut state = shared.state.lock().expect("prefetch lock");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(id) = state.queue.pop_front() {
                    break id;
                }
                state = shared
                    .work
                    .wait(state)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        let Some(store) = weak.upgrade() else {
            return;
        };
        // Resilience: a failed read-ahead must neither kill this thread nor the
        // scan it serves — the block simply stays cold and the demand pin pays
        // the read (reporting the real error, if it persists). Count it so the
        // counters tell the story.
        if store.prefetch_load(id).is_err() {
            store
                .inner
                .lock()
                .expect("store lock")
                .stats
                .prefetch_errors += 1;
        }
        {
            let mut state = shared.state.lock().expect("prefetch lock");
            state.queued.remove(&id);
            if state.queue.is_empty() && state.queued.is_empty() {
                shared.idle.notify_all();
            }
        }
        // `store` drops here; if it was the last Arc, `Drop` runs on this thread
        // and `shutdown_prefetch` skips the self-join.
        drop(store);
    }
}

impl Drop for BlockStore {
    fn drop(&mut self) {
        self.shutdown_prefetch();
        if self.delete_on_drop {
            let generations: Vec<u32> = self
                .files
                .lock()
                .expect("store files lock")
                .keys()
                .copied()
                .collect();
            for generation in generations {
                let _ = std::fs::remove_file(gen_path(&self.path, generation));
            }
            let _ = std::fs::remove_file(manifest_path(&self.path));
            let _ = std::fs::remove_file(manifest_tmp_path(&self.path));
        } else {
            // Clean close: checkpoint so reopen replays one snapshot instead of
            // the whole mutation history (best effort — the incremental log is
            // still valid if this fails).
            let _ = self.checkpoint();
        }
        unregister_live(&self.registered);
    }
}

/// A pinned, decoded block. Dereferences to [`DataBlock`]; the pin (and therefore
/// cache residency of the block) is released on drop. Even after an unlikely forced
/// eviction the `Arc` keeps the data alive, so holding a `PinnedBlock` is always
/// safe — pinning exists to prevent eviction churn and duplicate loads, not to
/// uphold memory safety.
#[derive(Debug)]
pub struct PinnedBlock {
    store: Arc<BlockStore>,
    id: BlockId,
    block: Arc<DataBlock>,
}

impl Deref for PinnedBlock {
    type Target = DataBlock;
    fn deref(&self) -> &DataBlock {
        &self.block
    }
}

impl Drop for PinnedBlock {
    fn drop(&mut self) {
        self.store.unpin(self.id);
    }
}

/// A borrowed view of one cold block of a relation, resolving transparently to the
/// heap-resident block or to a pinned copy paged in from the spill file. Returned by
/// [`crate::Relation::cold_block`]; dereferences to [`DataBlock`].
#[derive(Debug)]
pub struct BlockRef {
    inner: BlockRefInner,
}

#[derive(Debug)]
enum BlockRefInner {
    Resident(Arc<DataBlock>),
    Pinned(PinnedBlock),
}

impl BlockRef {
    pub(crate) fn resident(block: Arc<DataBlock>) -> BlockRef {
        BlockRef {
            inner: BlockRefInner::Resident(block),
        }
    }

    pub(crate) fn pinned(block: PinnedBlock) -> BlockRef {
        BlockRef {
            inner: BlockRefInner::Pinned(block),
        }
    }

    /// Does this reference hold a block-cache pin (i.e. the block was paged in from
    /// a spill store)? Heap-resident blocks need no pin.
    pub fn is_pinned(&self) -> bool {
        matches!(self.inner, BlockRefInner::Pinned(_))
    }
}

impl Deref for BlockRef {
    type Target = DataBlock;
    fn deref(&self) -> &DataBlock {
        match &self.inner {
            BlockRefInner::Resident(block) => block,
            BlockRefInner::Pinned(pinned) => pinned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablocks::builder::{freeze, int_column, str_column};
    use datablocks::Value;

    fn block(tag: i64, rows: i64) -> Arc<DataBlock> {
        let ids = int_column((0..rows).map(|i| tag * 10_000 + i).collect());
        let grp = str_column((0..rows).map(|i| format!("b{tag}-{}", i % 3)).collect());
        Arc::new(freeze(&[ids, grp]))
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "datablocks-store-{tag}-{}-{}.dbs",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn remove_store_files(path: &Path) {
        BlockStore::remove_files(path).expect("remove store files");
    }

    #[test]
    fn append_and_pin_roundtrip() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        let b0 = block(0, 1000);
        let b1 = block(1, 1000);
        let id0 = store.append(Arc::clone(&b0)).unwrap();
        let id1 = store.append(Arc::clone(&b1)).unwrap();
        assert_eq!((id0, id1), (0, 1));
        assert_eq!(store.block_count(), 2);
        let pinned = store.pin(id1).unwrap();
        assert_eq!(pinned.get(5, 0), Value::Int(10_005));
        // append admits to the cache, so this pin was a hit with zero disk reads
        let stats = store.stats();
        assert_eq!(stats.block_reads, 0);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.block_writes, 2);
        assert!(stats.bytes_written > 0);
        // appends create no garbage
        assert_eq!(store.dead_bytes(), 0);
        assert!(store.live_bytes() > 0);
    }

    #[test]
    fn cache_miss_reads_from_disk_and_verifies_checksum() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        let id = store.append(block(7, 2000)).unwrap();
        store.clear_cache();
        assert!(!store.is_cached(id));
        let pinned = store.pin(id).unwrap();
        assert_eq!(pinned.get(1999, 0), Value::Int(71_999));
        let stats = store.stats();
        assert_eq!(stats.block_reads, 1);
        assert_eq!(stats.cache_misses, 1);
        assert!(stats.bytes_read > 0);
        assert!(store.is_cached(id));
    }

    #[test]
    fn tiny_cache_evicts_unpinned_blocks() {
        let store = BlockStore::create_temp(1).unwrap(); // effectively nothing fits
        let id0 = store.append(block(0, 1000)).unwrap();
        let id1 = store.append(block(1, 1000)).unwrap();
        // appends get evicted immediately (capacity 1 byte)
        assert!(!store.is_cached(id0) || !store.is_cached(id1));
        let p0 = store.pin(id0).unwrap();
        let p1 = store.pin(id1).unwrap();
        // both pinned: cache overshoots rather than evicting pinned blocks
        assert_eq!(p0.get(0, 0), Value::Int(0));
        assert_eq!(p1.get(0, 0), Value::Int(10_000));
        assert!(store.is_cached(id0) && store.is_cached(id1));
        drop(p0);
        drop(p1);
        // next admission sweeps the now-unpinned blocks out
        let id2 = store.append(block(2, 1000)).unwrap();
        let _p2 = store.pin(id2).unwrap();
        assert!(store.stats().evictions > 0);
        assert!(!store.is_cached(id0));
    }

    #[test]
    fn summaries_answer_without_io() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        let id = store.append(block(3, 500)).unwrap();
        store.clear_cache();
        store.reset_stats();
        let (tuples, live) = store.with_summary(id, |s| (s.tuple_count, s.live_tuple_count()));
        assert_eq!((tuples, live), (500, 500));
        assert_eq!(store.stats().block_reads, 0);
        assert!(store.entry_len(id) > 0);
    }

    #[test]
    fn rewrite_repoints_directory_and_cache() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        let original = block(1, 100);
        let id = store.append(Arc::clone(&original)).unwrap();
        let mut updated = (*original).clone();
        updated.delete(42);
        store.rewrite(id, Arc::new(updated)).unwrap();
        let pinned = store.pin(id).unwrap();
        assert!(pinned.is_deleted(42));
        assert_eq!(store.with_summary(id, |s| s.deleted_count), 1);
        // cold read after a rewrite decodes the new frame
        drop(pinned);
        store.clear_cache();
        let reloaded = store.pin(id).unwrap();
        assert!(reloaded.is_deleted(42));
        assert_eq!(reloaded.live_tuple_count(), 99);
    }

    #[test]
    fn rewrite_tracks_dead_bytes() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        store.set_garbage_threshold(1.0); // no auto-compaction in this test
        let original = block(0, 500);
        let id = store.append(Arc::clone(&original)).unwrap();
        let first_len = store.entry_len(id) as u64;
        assert_eq!(store.dead_bytes(), 0);
        let mut updated = (*original).clone();
        updated.delete(1);
        store.rewrite(id, Arc::new(updated)).unwrap();
        assert_eq!(store.dead_bytes(), first_len, "old frame became garbage");
        assert_eq!(store.live_bytes(), store.entry_len(id) as u64);
    }

    #[test]
    fn concurrent_mutations_do_not_lose_updates() {
        // Many threads each flag a distinct row of the same block through
        // `mutate`; the mutation lock must serialise the read-modify-write
        // cycles so no tombstone is lost.
        let store = BlockStore::create_temp(1).unwrap(); // thrash: force reloads
        let id = store.append(block(0, 64)).unwrap();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for row in (t..64).step_by(8) {
                        let deleted = store
                            .mutate(id, |current| {
                                if current.is_deleted(row) {
                                    (None, false)
                                } else {
                                    let mut b = current.clone();
                                    b.delete(row);
                                    (Some(b), true)
                                }
                            })
                            .unwrap();
                        assert!(deleted, "row {row} deleted exactly once");
                    }
                });
            }
        });
        store.clear_cache();
        let pinned = store.pin(id).unwrap();
        assert_eq!(pinned.live_tuple_count(), 0, "all 64 tombstones survived");
        assert_eq!(store.with_summary(id, |s| s.deleted_count), 64);
    }

    #[test]
    fn open_rebuilds_directory_from_summaries_only() {
        let path = temp_path("open");
        {
            let store = BlockStore::create(&path, usize::MAX).unwrap();
            store.append(block(0, 800)).unwrap();
            store.append(block(1, 900)).unwrap();
        }
        // `open` ignores the manifest and walks the frames — remove the manifest
        // to prove it.
        std::fs::remove_file(manifest_path(&path)).unwrap();
        let reopened = BlockStore::open(&path, usize::MAX).unwrap();
        assert_eq!(reopened.block_count(), 2);
        assert_eq!(reopened.with_summary(1, |s| s.tuple_count), 900);
        // rebuilding the directory touched no payloads
        assert_eq!(reopened.stats().block_reads, 0);
        let pinned = reopened.pin(0).unwrap();
        assert_eq!(pinned.get(7, 0), Value::Int(7));
        drop(pinned);
        drop(reopened);
        remove_store_files(&path);
    }

    #[test]
    fn open_of_empty_file_is_an_empty_store() {
        let path = temp_path("empty");
        drop(BlockStore::create(&path, 1024).unwrap());
        let reopened = BlockStore::open(&path, 1024).unwrap();
        assert_eq!(reopened.block_count(), 0);
        assert_eq!(reopened.cached_bytes(), 0);
        drop(reopened);
        remove_store_files(&path);
    }

    #[test]
    fn reopen_replays_manifest_without_payload_io() {
        let path = temp_path("reopen");
        {
            let store = BlockStore::create(&path, usize::MAX).unwrap();
            store.append(block(0, 800)).unwrap();
            let original = block(1, 900);
            let id = store.append(Arc::clone(&original)).unwrap();
            // a rewrite leaves a superseded frame — the manifest must resolve to
            // the new version (the frame walk of `open` could not)
            let mut updated = (*original).clone();
            updated.delete(3);
            store.rewrite(id, Arc::new(updated)).unwrap();
        } // drop checkpoints
        let reopened = BlockStore::reopen(&path, usize::MAX).unwrap();
        assert_eq!(reopened.block_count(), 2);
        assert_eq!(reopened.with_summary(1, |s| s.deleted_count), 1);
        assert_eq!(
            reopened.stats().block_reads,
            0,
            "directory rebuilt without payload I/O"
        );
        let pinned = reopened.pin(1).unwrap();
        assert!(pinned.is_deleted(3));
        assert_eq!(pinned.live_tuple_count(), 899);
        drop(pinned);
        drop(reopened);
        remove_store_files(&path);
    }

    #[test]
    fn reopen_replays_incremental_log_after_simulated_crash() {
        // A crash leaves the incremental Put log (no clean-close checkpoint).
        // Simulate with a byte-level copy of the store files taken while the
        // store is still open.
        let path = temp_path("crash-src");
        let image = temp_path("crash-img");
        {
            let store = BlockStore::create(&path, usize::MAX).unwrap();
            let original = block(0, 400);
            let id = store.append(Arc::clone(&original)).unwrap();
            store.append(block(1, 300)).unwrap();
            let mut updated = (*original).clone();
            updated.delete(7);
            store.rewrite(id, Arc::new(updated)).unwrap();
            // crash image: data + manifest as they exist mid-life. The manifest
            // holds three Puts — two appends and a duplicate block id 0 from the
            // rewrite; replay must be last-writer-wins.
            std::fs::copy(&path, &image).unwrap();
            std::fs::copy(manifest_path(&path), manifest_path(&image)).unwrap();
        }
        let reopened = BlockStore::reopen(&image, usize::MAX).unwrap();
        assert_eq!(reopened.block_count(), 2);
        assert_eq!(
            reopened.with_summary(0, |s| s.deleted_count),
            1,
            "duplicate block id resolves to the last writer"
        );
        let pinned = reopened.pin(0).unwrap();
        assert!(pinned.is_deleted(7));
        drop(pinned);
        drop(reopened);
        remove_store_files(&path);
        remove_store_files(&image);
    }

    #[test]
    fn reopen_discards_torn_final_manifest_record_and_truncates() {
        let path = temp_path("torn");
        {
            let store = BlockStore::create(&path, usize::MAX).unwrap();
            store.append(block(0, 500)).unwrap();
            store.append(block(1, 600)).unwrap();
        }
        // Simulate a crash mid-manifest-append: tack the prefix of a valid
        // record onto the log.
        let torn = manifest_record_to_bytes(&ManifestRecord::Put {
            block_id: 9,
            generation: 0,
            offset: 123,
            len: 456,
            summary: BlockSummary::of(&block(9, 10)),
        });
        let mpath = manifest_path(&path);
        let clean_len = std::fs::metadata(&mpath).unwrap().len();
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&mpath).unwrap();
            f.write_all(&torn[..torn.len() / 2]).unwrap();
        }
        let reopened = BlockStore::reopen(&path, usize::MAX).unwrap();
        assert_eq!(reopened.block_count(), 2, "torn record discarded");
        assert_eq!(
            std::fs::metadata(&mpath).unwrap().len(),
            clean_len,
            "manifest truncated back to its valid prefix"
        );
        let pinned = reopened.pin(1).unwrap();
        assert_eq!(pinned.tuple_count(), 600);
        drop(pinned);
        drop(reopened);
        remove_store_files(&path);
    }

    #[test]
    fn reopen_rejects_bit_flipped_manifest_tail() {
        let path = temp_path("flip");
        {
            let store = BlockStore::create(&path, usize::MAX).unwrap();
            store.append(block(0, 500)).unwrap();
            store.append(block(1, 600)).unwrap();
        }
        // Flip a byte inside the *final* record's body: replay keeps the valid
        // prefix and drops the corrupt tail. The final record here is a Put of
        // the clean-close checkpoint, so dropping it leaves fewer entries than
        // the checkpoint's Snapshot declared — which must surface as a loud
        // corruption error, not a silently shorter store.
        let mpath = manifest_path(&path);
        let bytes = std::fs::read(&mpath).unwrap();
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        std::fs::write(&mpath, &flipped).unwrap();
        match BlockStore::reopen(&path, usize::MAX) {
            Err(StoreError::Frame(FrameError::Corrupt(msg))) => {
                assert!(msg.contains("torn"), "{msg}");
            }
            other => panic!("expected torn-checkpoint corruption, got {other:?}"),
        }
        // the failed reopen must unregister: a retry with a repaired manifest works
        std::fs::write(&mpath, &bytes).unwrap();
        let reopened = BlockStore::reopen(&path, usize::MAX).unwrap();
        assert_eq!(reopened.block_count(), 2);
        drop(reopened);
        remove_store_files(&path);
    }

    #[test]
    fn reopen_of_live_store_is_rejected() {
        let path = temp_path("live");
        let store = BlockStore::create(&path, usize::MAX).unwrap();
        store.append(block(0, 100)).unwrap();
        match BlockStore::reopen(&path, usize::MAX) {
            Err(StoreError::Io(err)) => {
                assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
                assert!(err.to_string().contains("live"), "{err}");
            }
            other => panic!("expected AlreadyExists, got {other:?}"),
        }
        // `create` over a live store is equally rejected
        assert_eq!(
            BlockStore::create(&path, usize::MAX).unwrap_err().kind(),
            io::ErrorKind::AlreadyExists
        );
        drop(store);
        // once closed, reopening works
        let reopened = BlockStore::reopen(&path, usize::MAX).unwrap();
        assert_eq!(reopened.block_count(), 1);
        drop(reopened);
        remove_store_files(&path);
    }

    #[test]
    fn compaction_reclaims_dead_frames() {
        let path = temp_path("compact");
        let store = BlockStore::create(&path, usize::MAX).unwrap();
        store.set_garbage_threshold(1.0); // explicit compaction only
        let mut blocks = Vec::new();
        for tag in 0..4 {
            let b = block(tag, 400);
            store.append(Arc::clone(&b)).unwrap();
            blocks.push(b);
        }
        // rewrite every block a few times: lots of dead frames in generation 0
        for round in 0..3 {
            for (id, b) in blocks.iter().enumerate() {
                let mut updated = (**b).clone();
                for r in 0..=round {
                    updated.delete(r);
                }
                store.rewrite(id, Arc::new(updated)).unwrap();
            }
        }
        let dead_before = store.dead_bytes();
        assert!(dead_before > 0);
        let gen0_size = std::fs::metadata(&path).unwrap().len();
        store.compact().unwrap();
        let stats = store.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.compacted_frames, 4);
        assert!(stats.compacted_bytes > 0);
        assert_eq!(store.dead_bytes(), 0, "all garbage reclaimed");
        // the store rolled to generation 1; generation 0's file is gone
        assert!(gen_path(&path, 1).exists());
        assert!(!path.exists() || std::fs::metadata(&path).unwrap().len() < gen0_size);
        for id in 0..4 {
            assert_eq!(store.entry_generation(id), 1);
        }
        // data survives, cold
        store.clear_cache();
        let pinned = store.pin(2).unwrap();
        assert!(pinned.is_deleted(0) && pinned.is_deleted(2));
        assert_eq!(pinned.live_tuple_count(), 397);
        drop(pinned);
        drop(store);
        remove_store_files(&path);
    }

    #[test]
    fn auto_compaction_triggers_on_garbage_threshold() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        store.set_garbage_threshold(0.4);
        let original = block(0, 300);
        let id = store.append(Arc::clone(&original)).unwrap();
        // each rewrite deadens the previous frame; the ratio crosses 0.4 after
        // the first rewrite already (1 dead : 1 live)
        for row in 0..3 {
            let mut updated = (*original).clone();
            updated.delete(row);
            store.rewrite(id, Arc::new(updated)).unwrap();
        }
        let stats = store.stats();
        assert!(stats.compactions >= 1, "threshold must trigger: {stats:?}");
        let total = store.live_bytes() + store.dead_bytes();
        assert!(
            (store.dead_bytes() as f64) / (total as f64) <= 0.4 + f64::EPSILON,
            "garbage bounded after compaction"
        );
        store.clear_cache();
        let pinned = store.pin(id).unwrap();
        assert!(pinned.is_deleted(2), "last rewrite won");
    }

    #[test]
    fn compaction_never_moves_a_pinned_frame() {
        let path = temp_path("pinned");
        let store = BlockStore::create(&path, usize::MAX).unwrap();
        store.set_garbage_threshold(1.0);
        let id0 = store.append(block(0, 300)).unwrap();
        let original = block(1, 300);
        let id1 = store.append(Arc::clone(&original)).unwrap();
        let mut updated = (*original).clone();
        updated.delete(5);
        store.rewrite(id1, Arc::new(updated)).unwrap();

        let pin = store.pin(id0).unwrap(); // hold id0 across the compaction
        store.compact().unwrap();
        let stats = store.stats();
        assert_eq!(stats.compaction_pinned_skipped, 1);
        assert_eq!(stats.compacted_frames, 1, "only the unpinned block moved");
        assert_eq!(store.entry_generation(id0), 0, "pinned frame stayed put");
        assert_eq!(store.entry_generation(id1), 1);
        // generation 0 survives (a directory entry still references it), and the
        // pinned block keeps reading fine
        assert!(path.exists());
        assert_eq!(pin.get(0, 0), Value::Int(0));
        drop(pin);

        // with the pin gone, the next compaction moves it and reclaims gen 0 —
        // the base file (the store's on-disk identity) stays present but empty
        store.compact().unwrap();
        assert_eq!(store.entry_generation(id0), 2);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            0,
            "unreferenced base generation truncated to zero"
        );
        store.clear_cache();
        let pinned = store.pin(id0).unwrap();
        assert_eq!(pinned.get(0, 0), Value::Int(0));
        drop(pinned);
        drop(store);
        remove_store_files(&path);
    }

    #[test]
    fn reopen_after_compaction_round_trips() {
        let path = temp_path("compact-reopen");
        {
            let store = BlockStore::create(&path, usize::MAX).unwrap();
            store.set_garbage_threshold(1.0);
            let b = block(0, 200);
            let id = store.append(Arc::clone(&b)).unwrap();
            store.append(block(1, 250)).unwrap();
            let mut updated = (*b).clone();
            updated.delete(0);
            store.rewrite(id, Arc::new(updated)).unwrap();
            store.compact().unwrap();
        }
        let reopened = BlockStore::reopen(&path, usize::MAX).unwrap();
        assert_eq!(reopened.block_count(), 2);
        assert_eq!(reopened.entry_generation(0), 1);
        assert_eq!(reopened.with_summary(0, |s| s.deleted_count), 1);
        assert_eq!(reopened.dead_bytes(), 0);
        let pinned = reopened.pin(1).unwrap();
        assert_eq!(pinned.tuple_count(), 250);
        drop(pinned);
        drop(reopened);
        remove_store_files(&path);
    }

    #[test]
    fn prefetch_pages_blocks_in_without_demand_reads() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        let id0 = store.append(block(0, 500)).unwrap();
        let id1 = store.append(block(1, 500)).unwrap();
        store.clear_cache();
        store.reset_stats();
        store.prefetch(&[id0, id1]);
        // the helper thread pages them in; wait (bounded) for residency
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !(store.is_cached(id0) && store.is_cached(id1)) {
            assert!(std::time::Instant::now() < deadline, "prefetch stalled");
            std::thread::yield_now();
        }
        let stats = store.stats();
        assert_eq!(stats.prefetch_reads, 2, "both reads were read-ahead");
        assert_eq!(stats.block_reads, 0, "no demand reads yet");
        // the demand pin is now a pure cache hit
        let pinned = store.pin(id1).unwrap();
        assert_eq!(pinned.get(0, 0), Value::Int(10_000));
        let stats = store.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.block_reads, 0);
        // prefetching cached/queued ids again is a no-op
        store.prefetch(&[id0, id1]);
        assert_eq!(store.stats().prefetch_reads, 2);
    }

    #[test]
    fn corrupted_file_is_reported_not_decoded() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        let id = store.append(block(0, 300)).unwrap();
        store.clear_cache();
        // flip a payload byte on disk behind the store's back
        let len = store.entry_len(id) as u64;
        let file = store.gen_file(0).expect("generation 0 open");
        let mut byte = [0u8; 1];
        file.raw().read_exact_at(&mut byte, len - 1).unwrap();
        file.raw().write_all_at(&[byte[0] ^ 0xff], len - 1).unwrap();
        match store.pin(id) {
            Err(StoreError::Frame(FrameError::ChecksumMismatch { .. })) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn temp_file_removed_on_drop() {
        let store = BlockStore::create_temp(1024).unwrap();
        store.append(block(0, 100)).unwrap();
        let path = store.path().to_path_buf();
        let mpath = manifest_path(&path);
        assert!(path.exists());
        assert!(mpath.exists());
        drop(store);
        assert!(!path.exists());
        assert!(!mpath.exists());
    }

    #[test]
    fn error_display() {
        let io_err = StoreError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(std::error::Error::source(&io_err).is_some());
        let frame_err = StoreError::from(FrameError::BadMagic);
        assert!(frame_err.to_string().contains("magic"));
        // StoreError -> io::Error keeps the kind / wraps frame errors as data
        let round: io::Error = StoreError::Io(io::Error::new(io::ErrorKind::NotFound, "x")).into();
        assert_eq!(round.kind(), io::ErrorKind::NotFound);
        let data: io::Error = StoreError::Frame(FrameError::BadMagic).into();
        assert_eq!(data.kind(), io::ErrorKind::InvalidData);
    }
}
