//! The file-backed block store: cold Data Blocks on secondary storage behind a
//! pinning, capacity-bounded block cache.
//!
//! Data Blocks are self-contained and byte-addressable precisely so cold data can
//! leave main memory (Lang et al., Section 2); this module is the subsystem that
//! makes that real. A [`BlockStore`] owns one append-only spill file of
//! [`datablocks::frame`]-encoded blocks plus, in memory:
//!
//! * a **block directory** — for every block id its file offset/length and its
//!   [`BlockSummary`] (tuple counts and per-attribute SMAs), kept hot so SMA
//!   block-skipping and size accounting never touch the disk;
//! * a **block cache** — decoded [`DataBlock`]s up to a configured byte capacity,
//!   with **pin counts** (a pinned block is never evicted; scans pin for the
//!   duration of a morsel) and CLOCK second-chance eviction for the rest.
//!
//! All I/O is positional (`read_at`/`write_at` via [`std::os::unix::fs::FileExt`]),
//! so concurrent scan workers loading different blocks never contend on a shared
//! file cursor. The cache index is behind one [`Mutex`], but the lock is **not**
//! held across disk reads or frame decoding: a miss records the directory entry
//! under the lock, performs the read/decode unlocked, and re-takes the lock to
//! publish the block (two workers racing on the same block both pay the read, one
//! insert wins — a deliberate trade of occasional duplicate I/O for an uncontended
//! hot path).
//!
//! The store is append-only: deleting a record of a spilled block rewrites the whole
//! block at the end of the file and repoints the directory entry ([`BlockStore::
//! rewrite`]), leaving the old frame as dead space. Compaction and crash-consistent
//! directory persistence are future work; [`BlockStore::open`] can rebuild a
//! directory from a file of appended frames by reading only headers and summaries.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::ops::Deref;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use datablocks::frame::{self, FRAME_HEADER_LEN};
use datablocks::{BlockSummary, DataBlock, FrameError};

/// Identifier of a block within one [`BlockStore`] (its directory index).
pub type BlockId = usize;

/// How a relation spills frozen blocks to secondary storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillPolicy {
    /// Byte budget of the in-memory block cache. Pinned blocks may push the resident
    /// set above this bound transiently; unpinned blocks are evicted down to it.
    pub cache_capacity_bytes: usize,
    /// Spill file location. `None` creates a per-store temporary file (deleted when
    /// the store is dropped). For [`crate::Database::enable_spill`] a `Some` path
    /// names a *directory* receiving one `<relation>.dbs` file per relation; for
    /// [`crate::Relation::enable_spill`] it names the file itself (kept on drop).
    pub path: Option<PathBuf>,
}

impl Default for SpillPolicy {
    fn default() -> SpillPolicy {
        SpillPolicy {
            cache_capacity_bytes: 64 << 20,
            path: None,
        }
    }
}

impl SpillPolicy {
    /// A policy with the given cache budget, spilling to a temporary file.
    pub fn with_cache_capacity(cache_capacity_bytes: usize) -> SpillPolicy {
        SpillPolicy {
            cache_capacity_bytes,
            path: None,
        }
    }
}

/// Errors surfaced by block store operations.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// A frame failed validation (checksum, magic, version, truncation).
    Frame(FrameError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "block store I/O error: {err}"),
            StoreError::Frame(err) => write!(f, "block store frame error: {err}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            StoreError::Frame(err) => Some(err),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(err: io::Error) -> StoreError {
        StoreError::Io(err)
    }
}

impl From<FrameError> for StoreError {
    fn from(err: FrameError) -> StoreError {
        StoreError::Frame(err)
    }
}

/// Counters describing what a store actually did. Reads/writes count **disk**
/// operations only — cache hits and summary-pruned blocks cost zero reads, which is
/// what the scan-skipping assertions in the differential tests pin down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Block payloads read from disk.
    pub block_reads: u64,
    /// Bytes read from disk.
    pub bytes_read: u64,
    /// Block frames written to disk (appends and rewrites).
    pub block_writes: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
    /// Pins served from the cache.
    pub cache_hits: u64,
    /// Pins that had to load from disk.
    pub cache_misses: u64,
    /// Cached blocks evicted to stay within capacity.
    pub evictions: u64,
}

/// One directory entry: where a block lives in the file, plus its hot summary.
#[derive(Debug, Clone)]
struct DirEntry {
    offset: u64,
    len: u32,
    summary: BlockSummary,
}

#[derive(Debug)]
struct CacheEntry {
    block: Arc<DataBlock>,
    pins: u32,
    /// CLOCK reference bit: set on every pin, cleared on the hand's first pass.
    referenced: bool,
    bytes: usize,
}

#[derive(Debug, Default)]
struct Inner {
    directory: Vec<DirEntry>,
    cache: HashMap<BlockId, CacheEntry>,
    /// Ring of cached block ids the CLOCK hand sweeps (order approximates insertion
    /// order; eviction uses `swap_remove`, so it is a second-chance clock, not LRU).
    clock: Vec<BlockId>,
    hand: usize,
    cached_bytes: usize,
    end_offset: u64,
    stats: IoStats,
}

/// A file-backed store of frozen Data Blocks with an in-memory directory and a
/// pinning block cache. See the module docs for the design.
#[derive(Debug)]
pub struct BlockStore {
    file: File,
    path: PathBuf,
    delete_on_drop: bool,
    capacity: usize,
    inner: Mutex<Inner>,
    /// Serialises block mutations ([`BlockStore::mutate`]) — never held while
    /// waiting on `inner` from a non-mutation path, so ordinary pins proceed
    /// concurrently with a mutation's I/O.
    mutation: Mutex<()>,
}

/// Monotonic counter distinguishing temp files of one process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl BlockStore {
    /// Create a store over a fresh temporary file (deleted when the store drops).
    pub fn create_temp(capacity: usize) -> io::Result<Arc<BlockStore>> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("datablocks-spill-{}-{n}.dbs", std::process::id()));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        Ok(Arc::new(BlockStore {
            file,
            path,
            delete_on_drop: true,
            capacity,
            inner: Mutex::new(Inner::default()),
            mutation: Mutex::new(()),
        }))
    }

    /// Create a store over `path`, truncating any existing file. The file is kept
    /// when the store drops.
    pub fn create(path: impl AsRef<Path>, capacity: usize) -> io::Result<Arc<BlockStore>> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(Arc::new(BlockStore {
            file,
            path,
            delete_on_drop: false,
            capacity,
            inner: Mutex::new(Inner::default()),
            mutation: Mutex::new(()),
        }))
    }

    /// Reopen a store from an existing file of appended frames, rebuilding the
    /// directory by reading **only** each frame's header and summary section — block
    /// payloads are not touched (and not checksummed) until first pinned.
    ///
    /// Only valid for files produced by appends: a store that performed
    /// [`BlockStore::rewrite`]s leaves superseded frames in the file, which this
    /// walk cannot distinguish from live ones.
    pub fn open(path: impl AsRef<Path>, capacity: usize) -> Result<Arc<BlockStore>, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let file_len = file.metadata()?.len();
        let mut directory = Vec::new();
        let mut offset = 0u64;
        while offset < file_len {
            let mut header_buf = [0u8; FRAME_HEADER_LEN];
            file.read_exact_at(&mut header_buf, offset)?;
            let header = frame::read_header(&header_buf)?;
            let mut prefix = vec![0u8; header.payload_off as usize];
            file.read_exact_at(&mut prefix, offset)?;
            let summary = frame::read_summary(&prefix)?;
            let len = header.frame_len() as u32;
            directory.push(DirEntry {
                offset,
                len,
                summary,
            });
            offset += len as u64;
        }
        Ok(Arc::new(BlockStore {
            file,
            path,
            delete_on_drop: false,
            capacity,
            inner: Mutex::new(Inner {
                directory,
                end_offset: offset,
                ..Inner::default()
            }),
            mutation: Mutex::new(()),
        }))
    }

    /// The spill file location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured cache byte budget.
    pub fn cache_capacity(&self) -> usize {
        self.capacity
    }

    /// Number of blocks in the directory.
    pub fn block_count(&self) -> usize {
        self.inner.lock().expect("store lock").directory.len()
    }

    /// Bytes of decoded blocks currently resident in the cache.
    pub fn cached_bytes(&self) -> usize {
        self.inner.lock().expect("store lock").cached_bytes
    }

    /// Snapshot of the I/O and cache counters.
    pub fn stats(&self) -> IoStats {
        self.inner.lock().expect("store lock").stats
    }

    /// Reset the I/O and cache counters (the bench harness isolates phases with
    /// this).
    pub fn reset_stats(&self) {
        self.inner.lock().expect("store lock").stats = IoStats::default();
    }

    /// Serialized size of block `id` on disk, in bytes.
    pub fn entry_len(&self, id: BlockId) -> usize {
        self.inner.lock().expect("store lock").directory[id].len as usize
    }

    /// Consult the hot, in-memory summary of block `id` without any I/O.
    pub fn with_summary<R>(&self, id: BlockId, f: impl FnOnce(&BlockSummary) -> R) -> R {
        let inner = self.inner.lock().expect("store lock");
        f(&inner.directory[id].summary)
    }

    /// Serialize `block`, append its frame to the spill file and register it in the
    /// directory. The decoded block is admitted to the cache **unpinned** (so a
    /// freeze immediately followed by a scan hits memory, while a tiny cache evicts
    /// it right away — write-out on freeze either way). Returns the new block's id.
    pub fn append(&self, block: Arc<DataBlock>) -> io::Result<BlockId> {
        let bytes = frame::to_frame(&block);
        // Reserve the file range and directory slot under the lock, then write
        // without it, so cache-hit pins never stall behind spill I/O. Publishing
        // the directory entry before the bytes are durable is safe: the id is
        // unreachable by any reader until this call returns it. (If the write
        // fails, the reserved entry points at unwritten bytes; callers treat a
        // failed append as fatal and never hand the id out.)
        let (offset, id) = {
            let mut inner = self.inner.lock().expect("store lock");
            let offset = inner.end_offset;
            inner.end_offset += bytes.len() as u64;
            let id = inner.directory.len();
            inner.directory.push(DirEntry {
                offset,
                len: bytes.len() as u32,
                summary: BlockSummary::of(&block),
            });
            (offset, id)
        };
        self.file.write_all_at(&bytes, offset)?;
        let mut inner = self.inner.lock().expect("store lock");
        inner.stats.block_writes += 1;
        inner.stats.bytes_written += bytes.len() as u64;
        self.admit(&mut inner, id, block, 0);
        Ok(id)
    }

    /// Replace block `id` with a new version: append the new frame at the end of the
    /// file, repoint the directory entry and refresh the cached copy (the old frame
    /// becomes dead space). This is how delete flags reach spilled blocks — the
    /// "update a frozen record" path of the paper, applied to the on-disk tier.
    pub fn rewrite(&self, id: BlockId, block: Arc<DataBlock>) -> io::Result<()> {
        let bytes = frame::to_frame(&block);
        // Reserve the file range under the lock, write without it (same reasoning
        // as in `append`). The directory is repointed only after the write
        // completes, so concurrent pins read the old, fully written version until
        // the rewrite commits — and `pin`'s offset re-check catches the flip.
        let offset = {
            let mut inner = self.inner.lock().expect("store lock");
            let offset = inner.end_offset;
            inner.end_offset += bytes.len() as u64;
            offset
        };
        self.file.write_all_at(&bytes, offset)?;
        let mut inner = self.inner.lock().expect("store lock");
        inner.stats.block_writes += 1;
        inner.stats.bytes_written += bytes.len() as u64;
        inner.directory[id] = DirEntry {
            offset,
            len: bytes.len() as u32,
            summary: BlockSummary::of(&block),
        };
        if let Some(entry) = inner.cache.get_mut(&id) {
            // Readers still holding the old Arc keep reading the old version; new
            // pins observe the rewrite.
            let new_bytes = block.byte_size();
            let old_bytes = std::mem::replace(&mut entry.bytes, new_bytes);
            entry.block = block;
            inner.cached_bytes = inner.cached_bytes - old_bytes + new_bytes;
            self.evict_to_capacity(&mut inner);
        } else {
            self.admit(&mut inner, id, block, 0);
        }
        Ok(())
    }

    /// Pin block `id` into memory and return a guard that keeps it cached (and the
    /// underlying `Arc` alive) until dropped. Scans hold one pin per morsel, so a
    /// worker never observes eviction mid-scan.
    pub fn pin(self: &Arc<Self>, id: BlockId) -> Result<PinnedBlock, StoreError> {
        loop {
            let (offset, len) = {
                let mut inner = self.inner.lock().expect("store lock");
                if let Some(entry) = inner.cache.get_mut(&id) {
                    entry.pins += 1;
                    entry.referenced = true;
                    let block = Arc::clone(&entry.block);
                    inner.stats.cache_hits += 1;
                    return Ok(PinnedBlock {
                        store: Arc::clone(self),
                        id,
                        block,
                    });
                }
                inner.stats.cache_misses += 1;
                inner.stats.block_reads += 1;
                let (offset, len) = {
                    let entry = &inner.directory[id];
                    (entry.offset, entry.len as usize)
                };
                inner.stats.bytes_read += len as u64;
                (offset, len)
            };
            // Read and decode without holding the lock: misses on different blocks
            // proceed in parallel.
            let mut bytes = vec![0u8; len];
            self.file.read_exact_at(&mut bytes, offset)?;
            let block = Arc::new(frame::from_frame(&bytes)?);

            let mut inner = self.inner.lock().expect("store lock");
            if let Some(entry) = inner.cache.get_mut(&id) {
                // Another worker published the block while we were reading. Any
                // cached entry passed the directory check below (or came straight
                // from an append/rewrite), so it is at least as new as our read.
                entry.pins += 1;
                entry.referenced = true;
                let block = Arc::clone(&entry.block);
                return Ok(PinnedBlock {
                    store: Arc::clone(self),
                    id,
                    block,
                });
            }
            if inner.directory[id].offset != offset {
                // A rewrite repointed the block while we were reading the old
                // frame: publishing our copy would resurrect pre-rewrite data for
                // every later pin. Retry against the new directory entry (the
                // wasted read is counted — the counters report I/O performed).
                continue;
            }
            self.admit(&mut inner, id, Arc::clone(&block), 1);
            return Ok(PinnedBlock {
                store: Arc::clone(self),
                id,
                block,
            });
        }
    }

    /// Atomically read-modify-write block `id`: `f` receives the current version
    /// and returns the replacement block (or `None` to leave it unchanged) plus a
    /// caller result. The whole load → rebuild → [`BlockStore::rewrite`] sequence
    /// holds the store's mutation lock, so two relation clones mutating the same
    /// block through their shared store serialise instead of losing an update.
    pub fn mutate<R>(
        self: &Arc<Self>,
        id: BlockId,
        f: impl FnOnce(&DataBlock) -> (Option<DataBlock>, R),
    ) -> Result<R, StoreError> {
        let _mutation = self.mutation.lock().expect("store mutation lock");
        let pinned = self.pin(id)?;
        let (replacement, result) = f(&pinned);
        drop(pinned);
        if let Some(block) = replacement {
            self.rewrite(id, Arc::new(block))?;
        }
        Ok(result)
    }

    /// Drop every unpinned cached block (the bench harness uses this to measure
    /// cold scans).
    pub fn clear_cache(&self) {
        let inner = &mut *self.inner.lock().expect("store lock");
        let mut freed = 0;
        inner.cache.retain(|_, entry| {
            if entry.pins > 0 {
                true
            } else {
                freed += entry.bytes;
                false
            }
        });
        inner.cached_bytes -= freed;
        let cache = &inner.cache;
        inner.clock.retain(|id| cache.contains_key(id));
        inner.hand = 0;
    }

    /// Number of cached blocks with at least one live pin. Streaming scans hold one
    /// pin per in-flight cold morsel, so this never exceeds the worker count — the
    /// tests of the bounded streaming scan assert exactly that.
    pub fn pinned_count(&self) -> usize {
        self.inner
            .lock()
            .expect("store lock")
            .cache
            .values()
            .filter(|entry| entry.pins > 0)
            .count()
    }

    /// Is block `id` currently resident in the cache? (Test/bench introspection.)
    pub fn is_cached(&self, id: BlockId) -> bool {
        self.inner
            .lock()
            .expect("store lock")
            .cache
            .contains_key(&id)
    }

    fn admit(&self, inner: &mut Inner, id: BlockId, block: Arc<DataBlock>, pins: u32) {
        let bytes = block.byte_size();
        inner.cache.insert(
            id,
            CacheEntry {
                block,
                pins,
                referenced: true,
                bytes,
            },
        );
        inner.clock.push(id);
        inner.cached_bytes += bytes;
        self.evict_to_capacity(inner);
    }

    /// CLOCK sweep: evict unpinned, unreferenced blocks until the cache fits the
    /// capacity. Pinned blocks are skipped; if everything left is pinned the cache
    /// transiently overshoots (pins are short-lived — one morsel).
    fn evict_to_capacity(&self, inner: &mut Inner) {
        let mut wraps = 0u32;
        while inner.cached_bytes > self.capacity && !inner.clock.is_empty() {
            if inner.hand >= inner.clock.len() {
                inner.hand = 0;
                wraps += 1;
                if wraps > 2 {
                    break; // everything pinned: give up, pins drain soon
                }
            }
            let id = inner.clock[inner.hand];
            let entry = inner.cache.get_mut(&id).expect("clock entry is cached");
            if entry.pins > 0 {
                inner.hand += 1;
            } else if entry.referenced {
                entry.referenced = false;
                inner.hand += 1;
            } else {
                let entry = inner.cache.remove(&id).expect("checked above");
                inner.cached_bytes -= entry.bytes;
                inner.stats.evictions += 1;
                inner.clock.swap_remove(inner.hand);
            }
        }
    }

    fn unpin(&self, id: BlockId) {
        let mut inner = self.inner.lock().expect("store lock");
        if let Some(entry) = inner.cache.get_mut(&id) {
            debug_assert!(entry.pins > 0, "unpin without pin");
            entry.pins = entry.pins.saturating_sub(1);
        }
    }
}

impl Drop for BlockStore {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// A pinned, decoded block. Dereferences to [`DataBlock`]; the pin (and therefore
/// cache residency of the block) is released on drop. Even after an unlikely forced
/// eviction the `Arc` keeps the data alive, so holding a `PinnedBlock` is always
/// safe — pinning exists to prevent eviction churn and duplicate loads, not to
/// uphold memory safety.
#[derive(Debug)]
pub struct PinnedBlock {
    store: Arc<BlockStore>,
    id: BlockId,
    block: Arc<DataBlock>,
}

impl Deref for PinnedBlock {
    type Target = DataBlock;
    fn deref(&self) -> &DataBlock {
        &self.block
    }
}

impl Drop for PinnedBlock {
    fn drop(&mut self) {
        self.store.unpin(self.id);
    }
}

/// A borrowed view of one cold block of a relation, resolving transparently to the
/// heap-resident block or to a pinned copy paged in from the spill file. Returned by
/// [`crate::Relation::cold_block`]; dereferences to [`DataBlock`].
#[derive(Debug)]
pub struct BlockRef {
    inner: BlockRefInner,
}

#[derive(Debug)]
enum BlockRefInner {
    Resident(Arc<DataBlock>),
    Pinned(PinnedBlock),
}

impl BlockRef {
    pub(crate) fn resident(block: Arc<DataBlock>) -> BlockRef {
        BlockRef {
            inner: BlockRefInner::Resident(block),
        }
    }

    pub(crate) fn pinned(block: PinnedBlock) -> BlockRef {
        BlockRef {
            inner: BlockRefInner::Pinned(block),
        }
    }

    /// Does this reference hold a block-cache pin (i.e. the block was paged in from
    /// a spill store)? Heap-resident blocks need no pin.
    pub fn is_pinned(&self) -> bool {
        matches!(self.inner, BlockRefInner::Pinned(_))
    }
}

impl Deref for BlockRef {
    type Target = DataBlock;
    fn deref(&self) -> &DataBlock {
        match &self.inner {
            BlockRefInner::Resident(block) => block,
            BlockRefInner::Pinned(pinned) => pinned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablocks::builder::{freeze, int_column, str_column};
    use datablocks::Value;

    fn block(tag: i64, rows: i64) -> Arc<DataBlock> {
        let ids = int_column((0..rows).map(|i| tag * 10_000 + i).collect());
        let grp = str_column((0..rows).map(|i| format!("b{tag}-{}", i % 3)).collect());
        Arc::new(freeze(&[ids, grp]))
    }

    #[test]
    fn append_and_pin_roundtrip() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        let b0 = block(0, 1000);
        let b1 = block(1, 1000);
        let id0 = store.append(Arc::clone(&b0)).unwrap();
        let id1 = store.append(Arc::clone(&b1)).unwrap();
        assert_eq!((id0, id1), (0, 1));
        assert_eq!(store.block_count(), 2);
        let pinned = store.pin(id1).unwrap();
        assert_eq!(pinned.get(5, 0), Value::Int(10_005));
        // append admits to the cache, so this pin was a hit with zero disk reads
        let stats = store.stats();
        assert_eq!(stats.block_reads, 0);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.block_writes, 2);
        assert!(stats.bytes_written > 0);
    }

    #[test]
    fn cache_miss_reads_from_disk_and_verifies_checksum() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        let id = store.append(block(7, 2000)).unwrap();
        store.clear_cache();
        assert!(!store.is_cached(id));
        let pinned = store.pin(id).unwrap();
        assert_eq!(pinned.get(1999, 0), Value::Int(71_999));
        let stats = store.stats();
        assert_eq!(stats.block_reads, 1);
        assert_eq!(stats.cache_misses, 1);
        assert!(stats.bytes_read > 0);
        assert!(store.is_cached(id));
    }

    #[test]
    fn tiny_cache_evicts_unpinned_blocks() {
        let store = BlockStore::create_temp(1).unwrap(); // effectively nothing fits
        let id0 = store.append(block(0, 1000)).unwrap();
        let id1 = store.append(block(1, 1000)).unwrap();
        // appends get evicted immediately (capacity 1 byte)
        assert!(!store.is_cached(id0) || !store.is_cached(id1));
        let p0 = store.pin(id0).unwrap();
        let p1 = store.pin(id1).unwrap();
        // both pinned: cache overshoots rather than evicting pinned blocks
        assert_eq!(p0.get(0, 0), Value::Int(0));
        assert_eq!(p1.get(0, 0), Value::Int(10_000));
        assert!(store.is_cached(id0) && store.is_cached(id1));
        drop(p0);
        drop(p1);
        // next admission sweeps the now-unpinned blocks out
        let id2 = store.append(block(2, 1000)).unwrap();
        let _p2 = store.pin(id2).unwrap();
        assert!(store.stats().evictions > 0);
        assert!(!store.is_cached(id0));
    }

    #[test]
    fn summaries_answer_without_io() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        let id = store.append(block(3, 500)).unwrap();
        store.clear_cache();
        store.reset_stats();
        let (tuples, live) = store.with_summary(id, |s| (s.tuple_count, s.live_tuple_count()));
        assert_eq!((tuples, live), (500, 500));
        assert_eq!(store.stats().block_reads, 0);
        assert!(store.entry_len(id) > 0);
    }

    #[test]
    fn rewrite_repoints_directory_and_cache() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        let original = block(1, 100);
        let id = store.append(Arc::clone(&original)).unwrap();
        let mut updated = (*original).clone();
        updated.delete(42);
        store.rewrite(id, Arc::new(updated)).unwrap();
        let pinned = store.pin(id).unwrap();
        assert!(pinned.is_deleted(42));
        assert_eq!(store.with_summary(id, |s| s.deleted_count), 1);
        // cold read after a rewrite decodes the new frame
        drop(pinned);
        store.clear_cache();
        let reloaded = store.pin(id).unwrap();
        assert!(reloaded.is_deleted(42));
        assert_eq!(reloaded.live_tuple_count(), 99);
    }

    #[test]
    fn concurrent_mutations_do_not_lose_updates() {
        // Many threads each flag a distinct row of the same block through
        // `mutate`; the mutation lock must serialise the read-modify-write
        // cycles so no tombstone is lost.
        let store = BlockStore::create_temp(1).unwrap(); // thrash: force reloads
        let id = store.append(block(0, 64)).unwrap();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let store = Arc::clone(&store);
                scope.spawn(move || {
                    for row in (t..64).step_by(8) {
                        let deleted = store
                            .mutate(id, |current| {
                                if current.is_deleted(row) {
                                    (None, false)
                                } else {
                                    let mut b = current.clone();
                                    b.delete(row);
                                    (Some(b), true)
                                }
                            })
                            .unwrap();
                        assert!(deleted, "row {row} deleted exactly once");
                    }
                });
            }
        });
        store.clear_cache();
        let pinned = store.pin(id).unwrap();
        assert_eq!(pinned.live_tuple_count(), 0, "all 64 tombstones survived");
        assert_eq!(store.with_summary(id, |s| s.deleted_count), 64);
    }

    #[test]
    fn open_rebuilds_directory_from_summaries_only() {
        let path = std::env::temp_dir().join(format!(
            "datablocks-store-reopen-{}-{}.dbs",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let store = BlockStore::create(&path, usize::MAX).unwrap();
            store.append(block(0, 800)).unwrap();
            store.append(block(1, 900)).unwrap();
        }
        let reopened = BlockStore::open(&path, usize::MAX).unwrap();
        assert_eq!(reopened.block_count(), 2);
        assert_eq!(reopened.with_summary(1, |s| s.tuple_count), 900);
        // rebuilding the directory touched no payloads
        assert_eq!(reopened.stats().block_reads, 0);
        let pinned = reopened.pin(0).unwrap();
        assert_eq!(pinned.get(7, 0), Value::Int(7));
        drop(pinned);
        drop(reopened);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_of_empty_file_is_an_empty_store() {
        let path = std::env::temp_dir().join(format!(
            "datablocks-store-empty-{}-{}.dbs",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        drop(BlockStore::create(&path, 1024).unwrap());
        let reopened = BlockStore::open(&path, 1024).unwrap();
        assert_eq!(reopened.block_count(), 0);
        assert_eq!(reopened.cached_bytes(), 0);
        drop(reopened);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_file_is_reported_not_decoded() {
        let store = BlockStore::create_temp(usize::MAX).unwrap();
        let id = store.append(block(0, 300)).unwrap();
        store.clear_cache();
        // flip a payload byte on disk behind the store's back
        let len = store.entry_len(id) as u64;
        let mut byte = [0u8; 1];
        store.file.read_exact_at(&mut byte, len - 1).unwrap();
        store.file.write_all_at(&[byte[0] ^ 0xff], len - 1).unwrap();
        match store.pin(id) {
            Err(StoreError::Frame(FrameError::ChecksumMismatch { .. })) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn temp_file_removed_on_drop() {
        let store = BlockStore::create_temp(1024).unwrap();
        let path = store.path().to_path_buf();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists());
    }

    #[test]
    fn error_display() {
        let io_err = StoreError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(std::error::Error::source(&io_err).is_some());
        let frame_err = StoreError::from(FrameError::BadMagic);
        assert!(frame_err.to_string().contains("magic"));
    }
}
