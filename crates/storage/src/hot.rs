//! Hot, uncompressed chunks — the write-optimised tail of every relation.
//!
//! Hot chunks keep plain columnar vectors with no SMAs, PSMAs or compression:
//! maintaining those under OLTP updates would cost more than it saves (Section 3).
//! OLTP inserts append here; scans over hot chunks evaluate SARGable predicates with
//! branch-free vector-at-a-time code and copy matching attributes into temporary
//! vectors, exactly like the "interpreted vectorized scan on uncompressed chunk" box
//! of Figure 6.

use datablocks::scan::Restriction;
use datablocks::{Column, Value};

use crate::schema::Schema;

/// Default number of records per hot chunk (matches the Data Block capacity so a full
/// hot chunk freezes into exactly one block).
pub const DEFAULT_CHUNK_CAPACITY: usize = datablocks::DEFAULT_BLOCK_CAPACITY;

/// A mutable, uncompressed chunk of a relation.
#[derive(Debug, Clone)]
pub struct HotChunk {
    columns: Vec<Column>,
    deleted: Vec<bool>,
    deleted_count: usize,
    capacity: usize,
}

impl HotChunk {
    /// An empty chunk for the given schema.
    pub fn new(schema: &Schema, capacity: usize) -> HotChunk {
        HotChunk {
            columns: schema
                .columns()
                .iter()
                .map(|c| Column::new(c.data_type))
                .collect(),
            deleted: Vec::new(),
            deleted_count: 0,
            capacity,
        }
    }

    /// Number of records (including deleted ones).
    pub fn len(&self) -> usize {
        self.deleted.len()
    }

    /// True if the chunk holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records not marked deleted.
    pub fn live_len(&self) -> usize {
        self.len() - self.deleted_count
    }

    /// Is the chunk at its capacity (and therefore a candidate for freezing)?
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// The chunk's columns (used when freezing into a Data Block).
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Append a record. Returns its row index within the chunk.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count (a schema violation).
    pub fn insert(&mut self, values: Vec<Value>) -> usize {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "value count must match the schema"
        );
        for (column, value) in self.columns.iter_mut().zip(values) {
            column.push(value);
        }
        self.deleted.push(false);
        self.deleted.len() - 1
    }

    /// Read attribute `col` of record `row`.
    pub fn get(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Read a whole record.
    pub fn get_row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Is record `row` deleted?
    pub fn is_deleted(&self, row: usize) -> bool {
        self.deleted[row]
    }

    /// Mark record `row` deleted; returns `false` if it already was.
    pub fn delete(&mut self, row: usize) -> bool {
        if self.deleted[row] {
            false
        } else {
            self.deleted[row] = true;
            self.deleted_count += 1;
            true
        }
    }

    /// Overwrite attribute `col` of record `row` in place (hot data is mutable; only
    /// frozen data forces the delete + re-insert path).
    pub fn update_in_place(&mut self, row: usize, col: usize, value: Value) {
        // Columns do not support random-position writes for strings cheaply, so
        // rebuild the affected column slot via a small typed match.
        match (&mut self.columns[col].data, &value) {
            (datablocks::ColumnData::Int(v), Value::Int(x)) => v[row] = *x,
            (datablocks::ColumnData::Double(v), Value::Double(x)) => v[row] = *x,
            (datablocks::ColumnData::Double(v), Value::Int(x)) => v[row] = *x as f64,
            (datablocks::ColumnData::Str(v), Value::Str(x)) => v[row] = x.clone(),
            (_, Value::Null) => {
                let len = self.columns[col].len();
                let validity = self.columns[col]
                    .validity
                    .get_or_insert_with(|| vec![true; len]);
                validity[row] = false;
                return;
            }
            (col_data, value) => panic!(
                "type mismatch updating a {:?} column with {value:?}",
                col_data.data_type()
            ),
        }
        if let Some(validity) = &mut self.columns[col].validity {
            validity[row] = true;
        }
    }

    /// Uncompressed in-memory size in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum::<usize>() + self.deleted.len()
    }

    /// Evaluate `restrictions` over the window `[from, to)` and append the matching
    /// row indexes to `matches`. Branch-free where possible, one restriction at a
    /// time (find, then reduce), skipping deleted rows.
    pub fn find_matches(
        &self,
        restrictions: &[Restriction],
        from: usize,
        to: usize,
        matches: &mut Vec<u32>,
    ) -> usize {
        debug_assert!(to <= self.len());
        let start = matches.len();
        match restrictions.split_first() {
            None => matches.extend(from as u32..to as u32),
            Some((first, rest)) => {
                self.find_initial(first, from, to, matches);
                for restriction in rest {
                    if matches.len() == start {
                        break;
                    }
                    self.reduce(restriction, start, matches);
                }
            }
        }
        if self.deleted_count > 0 {
            let deleted = &self.deleted;
            let mut w = start;
            for r in start..matches.len() {
                let pos = matches[r];
                matches[w] = pos;
                w += (!deleted[pos as usize]) as usize;
            }
            matches.truncate(w);
        }
        matches.len() - start
    }

    fn find_initial(&self, restriction: &Restriction, from: usize, to: usize, out: &mut Vec<u32>) {
        let column = &self.columns[restriction.column()];
        // Branch-free find over the typed payload where the restriction permits it.
        match (&column.data, restriction) {
            (datablocks::ColumnData::Int(values), _) if column.validity.is_none() => {
                if let Some((lo, hi)) = int_range(restriction) {
                    out.reserve(to - from);
                    for (i, &v) in values[from..to].iter().enumerate() {
                        if v >= lo && v <= hi {
                            out.push((from + i) as u32);
                        }
                    }
                    return;
                }
                self.find_generic(restriction, from, to, out);
            }
            (datablocks::ColumnData::Double(values), _) if column.validity.is_none() => {
                if let Some((lo, hi)) = double_range(restriction) {
                    for (i, &v) in values[from..to].iter().enumerate() {
                        if v >= lo && v <= hi {
                            out.push((from + i) as u32);
                        }
                    }
                    return;
                }
                self.find_generic(restriction, from, to, out);
            }
            _ => self.find_generic(restriction, from, to, out),
        }
    }

    fn find_generic(&self, restriction: &Restriction, from: usize, to: usize, out: &mut Vec<u32>) {
        let column = &self.columns[restriction.column()];
        for row in from..to {
            if restriction.matches_value(&column.get(row)) {
                out.push(row as u32);
            }
        }
    }

    fn reduce(&self, restriction: &Restriction, start: usize, matches: &mut Vec<u32>) {
        let column = &self.columns[restriction.column()];
        let mut w = start;
        for r in start..matches.len() {
            let pos = matches[r];
            matches[w] = pos;
            w += restriction.matches_value(&column.get(pos as usize)) as usize;
        }
        matches.truncate(w);
    }

    /// Copy the values of attribute `col` at `rows` into `out` (the "copying of
    /// matches" step of the vectorized scan on uncompressed chunks).
    pub fn gather(&self, col: usize, rows: &[u32], out: &mut Column) {
        let column = &self.columns[col];
        match (&column.data, &mut out.data, &column.validity) {
            (datablocks::ColumnData::Int(src), datablocks::ColumnData::Int(dst), None) => {
                dst.extend(rows.iter().map(|&r| src[r as usize]));
                if let Some(validity) = &mut out.validity {
                    validity.extend(std::iter::repeat_n(true, rows.len()));
                }
            }
            (datablocks::ColumnData::Double(src), datablocks::ColumnData::Double(dst), None) => {
                dst.extend(rows.iter().map(|&r| src[r as usize]));
                if let Some(validity) = &mut out.validity {
                    validity.extend(std::iter::repeat_n(true, rows.len()));
                }
            }
            (datablocks::ColumnData::Str(src), datablocks::ColumnData::Str(dst), None) => {
                dst.extend(rows.iter().map(|&r| src[r as usize].clone()));
                if let Some(validity) = &mut out.validity {
                    validity.extend(std::iter::repeat_n(true, rows.len()));
                }
            }
            _ => {
                for &row in rows {
                    out.push(column.get(row as usize));
                }
            }
        }
    }
}

/// Inclusive integer bounds of a restriction, when expressible.
fn int_range(restriction: &Restriction) -> Option<(i64, i64)> {
    use dbsimd::CmpOp;
    match restriction {
        Restriction::Cmp { op, value, .. } => {
            let v = value.as_int()?;
            Some(match op {
                CmpOp::Eq => (v, v),
                CmpOp::Lt => (i64::MIN, v.checked_sub(1)?),
                CmpOp::Le => (i64::MIN, v),
                CmpOp::Gt => (v.checked_add(1)?, i64::MAX),
                CmpOp::Ge => (v, i64::MAX),
                CmpOp::Ne => return None,
            })
        }
        Restriction::Between { lo, hi, .. } => Some((lo.as_int()?, hi.as_int()?)),
        _ => None,
    }
}

/// Inclusive double bounds of a restriction, when expressible (strict bounds handled
/// by nudging to the adjacent representable value).
fn double_range(restriction: &Restriction) -> Option<(f64, f64)> {
    use dbsimd::CmpOp;
    fn next(v: f64) -> f64 {
        f64::from_bits(if v >= 0.0 {
            v.to_bits() + 1
        } else {
            v.to_bits() - 1
        })
    }
    match restriction {
        Restriction::Cmp { op, value, .. } => {
            let v = value.as_double()?;
            Some(match op {
                CmpOp::Eq => (v, v),
                CmpOp::Lt => (f64::NEG_INFINITY, -next(-v)),
                CmpOp::Le => (f64::NEG_INFINITY, v),
                CmpOp::Gt => (next(v), f64::INFINITY),
                CmpOp::Ge => (v, f64::INFINITY),
                CmpOp::Ne => return None,
            })
        }
        Restriction::Between { lo, hi, .. } => Some((lo.as_double()?, hi.as_double()?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use datablocks::DataType;
    use dbsimd::CmpOp;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("k", DataType::Int),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::new("weight", DataType::Double),
        ])
    }

    fn filled_chunk(n: usize) -> HotChunk {
        let schema = schema();
        let mut chunk = HotChunk::new(&schema, DEFAULT_CHUNK_CAPACITY);
        for i in 0..n as i64 {
            chunk.insert(vec![
                Value::Int(i),
                Value::Str(format!("n{}", i % 10)),
                Value::Double(i as f64 * 0.5),
            ]);
        }
        chunk
    }

    #[test]
    fn insert_get_roundtrip() {
        let chunk = filled_chunk(100);
        assert_eq!(chunk.len(), 100);
        assert_eq!(chunk.get(42, 0), Value::Int(42));
        assert_eq!(chunk.get(42, 1), Value::Str("n2".into()));
        assert_eq!(
            chunk.get_row(3),
            vec![Value::Int(3), Value::Str("n3".into()), Value::Double(1.5)]
        );
    }

    #[test]
    fn delete_and_live_count() {
        let mut chunk = filled_chunk(10);
        assert!(chunk.delete(5));
        assert!(!chunk.delete(5));
        assert!(chunk.is_deleted(5));
        assert_eq!(chunk.live_len(), 9);
    }

    #[test]
    fn update_in_place_changes_values_and_nulls() {
        let mut chunk = filled_chunk(5);
        chunk.update_in_place(2, 0, Value::Int(999));
        assert_eq!(chunk.get(2, 0), Value::Int(999));
        chunk.update_in_place(2, 1, Value::Str("renamed".into()));
        assert_eq!(chunk.get(2, 1), Value::Str("renamed".into()));
        chunk.update_in_place(3, 0, Value::Null);
        assert_eq!(chunk.get(3, 0), Value::Null);
        // writing a value again clears the NULL
        chunk.update_in_place(3, 0, Value::Int(7));
        assert_eq!(chunk.get(3, 0), Value::Int(7));
    }

    #[test]
    fn find_matches_int_and_string() {
        let chunk = filled_chunk(1000);
        let mut matches = Vec::new();
        chunk.find_matches(
            &[Restriction::between(0, 100i64, 199i64)],
            0,
            1000,
            &mut matches,
        );
        assert_eq!(matches.len(), 100);
        matches.clear();
        chunk.find_matches(
            &[
                Restriction::between(0, 100i64, 199i64),
                Restriction::eq(1, "n5"),
            ],
            0,
            1000,
            &mut matches,
        );
        assert_eq!(matches.len(), 10);
        assert!(matches.iter().all(|&m| m % 10 == 5));
    }

    #[test]
    fn find_matches_skips_deleted() {
        let mut chunk = filled_chunk(50);
        chunk.delete(10);
        let mut matches = Vec::new();
        chunk.find_matches(&[], 0, 50, &mut matches);
        assert_eq!(matches.len(), 49);
        assert!(!matches.contains(&10));
    }

    #[test]
    fn find_matches_double_and_ne() {
        let chunk = filled_chunk(100);
        let mut matches = Vec::new();
        chunk.find_matches(&[Restriction::cmp(2, CmpOp::Lt, 5.0)], 0, 100, &mut matches);
        assert_eq!(matches.len(), 10);
        matches.clear();
        chunk.find_matches(
            &[Restriction::cmp(0, CmpOp::Ne, 7i64)],
            0,
            100,
            &mut matches,
        );
        assert_eq!(matches.len(), 99);
    }

    #[test]
    fn find_matches_respects_window() {
        let chunk = filled_chunk(100);
        let mut matches = Vec::new();
        chunk.find_matches(&[], 20, 30, &mut matches);
        assert_eq!(matches, (20u32..30).collect::<Vec<_>>());
    }

    #[test]
    fn gather_copies_requested_rows() {
        let chunk = filled_chunk(20);
        let mut out = Column::new(DataType::Int);
        chunk.gather(0, &[1, 3, 5], &mut out);
        assert_eq!(out.data.as_int().unwrap(), &[1, 3, 5]);
        let mut names = Column::new(DataType::Str);
        chunk.gather(1, &[0, 19], &mut names);
        assert_eq!(
            names.data.as_str().unwrap(),
            &["n0".to_string(), "n9".to_string()]
        );
    }

    #[test]
    fn capacity_reporting() {
        let schema = schema();
        let mut chunk = HotChunk::new(&schema, 4);
        assert!(chunk.is_empty());
        for i in 0..4 {
            chunk.insert(vec![
                Value::Int(i),
                Value::Str("x".into()),
                Value::Double(0.0),
            ]);
        }
        assert!(chunk.is_full());
        assert!(chunk.byte_size() > 0);
    }
}
