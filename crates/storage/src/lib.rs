//! # storage — chunked hybrid OLTP/OLAP relational storage
//!
//! This crate provides the storage substrate the Data Blocks format plugs into:
//! relations divided into fixed-size chunks, where the mutable tail is kept **hot**
//! (plain uncompressed columns, cheap inserts and in-place updates) and chunks
//! identified as cold are **frozen** into immutable, compressed
//! [`datablocks::DataBlock`]s. Point accesses go through an optional primary-key hash
//! index; deletes tombstone records in place; updates of frozen records become a
//! delete plus a re-insert into the hot tail — the life cycle described in Section 3
//! of the paper.
//!
//! Relations scale past main memory through the [`blockstore`] module: with a
//! [`SpillPolicy`] attached, frozen blocks are written to a file-backed
//! [`BlockStore`] at freeze time and paged back in on demand through a pinning,
//! capacity-bounded block cache, while the block directory keeps SMA summaries hot
//! in memory so scans can skip cold blocks without any I/O.
//!
//! ```
//! use storage::{ColumnDef, Relation, Schema};
//! use datablocks::{DataType, Value};
//!
//! let schema = Schema::new(vec![
//!     ColumnDef::new("id", DataType::Int),
//!     ColumnDef::new("name", DataType::Str),
//! ])
//! .with_primary_key("id");
//!
//! let mut rel = Relation::with_chunk_capacity("users", schema, 1024);
//! for i in 0..3000 {
//!     rel.insert(vec![Value::Int(i), Value::Str(format!("user-{i}"))]);
//! }
//! // Cold chunks become compressed Data Blocks; the tail stays hot.
//! rel.freeze_full_chunks();
//! assert_eq!(rel.cold_block_count(), 2);
//!
//! // OLTP point access works against both hot and frozen data.
//! let id = rel.lookup_pk(42).unwrap();
//! assert_eq!(rel.get(id, 1), Value::Str("user-42".into()));
//! ```

#![warn(missing_docs)]

pub mod blockstore;
pub mod database;
pub mod faults;
pub mod hot;
pub mod relation;
pub mod schema;

pub use blockstore::{
    BlockId, BlockRef, BlockStore, ColdReadError, Durability, IoStats, PinnedBlock, SpillPolicy,
    StoreError,
};
pub use database::Database;
pub use faults::{FaultAction, FaultInjector, StoreFile};
pub use hot::{HotChunk, DEFAULT_CHUNK_CAPACITY};
pub use relation::{Relation, RowId, ScanSnapshot, ScanSource, Segment, StorageStats};
pub use schema::{ColumnDef, Schema};
