//! Relation schemas.
//!
//! Data Blocks themselves store no schema information (replicating it in every block
//! would waste space — Section 3); the schema lives here, at the relation level.

use datablocks::DataType;

/// Definition of one attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Attribute name (unique within the relation).
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// May the attribute hold NULLs?
    pub nullable: bool,
}

impl ColumnDef {
    /// A non-nullable attribute.
    pub fn new(name: impl Into<String>, data_type: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable attribute.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }
}

/// The schema of a relation: an ordered list of attribute definitions plus an
/// optional primary-key attribute (single-column integer keys, which is what the
/// OLTP workloads of the evaluation use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<ColumnDef>,
    primary_key: Option<usize>,
}

impl Schema {
    /// Build a schema from attribute definitions.
    ///
    /// # Panics
    ///
    /// Panics if two attributes share a name (schemas are built by hand in code; a
    /// duplicate is a programming error).
    pub fn new(columns: Vec<ColumnDef>) -> Schema {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate attribute name {:?}", a.name);
            }
        }
        Schema {
            columns,
            primary_key: None,
        }
    }

    /// Declare attribute `name` as the primary key (must be an integer attribute).
    pub fn with_primary_key(mut self, name: &str) -> Schema {
        let idx = self
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown attribute {name:?}"));
        assert_eq!(
            self.columns[idx].data_type,
            DataType::Int,
            "primary keys must be integer attributes"
        );
        self.primary_key = Some(idx);
        self
    }

    /// Number of attributes.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// All attribute definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// The definition of attribute `idx`.
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    /// Find an attribute index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Attribute index by name, panicking with a readable message when absent (for
    /// hand-written queries and tests).
    pub fn idx(&self, name: &str) -> usize {
        self.index_of(name)
            .unwrap_or_else(|| panic!("relation has no attribute {name:?}"))
    }

    /// The primary-key attribute index, if one was declared.
    pub fn primary_key(&self) -> Option<usize> {
        self.primary_key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Str),
            ColumnDef::nullable("score", DataType::Double),
        ])
        .with_primary_key("id")
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.column_count(), 3);
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.idx("score"), 2);
        assert_eq!(s.primary_key(), Some(0));
        assert!(s.column(2).nullable);
        assert!(!s.column(0).nullable);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_rejected() {
        Schema::new(vec![
            ColumnDef::new("x", DataType::Int),
            ColumnDef::new("x", DataType::Int),
        ]);
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn unknown_primary_key_rejected() {
        Schema::new(vec![ColumnDef::new("x", DataType::Int)]).with_primary_key("y");
    }

    #[test]
    #[should_panic(expected = "integer attributes")]
    fn non_integer_primary_key_rejected() {
        Schema::new(vec![ColumnDef::new("x", DataType::Str)]).with_primary_key("x");
    }

    #[test]
    #[should_panic(expected = "no attribute")]
    fn idx_panics_with_message() {
        schema().idx("nope");
    }
}
