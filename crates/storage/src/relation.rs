//! Relations: chunked hybrid storage with hot uncompressed chunks and cold frozen
//! Data Blocks, plus the OLTP surface (insert / point lookup / delete / update).
//!
//! A relation is divided into fixed-size chunks. New records go to the hot tail
//! chunk; chunks identified as cold are *frozen* into immutable Data Blocks with the
//! per-column-optimal compression (Section 3). Updates to frozen records are
//! internally translated into a delete (flag on the block) followed by an insert into
//! the hot tail. An optional primary-key hash index maps key values to record
//! locations for OLTP point accesses.

use std::collections::HashMap;

use datablocks::builder::{freeze, freeze_sorted};
use datablocks::scan::Restriction;
use datablocks::{DataBlock, Value};

use crate::hot::{HotChunk, DEFAULT_CHUNK_CAPACITY};
use crate::schema::Schema;

/// Which storage class a record currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Cold, frozen Data Block number `n`.
    Cold(usize),
    /// Hot, uncompressed chunk number `n`.
    Hot(usize),
}

/// Stable identifier of a record: its segment and row index within that segment.
///
/// Freezing preserves row order, so identifiers remain valid when a hot chunk becomes
/// a cold block (hot chunk `i` becomes cold block `cold_count + i` only at freeze
/// time, and the relation rewrites the mapping for its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId {
    /// The segment holding the record.
    pub segment: Segment,
    /// Row index within the segment.
    pub row: u32,
}

/// Statistics about a relation's storage (reported by Table 1 / Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageStats {
    /// Number of cold (frozen) Data Blocks.
    pub cold_blocks: usize,
    /// Number of hot uncompressed chunks.
    pub hot_chunks: usize,
    /// Records in cold blocks (including deleted).
    pub cold_rows: usize,
    /// Records in hot chunks (including deleted).
    pub hot_rows: usize,
    /// Bytes used by cold blocks (compressed, including SMAs/PSMAs).
    pub cold_bytes: usize,
    /// Bytes used by hot chunks (uncompressed).
    pub hot_bytes: usize,
    /// Bytes the cold rows would occupy uncompressed.
    pub cold_bytes_uncompressed: usize,
}

impl StorageStats {
    /// Total bytes currently used.
    pub fn total_bytes(&self) -> usize {
        self.cold_bytes + self.hot_bytes
    }

    /// Compression ratio achieved on the cold part (uncompressed ÷ compressed).
    pub fn compression_ratio(&self) -> f64 {
        if self.cold_bytes == 0 {
            1.0
        } else {
            self.cold_bytes_uncompressed as f64 / self.cold_bytes as f64
        }
    }
}

/// A chunked relation with hot and cold storage.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    schema: Schema,
    cold: Vec<DataBlock>,
    cold_uncompressed_bytes: usize,
    hot: Vec<HotChunk>,
    chunk_capacity: usize,
    pk_index: Option<HashMap<i64, RowId>>,
}

impl Relation {
    /// Create an empty relation. A primary-key index is allocated automatically when
    /// the schema declares a primary key.
    pub fn new(name: impl Into<String>, schema: Schema) -> Relation {
        Relation::with_chunk_capacity(name, schema, DEFAULT_CHUNK_CAPACITY)
    }

    /// Create an empty relation with a specific chunk capacity (the number of records
    /// per chunk and therefore per Data Block).
    pub fn with_chunk_capacity(
        name: impl Into<String>,
        schema: Schema,
        chunk_capacity: usize,
    ) -> Relation {
        assert!(chunk_capacity > 0);
        let pk_index = schema.primary_key().map(|_| HashMap::new());
        Relation {
            name: name.into(),
            schema,
            cold: Vec::new(),
            cold_uncompressed_bytes: 0,
            hot: Vec::new(),
            chunk_capacity,
            pk_index,
        }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records per chunk / Data Block.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_capacity
    }

    /// Drop the primary-key index (Table 3 measures point lookups with and without
    /// one). The schema still remembers which attribute is the key.
    pub fn drop_pk_index(&mut self) {
        self.pk_index = None;
    }

    /// (Re-)build the primary-key index over all live records.
    pub fn build_pk_index(&mut self) {
        let Some(pk_col) = self.schema.primary_key() else {
            return;
        };
        let mut index = HashMap::new();
        for (block_idx, block) in self.cold.iter().enumerate() {
            for row in 0..block.tuple_count() as usize {
                if block.is_deleted(row) {
                    continue;
                }
                if let Value::Int(key) = block.get(row, pk_col) {
                    index.insert(
                        key,
                        RowId {
                            segment: Segment::Cold(block_idx),
                            row: row as u32,
                        },
                    );
                }
            }
        }
        for (chunk_idx, chunk) in self.hot.iter().enumerate() {
            for row in 0..chunk.len() {
                if chunk.is_deleted(row) {
                    continue;
                }
                if let Value::Int(key) = chunk.get(row, pk_col) {
                    index.insert(
                        key,
                        RowId {
                            segment: Segment::Hot(chunk_idx),
                            row: row as u32,
                        },
                    );
                }
            }
        }
        self.pk_index = Some(index);
    }

    /// Does the relation currently maintain a primary-key index?
    pub fn has_pk_index(&self) -> bool {
        self.pk_index.is_some()
    }

    // ----------------------------------------------------------------- OLTP surface

    /// Insert a record (one value per attribute). Returns its location.
    pub fn insert(&mut self, values: Vec<Value>) -> RowId {
        assert_eq!(
            values.len(),
            self.schema.column_count(),
            "value count must match the schema"
        );
        let pk_value = self.schema.primary_key().map(|col| values[col].clone());
        if self.hot.last().map(|c| c.is_full()).unwrap_or(true) {
            let chunk = HotChunk::new(&self.schema, self.chunk_capacity);
            self.hot.push(chunk);
        }
        let chunk_idx = self.hot.len() - 1;
        let row = self.hot[chunk_idx].insert(values);
        let row_id = RowId {
            segment: Segment::Hot(chunk_idx),
            row: row as u32,
        };
        if let (Some(index), Some(Value::Int(key))) = (&mut self.pk_index, pk_value) {
            index.insert(key, row_id);
        }
        row_id
    }

    /// Read one attribute of a record.
    pub fn get(&self, id: RowId, col: usize) -> Value {
        match id.segment {
            Segment::Cold(b) => self.cold[b].get(id.row as usize, col),
            Segment::Hot(c) => self.hot[c].get(id.row as usize, col),
        }
    }

    /// Read a whole record.
    pub fn get_row(&self, id: RowId) -> Vec<Value> {
        (0..self.schema.column_count())
            .map(|col| self.get(id, col))
            .collect()
    }

    /// Is the record marked deleted?
    pub fn is_deleted(&self, id: RowId) -> bool {
        match id.segment {
            Segment::Cold(b) => self.cold[b].is_deleted(id.row as usize),
            Segment::Hot(c) => self.hot[c].is_deleted(id.row as usize),
        }
    }

    /// Delete a record (tombstone in hot chunks, delete flag in frozen blocks).
    pub fn delete(&mut self, id: RowId) -> bool {
        let deleted = match id.segment {
            Segment::Cold(b) => self.cold[b].delete(id.row as usize),
            Segment::Hot(c) => self.hot[c].delete(id.row as usize),
        };
        if deleted {
            if let (Some(index), Some(pk_col)) = (&mut self.pk_index, self.schema.primary_key()) {
                let key = match id.segment {
                    Segment::Cold(b) => self.cold[b].get(id.row as usize, pk_col),
                    Segment::Hot(c) => self.hot[c].get(id.row as usize, pk_col),
                };
                if let Value::Int(key) = key {
                    index.remove(&key);
                }
            }
        }
        deleted
    }

    /// Update a record with new values.
    ///
    /// Hot records are updated in place; frozen records are invalidated (delete flag)
    /// and the new version is re-inserted into the hot tail — exactly the paper's
    /// "update = delete followed by insert" rule for cold data. Returns the location
    /// of the current version.
    pub fn update(&mut self, id: RowId, values: Vec<Value>) -> RowId {
        assert_eq!(
            values.len(),
            self.schema.column_count(),
            "value count must match the schema"
        );
        match id.segment {
            Segment::Hot(c) => {
                let pk_col = self.schema.primary_key();
                let old_key = pk_col.map(|col| self.hot[c].get(id.row as usize, col));
                for (col, value) in values.iter().enumerate() {
                    self.hot[c].update_in_place(id.row as usize, col, value.clone());
                }
                if let (Some(index), Some(col)) = (&mut self.pk_index, pk_col) {
                    if let Some(Value::Int(old)) = old_key {
                        index.remove(&old);
                    }
                    if let Value::Int(new) = values[col] {
                        index.insert(new, id);
                    }
                }
                id
            }
            Segment::Cold(_) => {
                self.delete(id);
                self.insert(values)
            }
        }
    }

    /// Point lookup via the primary-key index, if one exists.
    pub fn lookup_pk(&self, key: i64) -> Option<RowId> {
        let id = *self.pk_index.as_ref()?.get(&key)?;
        if self.is_deleted(id) {
            None
        } else {
            Some(id)
        }
    }

    /// Point lookup without an index: a scan over all segments restricted on the
    /// primary-key attribute (SMAs/PSMAs on frozen blocks narrow this scan; on hot
    /// chunks it is a plain scan). Returns the first live match.
    pub fn lookup_pk_scan(&self, key: i64, options: datablocks::ScanOptions) -> Option<RowId> {
        let pk_col = self.schema.primary_key()?;
        let restriction = [Restriction::eq(pk_col, key)];
        // One scratch + one result buffer reused across every block and chunk.
        let mut scratch = Vec::new();
        let mut matches = Vec::new();
        for (block_idx, block) in self.cold.iter().enumerate() {
            matches.clear();
            datablocks::scan::scan_collect_into(
                block,
                &restriction,
                options,
                &mut scratch,
                &mut matches,
            );
            if let Some(&row) = matches.first() {
                return Some(RowId {
                    segment: Segment::Cold(block_idx),
                    row,
                });
            }
        }
        for (chunk_idx, chunk) in self.hot.iter().enumerate() {
            matches.clear();
            chunk.find_matches(&restriction, 0, chunk.len(), &mut matches);
            if let Some(&row) = matches.first() {
                return Some(RowId {
                    segment: Segment::Hot(chunk_idx),
                    row,
                });
            }
        }
        None
    }

    // ------------------------------------------------------------------- freezing

    /// Freeze every *full* hot chunk into a Data Block, leaving the (possibly
    /// partially filled) tail chunk hot. This is the steady-state behaviour of the
    /// system: cold data migrates to compressed blocks, the hot tail stays mutable.
    pub fn freeze_full_chunks(&mut self) {
        self.freeze_internal(false, None)
    }

    /// Freeze **all** hot chunks (including the tail). Used when bulk-loading a
    /// relation that is known to be cold, e.g. the OLAP experiments.
    pub fn freeze_all(&mut self) {
        self.freeze_internal(true, None)
    }

    /// Freeze all hot chunks, re-ordering the records of each chunk by the given
    /// attribute before compression (the Section 3.2 clustering used by Figure 11).
    pub fn freeze_all_sorted_by(&mut self, column: usize) {
        self.freeze_internal(true, Some(column))
    }

    fn freeze_internal(&mut self, include_partial: bool, sort_by: Option<usize>) {
        let mut remaining = Vec::new();
        let hot = std::mem::take(&mut self.hot);
        for chunk in hot {
            if chunk.is_empty() || (!include_partial && !chunk.is_full()) {
                remaining.push(chunk);
                continue;
            }
            self.cold_uncompressed_bytes += chunk.byte_size();
            let block = match sort_by {
                Some(col) => freeze_sorted(chunk.columns(), col),
                None => freeze(chunk.columns()),
            };
            // Carry over tombstones: records deleted while hot stay deleted when
            // frozen (their positions are preserved by an unsorted freeze; a sorted
            // freeze of a chunk with deletions is rejected to keep ids meaningful).
            let mut block = block;
            let had_deletions = (0..chunk.len()).any(|r| chunk.is_deleted(r));
            if had_deletions {
                assert!(
                    sort_by.is_none(),
                    "cannot sort-freeze a chunk that already has deletions"
                );
                for row in 0..chunk.len() {
                    if chunk.is_deleted(row) {
                        block.delete(row);
                    }
                }
            }
            self.cold.push(block);
        }
        self.hot = remaining;
        // Record locations changed (hot chunk index -> cold block index), so rebuild
        // the PK index if one exists.
        if self.pk_index.is_some() {
            self.build_pk_index();
        }
    }

    // ------------------------------------------------------------------ inspection

    /// The frozen Data Blocks.
    pub fn cold_blocks(&self) -> &[DataBlock] {
        &self.cold
    }

    /// The hot chunks.
    pub fn hot_chunks(&self) -> &[HotChunk] {
        &self.hot
    }

    /// Total number of records (live and deleted) across all segments.
    pub fn row_count(&self) -> usize {
        self.cold
            .iter()
            .map(|b| b.tuple_count() as usize)
            .sum::<usize>()
            + self.hot.iter().map(|c| c.len()).sum::<usize>()
    }

    /// Number of live (not deleted) records.
    pub fn live_row_count(&self) -> usize {
        self.cold
            .iter()
            .map(|b| b.live_tuple_count() as usize)
            .sum::<usize>()
            + self.hot.iter().map(|c| c.live_len()).sum::<usize>()
    }

    /// Distinct storage-layout combinations across the frozen blocks (each one would
    /// be a separate code path for a JIT-compiled scan — Figure 5).
    pub fn layout_combinations(&self) -> usize {
        let mut layouts: Vec<_> = self.cold.iter().map(|b| b.layout_combination()).collect();
        layouts.sort();
        layouts.dedup();
        layouts.len()
    }

    /// Storage statistics for size/compression reporting.
    pub fn storage_stats(&self) -> StorageStats {
        StorageStats {
            cold_blocks: self.cold.len(),
            hot_chunks: self.hot.len(),
            cold_rows: self.cold.iter().map(|b| b.tuple_count() as usize).sum(),
            hot_rows: self.hot.iter().map(|c| c.len()).sum(),
            cold_bytes: self.cold.iter().map(|b| b.byte_size()).sum(),
            hot_bytes: self.hot.iter().map(|c| c.byte_size()).sum(),
            cold_bytes_uncompressed: self.cold_uncompressed_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use datablocks::{DataType, ScanOptions};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("grp", DataType::Str),
            ColumnDef::new("amount", DataType::Int),
        ])
        .with_primary_key("id")
    }

    fn filled_relation(rows: i64, chunk_capacity: usize) -> Relation {
        let mut rel = Relation::with_chunk_capacity("t", schema(), chunk_capacity);
        for i in 0..rows {
            rel.insert(vec![
                Value::Int(i),
                Value::Str(format!("g{}", i % 4)),
                Value::Int(i * 10),
            ]);
        }
        rel
    }

    #[test]
    fn insert_and_point_lookup_hot() {
        let rel = filled_relation(100, 1000);
        let id = rel.lookup_pk(42).expect("indexed lookup");
        assert_eq!(rel.get(id, 2), Value::Int(420));
        assert_eq!(rel.get_row(id)[1], Value::Str("g2".into()));
        assert_eq!(rel.row_count(), 100);
    }

    #[test]
    fn freeze_moves_rows_to_cold_and_lookups_still_work() {
        let mut rel = filled_relation(2_500, 1000);
        assert_eq!(rel.hot_chunks().len(), 3);
        rel.freeze_full_chunks();
        assert_eq!(rel.cold_blocks().len(), 2);
        assert_eq!(rel.hot_chunks().len(), 1);
        // indexed lookup finds rows in both cold and hot segments
        let cold_id = rel.lookup_pk(500).unwrap();
        assert!(matches!(cold_id.segment, Segment::Cold(_)));
        assert_eq!(rel.get(cold_id, 2), Value::Int(5000));
        let hot_id = rel.lookup_pk(2_400).unwrap();
        assert!(matches!(hot_id.segment, Segment::Hot(_)));
        // non-indexed scan lookup agrees
        let scanned = rel.lookup_pk_scan(500, ScanOptions::default()).unwrap();
        assert_eq!(rel.get(scanned, 0), Value::Int(500));
    }

    #[test]
    fn freeze_all_includes_partial_tail() {
        let mut rel = filled_relation(1_500, 1000);
        rel.freeze_all();
        assert_eq!(rel.cold_blocks().len(), 2);
        assert!(rel.hot_chunks().is_empty());
        assert_eq!(rel.live_row_count(), 1_500);
    }

    #[test]
    fn delete_hides_record_from_lookup() {
        let mut rel = filled_relation(100, 50);
        rel.freeze_all();
        let id = rel.lookup_pk(10).unwrap();
        assert!(rel.delete(id));
        assert!(rel.is_deleted(id));
        assert!(rel.lookup_pk(10).is_none());
        assert!(rel.lookup_pk_scan(10, ScanOptions::default()).is_none());
        assert_eq!(rel.live_row_count(), 99);
    }

    #[test]
    fn update_cold_record_becomes_delete_plus_insert() {
        let mut rel = filled_relation(100, 50);
        rel.freeze_all();
        let old_id = rel.lookup_pk(7).unwrap();
        assert!(matches!(old_id.segment, Segment::Cold(_)));
        let new_id = rel.update(
            old_id,
            vec![Value::Int(7), Value::Str("updated".into()), Value::Int(777)],
        );
        assert!(matches!(new_id.segment, Segment::Hot(_)));
        assert!(rel.is_deleted(old_id));
        let found = rel.lookup_pk(7).unwrap();
        assert_eq!(found, new_id);
        assert_eq!(rel.get(found, 1), Value::Str("updated".into()));
        assert_eq!(rel.get(found, 2), Value::Int(777));
    }

    #[test]
    fn update_hot_record_in_place() {
        let mut rel = filled_relation(10, 100);
        let id = rel.lookup_pk(3).unwrap();
        let same = rel.update(
            id,
            vec![Value::Int(3), Value::Str("x".into()), Value::Int(-1)],
        );
        assert_eq!(id, same);
        assert_eq!(rel.get(id, 2), Value::Int(-1));
    }

    #[test]
    fn pk_index_can_be_dropped_and_rebuilt() {
        let mut rel = filled_relation(200, 64);
        rel.freeze_all();
        assert!(rel.has_pk_index());
        rel.drop_pk_index();
        assert!(!rel.has_pk_index());
        assert!(rel.lookup_pk(5).is_none());
        assert!(rel.lookup_pk_scan(5, ScanOptions::default()).is_some());
        rel.build_pk_index();
        assert!(rel.lookup_pk(5).is_some());
    }

    #[test]
    fn storage_stats_report_compression() {
        let mut rel = filled_relation(5_000, 1000);
        rel.freeze_all();
        let stats = rel.storage_stats();
        assert_eq!(stats.cold_blocks, 5);
        assert_eq!(stats.cold_rows, 5_000);
        assert_eq!(stats.hot_rows, 0);
        assert!(
            stats.compression_ratio() > 1.5,
            "ratio {}",
            stats.compression_ratio()
        );
        assert!(stats.total_bytes() > 0);
    }

    #[test]
    fn layout_combinations_counted() {
        let mut rel = filled_relation(3_000, 1000);
        rel.freeze_all();
        assert!(rel.layout_combinations() >= 1);
    }

    #[test]
    fn tombstones_survive_freezing() {
        let mut rel = filled_relation(100, 100);
        let id = rel.lookup_pk(55).unwrap();
        rel.delete(id);
        rel.freeze_all();
        assert!(rel.lookup_pk(55).is_none());
        assert_eq!(rel.live_row_count(), 99);
    }

    #[test]
    fn sorted_freeze_orders_block_contents() {
        let mut rel = Relation::with_chunk_capacity("t", schema(), 1000);
        for i in (0..1000i64).rev() {
            rel.insert(vec![Value::Int(i), Value::Str("g".into()), Value::Int(i)]);
        }
        rel.freeze_all_sorted_by(0);
        let block = &rel.cold_blocks()[0];
        assert_eq!(block.get(0, 0), Value::Int(0));
        assert_eq!(block.get(999, 0), Value::Int(999));
        // index still finds the right record after the permutation
        let id = rel.lookup_pk(123).unwrap();
        assert_eq!(rel.get(id, 2), Value::Int(123));
    }
}
