//! Relations: chunked hybrid storage with hot uncompressed chunks and cold frozen
//! Data Blocks, plus the OLTP surface (insert / point lookup / delete / update).
//!
//! A relation is divided into fixed-size chunks. New records go to the hot tail
//! chunk; chunks identified as cold are *frozen* into immutable Data Blocks with the
//! per-column-optimal compression (Section 3). Updates to frozen records are
//! internally translated into a delete (flag on the block) followed by an insert into
//! the hot tail. An optional primary-key hash index maps key values to record
//! locations for OLTP point accesses.
//!
//! # Larger-than-memory relations
//!
//! With a [`SpillPolicy`] attached ([`Relation::enable_spill`]), freezing writes each
//! new Data Block to the relation's [`BlockStore`] instead of retaining it on the
//! heap: the cold tier then lives on secondary storage, with only the block
//! directory (offsets + SMA summaries) and a capacity-bounded block cache in memory.
//! Every cold-block access goes through [`Relation::cold_block`], which returns a
//! [`BlockRef`] resolving transparently to the heap-resident block or to a pinned
//! copy paged in from disk — scans, point accesses and index builds are oblivious to
//! which tier a block currently occupies, and
//! [`Relation::cold_block_may_match`] lets scans apply SMA skipping to cold blocks
//! from the in-memory directory without any I/O.

use std::collections::HashMap;
use std::sync::Arc;

use datablocks::builder::{freeze, freeze_sorted};
use datablocks::scan::Restriction;
use datablocks::{DataBlock, DataType, ScanOptions, Value};

use crate::blockstore::{BlockId, BlockRef, BlockStore, ColdReadError, SpillPolicy};
use crate::hot::{HotChunk, DEFAULT_CHUNK_CAPACITY};
use crate::schema::Schema;

/// Which storage class a record currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Cold, frozen Data Block number `n`.
    Cold(usize),
    /// Hot, uncompressed chunk number `n`.
    Hot(usize),
}

/// Stable identifier of a record: its segment and row index within that segment.
///
/// Freezing preserves row order, so identifiers remain valid when a hot chunk becomes
/// a cold block (hot chunk `i` becomes cold block `cold_count + i` only at freeze
/// time, and the relation rewrites the mapping for its index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId {
    /// The segment holding the record.
    pub segment: Segment,
    /// Row index within the segment.
    pub row: u32,
}

/// Statistics about a relation's storage (reported by Table 1 / Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StorageStats {
    /// Number of cold (frozen) Data Blocks.
    pub cold_blocks: usize,
    /// Number of hot uncompressed chunks.
    pub hot_chunks: usize,
    /// Records in cold blocks (including deleted).
    pub cold_rows: usize,
    /// Records in hot chunks (including deleted).
    pub hot_rows: usize,
    /// Bytes used by cold blocks: in-memory size (compressed, including SMAs/PSMAs)
    /// for heap-resident blocks, serialized on-disk frame size for spilled blocks.
    pub cold_bytes: usize,
    /// Bytes used by hot chunks (uncompressed).
    pub hot_bytes: usize,
    /// Bytes the cold rows would occupy uncompressed.
    pub cold_bytes_uncompressed: usize,
}

impl StorageStats {
    /// Total bytes currently used.
    pub fn total_bytes(&self) -> usize {
        self.cold_bytes + self.hot_bytes
    }

    /// Compression ratio achieved on the cold part (uncompressed ÷ compressed).
    pub fn compression_ratio(&self) -> f64 {
        if self.cold_bytes == 0 {
            1.0
        } else {
            self.cold_bytes_uncompressed as f64 / self.cold_bytes as f64
        }
    }
}

/// Where one frozen block of a relation currently lives.
#[derive(Debug, Clone)]
enum ColdSlot {
    /// On the heap (the pre-spill behaviour; also cheap to `Clone` — blocks are
    /// immutable, so clones share the `Arc`).
    Resident(Arc<DataBlock>),
    /// In the relation's [`BlockStore`], identified by its directory id.
    Spilled(BlockId),
}

/// Resolve one cold slot to a borrowable block, pinning spilled blocks. A
/// spilled block that cannot be paged in (disk error, corrupt frame) comes back
/// as a typed [`ColdReadError`] naming the block's exact on-disk position, so
/// scan workers can carry it out instead of panicking.
fn resolve_cold_slot(
    slot: &ColdSlot,
    store: Option<&Arc<BlockStore>>,
) -> Result<BlockRef, ColdReadError> {
    match slot {
        ColdSlot::Resident(block) => Ok(BlockRef::resident(Arc::clone(block))),
        ColdSlot::Spilled(block_id) => {
            // A spilled slot without a store is a construction bug, not an I/O
            // condition — keep it a loud invariant.
            let store = store.expect("spilled slot without store");
            store.pin_described(*block_id).map(BlockRef::pinned)
        }
    }
}

/// Queue spilled blocks among `idxs` for the store's read-ahead worker. Resident
/// blocks (and stores without spill) need no prefetch.
fn prefetch_cold_slots(slots: &[ColdSlot], store: Option<&Arc<BlockStore>>, idxs: &[usize]) {
    let Some(store) = store else {
        return;
    };
    let ids: Vec<BlockId> = idxs
        .iter()
        .filter_map(|&idx| match slots.get(idx) {
            Some(ColdSlot::Spilled(block_id)) => Some(*block_id),
            _ => None,
        })
        .collect();
    store.prefetch(&ids);
}

/// SMA gate for one cold slot: answered from the store's in-memory directory for
/// spilled blocks (zero I/O), always `true` for heap-resident blocks (the scan
/// planner decides with the full block at hand).
fn cold_slot_may_match(
    slot: &ColdSlot,
    store: Option<&Arc<BlockStore>>,
    restrictions: &[Restriction],
    options: &ScanOptions,
) -> bool {
    match slot {
        ColdSlot::Resident(_) => true,
        ColdSlot::Spilled(block_id) => {
            let store = store.expect("spilled slot without store");
            store.with_summary(*block_id, |s| s.may_match(restrictions, options))
        }
    }
}

/// Anything a scan can read: a live [`Relation`] borrow or an owned
/// [`ScanSnapshot`]. The trait is the seam that lets the streaming parallel scan
/// run its morsel workers on plain (non-scoped) threads — workers capture an owned
/// snapshot instead of borrowing the relation across an unknowable lifetime — while
/// the serial scanner and the scoped pipeline driver keep borrowing the relation
/// directly.
pub trait ScanSource: Send + Sync {
    /// Declared type of column `col`.
    fn column_type(&self, col: usize) -> DataType;

    /// The hot, uncompressed tail chunks.
    fn hot_chunks(&self) -> &[Arc<HotChunk>];

    /// Number of frozen Data Blocks.
    fn cold_block_count(&self) -> usize;

    /// Borrow cold block `idx`, pinning it when it lives on secondary storage. The
    /// returned [`BlockRef`] *is* the per-morsel pin guard: holding it keeps a
    /// spilled block cached, dropping it releases the pin — so a streaming scan
    /// acquires and releases pins one morsel at a time.
    ///
    /// A spilled block that cannot be paged in surfaces as a [`ColdReadError`]
    /// (block id, generation, offset, cause) — the structured error scan
    /// workers propagate instead of panicking, so a corrupt frame cancels the
    /// scan loudly and the worker pool joins cleanly.
    fn cold_block(&self, idx: usize) -> Result<BlockRef, ColdReadError>;

    /// Can any record of cold block `idx` match all `restrictions`? Zero I/O for
    /// spilled blocks (answered from the directory summary).
    fn cold_block_may_match(
        &self,
        idx: usize,
        restrictions: &[Restriction],
        options: &ScanOptions,
    ) -> bool;

    /// Hint that cold blocks `idxs` will be scanned soon: spilled blocks are
    /// queued for the store's read-ahead worker so the later demand pin finds
    /// them cached (see [`BlockStore::prefetch`]). A no-op for heap-resident
    /// blocks and for sources without a spill store — purely an optimisation
    /// hint, never required for correctness.
    fn prefetch_cold_blocks(&self, idxs: &[usize]) {
        let _ = idxs;
    }

    /// An owned, cheaply-cloneable snapshot of the scannable state (see
    /// [`ScanSnapshot`]).
    fn snapshot(&self) -> ScanSnapshot;
}

/// An owned point-in-time view of a relation's scannable state, safe to move onto
/// worker threads that outlive the borrow a scan started from.
///
/// Taking a snapshot is cheap: cold blocks are `Arc`-shared (spilled ones stay in
/// the shared [`BlockStore`]), hot chunks are `Arc`-shared with copy-on-write
/// mutation on the relation side (an insert/delete/update after the snapshot copies
/// the affected chunk, leaving the snapshot's version untouched), and only the
/// column-type vector is cloned outright.
///
/// Caveat (same as relation clones): the cold tier of a *spilling* relation is
/// shared mutable state — a delete that rewrites a spilled block through the shared
/// store is visible to snapshots taken before it.
#[derive(Debug, Clone)]
pub struct ScanSnapshot {
    types: Vec<DataType>,
    cold: Vec<ColdSlot>,
    hot: Vec<Arc<HotChunk>>,
    store: Option<Arc<BlockStore>>,
}

impl ScanSource for ScanSnapshot {
    fn column_type(&self, col: usize) -> DataType {
        self.types[col]
    }

    fn hot_chunks(&self) -> &[Arc<HotChunk>] {
        &self.hot
    }

    fn cold_block_count(&self) -> usize {
        self.cold.len()
    }

    fn cold_block(&self, idx: usize) -> Result<BlockRef, ColdReadError> {
        resolve_cold_slot(&self.cold[idx], self.store.as_ref())
    }

    fn cold_block_may_match(
        &self,
        idx: usize,
        restrictions: &[Restriction],
        options: &ScanOptions,
    ) -> bool {
        cold_slot_may_match(&self.cold[idx], self.store.as_ref(), restrictions, options)
    }

    fn prefetch_cold_blocks(&self, idxs: &[usize]) {
        prefetch_cold_slots(&self.cold, self.store.as_ref(), idxs);
    }

    fn snapshot(&self) -> ScanSnapshot {
        self.clone()
    }
}

impl ScanSource for Relation {
    fn column_type(&self, col: usize) -> DataType {
        self.schema.column(col).data_type
    }

    fn hot_chunks(&self) -> &[Arc<HotChunk>] {
        &self.hot
    }

    fn cold_block_count(&self) -> usize {
        self.cold.len()
    }

    fn cold_block(&self, idx: usize) -> Result<BlockRef, ColdReadError> {
        Relation::try_cold_block(self, idx)
    }

    fn cold_block_may_match(
        &self,
        idx: usize,
        restrictions: &[Restriction],
        options: &ScanOptions,
    ) -> bool {
        Relation::cold_block_may_match(self, idx, restrictions, options)
    }

    fn prefetch_cold_blocks(&self, idxs: &[usize]) {
        prefetch_cold_slots(&self.cold, self.store.as_ref(), idxs);
    }

    fn snapshot(&self) -> ScanSnapshot {
        ScanSnapshot {
            types: self.schema.columns().iter().map(|c| c.data_type).collect(),
            cold: self.cold.clone(),
            hot: self.hot.clone(),
            store: self.store.clone(),
        }
    }
}

/// A chunked relation with hot and cold storage.
///
/// # Clone semantics
///
/// Cloning is cheap (frozen blocks are shared via `Arc`) but the two copies are
/// only fully independent while every cold block is heap-resident: deletes on
/// resident blocks are copy-on-write and clone-local, whereas once a spill store
/// is attached the cold tier is *shared mutable state* — a delete on a spilled
/// block is visible to every clone, and the other clones' primary-key indexes are
/// not updated. Treat clones of a spilling relation as read-only snapshots of the
/// hot tier over a shared cold tier.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    schema: Schema,
    cold: Vec<ColdSlot>,
    cold_uncompressed_bytes: usize,
    /// Hot chunks are `Arc`-shared with [`ScanSnapshot`]s (and clones); mutation
    /// goes through `Arc::make_mut`, so a chunk is copied only when a snapshot of
    /// it is still alive — the common case (no snapshot) mutates in place.
    hot: Vec<Arc<HotChunk>>,
    chunk_capacity: usize,
    pk_index: Option<HashMap<i64, RowId>>,
    /// The spill store, once [`Relation::enable_spill`] ran. Shared by clones of the
    /// relation (blocks are immutable, so sharing is safe; the delete path rewrites
    /// through the store, which clones see too).
    store: Option<Arc<BlockStore>>,
}

impl Relation {
    /// Create an empty relation. A primary-key index is allocated automatically when
    /// the schema declares a primary key.
    pub fn new(name: impl Into<String>, schema: Schema) -> Relation {
        Relation::with_chunk_capacity(name, schema, DEFAULT_CHUNK_CAPACITY)
    }

    /// Create an empty relation with a specific chunk capacity (the number of records
    /// per chunk and therefore per Data Block).
    pub fn with_chunk_capacity(
        name: impl Into<String>,
        schema: Schema,
        chunk_capacity: usize,
    ) -> Relation {
        assert!(chunk_capacity > 0);
        let pk_index = schema.primary_key().map(|_| HashMap::new());
        Relation {
            name: name.into(),
            schema,
            cold: Vec::new(),
            cold_uncompressed_bytes: 0,
            hot: Vec::new(),
            chunk_capacity,
            pk_index,
            store: None,
        }
    }

    // ------------------------------------------------------------------- spilling

    /// Attach a spill store: frozen blocks move to secondary storage, with only the
    /// block directory (offsets + SMA summaries) and a `cache_capacity_bytes`-bounded
    /// block cache resident in memory. Already-frozen heap blocks are written out
    /// immediately; every subsequent freeze spills its blocks instead of retaining
    /// them. Query results are byte-identical to the all-in-memory relation for any
    /// cache capacity (the differential tests in `tests/spill_differential.rs` pin
    /// this down); only I/O counts change.
    ///
    /// Reconfiguration is not supported: a second call returns
    /// [`std::io::ErrorKind::AlreadyExists`] instead of silently keeping the old
    /// store (and its old path and cache capacity).
    pub fn enable_spill(&mut self, policy: &SpillPolicy) -> std::io::Result<()> {
        if self.store.is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "spill store already attached; reconfiguring a relation's spill policy is not supported",
            ));
        }
        let store = match &policy.path {
            Some(path) => {
                BlockStore::create_opts(path, policy.cache_capacity_bytes, policy.durability, None)?
            }
            None => {
                BlockStore::create_temp_opts(policy.cache_capacity_bytes, policy.durability, None)?
            }
        };
        store.set_garbage_threshold(policy.compaction_garbage_ratio);
        // Write every block out *before* touching any slot: a failed append (disk
        // full, ...) must leave the relation exactly as it was — fully in memory,
        // no store attached — not half-converted to slots pointing into a store
        // that was never kept.
        let mut ids = Vec::with_capacity(self.cold.len());
        for slot in &self.cold {
            ids.push(match slot {
                ColdSlot::Resident(block) => Some(store.append(Arc::clone(block))?),
                ColdSlot::Spilled(_) => None,
            });
        }
        for (slot, id) in self.cold.iter_mut().zip(ids) {
            if let Some(id) = id {
                *slot = ColdSlot::Spilled(id);
            }
        }
        self.store = Some(store);
        Ok(())
    }

    /// Reopen a spilled relation from its on-disk store: the cold tier comes
    /// back from `policy.path` (which must name the relation's spill file) by
    /// replaying the store's persisted manifest — **no block payload is read**
    /// to rebuild the directory, including every tombstone recorded before the
    /// close or crash. The caller supplies the name and schema (they are not
    /// persisted in the store); a primary-key index, if the schema declares one,
    /// is rebuilt by paging the cold tier in once.
    ///
    /// The hot tail is *not* recovered — it lived in memory, so a crash loses
    /// it; that is the honest contract of the spill tier (only frozen blocks
    /// reach the store). `storage_stats().cold_bytes_uncompressed` restarts at
    /// zero and the chunk capacity resets to [`DEFAULT_CHUNK_CAPACITY`] for the
    /// same reason (neither is persisted).
    ///
    /// # Errors
    ///
    /// * [`std::io::ErrorKind::AlreadyExists`] when the path backs a store that
    ///   is still live in this process — same loud error as reconfiguring
    ///   [`Relation::enable_spill`], because both would split one file across
    ///   two caches.
    /// * [`std::io::ErrorKind::InvalidInput`] when `policy.path` is `None`.
    /// * [`std::io::ErrorKind::InvalidData`] for a corrupt manifest (beyond a
    ///   torn final record, which is discarded silently).
    pub fn reopen_spilled(
        name: impl Into<String>,
        schema: Schema,
        policy: &SpillPolicy,
    ) -> std::io::Result<Relation> {
        let path = policy.path.as_ref().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "Relation::reopen_spilled requires SpillPolicy.path to name the spill file",
            )
        })?;
        let store =
            BlockStore::reopen_opts(path, policy.cache_capacity_bytes, policy.durability, None)
                .map_err(std::io::Error::from)?;
        store.set_garbage_threshold(policy.compaction_garbage_ratio);
        let cold: Vec<ColdSlot> = (0..store.block_count()).map(ColdSlot::Spilled).collect();
        let pk_index = schema.primary_key().map(|_| HashMap::new());
        let mut relation = Relation {
            name: name.into(),
            schema,
            cold,
            cold_uncompressed_bytes: 0,
            hot: Vec::new(),
            chunk_capacity: DEFAULT_CHUNK_CAPACITY,
            pk_index,
            store: Some(store),
        };
        if relation.pk_index.is_some() {
            relation.build_pk_index();
        }
        Ok(relation)
    }

    /// Is a spill store attached?
    pub fn has_spill(&self) -> bool {
        self.store.is_some()
    }

    /// The spill store, if [`Relation::enable_spill`] ran (benchmarks and tests read
    /// its I/O counters and drop its cache through this).
    pub fn spill_store(&self) -> Option<&Arc<BlockStore>> {
        self.store.as_ref()
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The relation schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records per chunk / Data Block.
    pub fn chunk_capacity(&self) -> usize {
        self.chunk_capacity
    }

    /// Drop the primary-key index (Table 3 measures point lookups with and without
    /// one). The schema still remembers which attribute is the key.
    pub fn drop_pk_index(&mut self) {
        self.pk_index = None;
    }

    /// (Re-)build the primary-key index over all live records.
    pub fn build_pk_index(&mut self) {
        let Some(pk_col) = self.schema.primary_key() else {
            return;
        };
        let mut index = HashMap::new();
        for block_idx in 0..self.cold.len() {
            let block = self.cold_block(block_idx);
            for row in 0..block.tuple_count() as usize {
                if block.is_deleted(row) {
                    continue;
                }
                if let Value::Int(key) = block.get(row, pk_col) {
                    index.insert(
                        key,
                        RowId {
                            segment: Segment::Cold(block_idx),
                            row: row as u32,
                        },
                    );
                }
            }
        }
        for (chunk_idx, chunk) in self.hot.iter().enumerate() {
            for row in 0..chunk.len() {
                if chunk.is_deleted(row) {
                    continue;
                }
                if let Value::Int(key) = chunk.get(row, pk_col) {
                    index.insert(
                        key,
                        RowId {
                            segment: Segment::Hot(chunk_idx),
                            row: row as u32,
                        },
                    );
                }
            }
        }
        self.pk_index = Some(index);
    }

    /// Does the relation currently maintain a primary-key index?
    pub fn has_pk_index(&self) -> bool {
        self.pk_index.is_some()
    }

    // ----------------------------------------------------------------- OLTP surface

    /// Insert a record (one value per attribute). Returns its location.
    pub fn insert(&mut self, values: Vec<Value>) -> RowId {
        assert_eq!(
            values.len(),
            self.schema.column_count(),
            "value count must match the schema"
        );
        let pk_value = self.schema.primary_key().map(|col| values[col].clone());
        if self.hot.last().map(|c| c.is_full()).unwrap_or(true) {
            let chunk = HotChunk::new(&self.schema, self.chunk_capacity);
            self.hot.push(Arc::new(chunk));
        }
        let chunk_idx = self.hot.len() - 1;
        let row = Arc::make_mut(&mut self.hot[chunk_idx]).insert(values);
        let row_id = RowId {
            segment: Segment::Hot(chunk_idx),
            row: row as u32,
        };
        if let (Some(index), Some(Value::Int(key))) = (&mut self.pk_index, pk_value) {
            index.insert(key, row_id);
        }
        row_id
    }

    /// Read one attribute of a record (paging the block in if it is spilled).
    pub fn get(&self, id: RowId, col: usize) -> Value {
        match id.segment {
            Segment::Cold(b) => self.cold_block(b).get(id.row as usize, col),
            Segment::Hot(c) => self.hot[c].get(id.row as usize, col),
        }
    }

    /// Read a whole record.
    pub fn get_row(&self, id: RowId) -> Vec<Value> {
        (0..self.schema.column_count())
            .map(|col| self.get(id, col))
            .collect()
    }

    /// Is the record marked deleted?
    pub fn is_deleted(&self, id: RowId) -> bool {
        match id.segment {
            Segment::Cold(b) => self.cold_block(b).is_deleted(id.row as usize),
            Segment::Hot(c) => self.hot[c].is_deleted(id.row as usize),
        }
    }

    /// Delete a record (tombstone in hot chunks, delete flag in frozen blocks).
    ///
    /// On a **spilled** block the flagged version is rewritten through the store
    /// (append-new-frame + directory repoint), so the delete is durable on the
    /// spill file and visible to every clone sharing the store.
    ///
    /// Note the tier-dependent clone semantics this implies: deleting a
    /// heap-resident cold record is copy-on-write (`Arc::make_mut`) and therefore
    /// clone-local, while deleting a spilled record is observed by every clone
    /// (whose own primary-key indexes are *not* updated — treat clones of a
    /// spilling relation as read-only snapshots of the hot tier plus a shared,
    /// mutable cold tier; see the `Relation` docs).
    ///
    /// # Panics
    ///
    /// Panics if the spill store fails to load or rewrite the block. Fault-aware
    /// callers use [`Relation::try_delete`].
    pub fn delete(&mut self, id: RowId) -> bool {
        self.try_delete(id)
            .unwrap_or_else(|err| panic!("rewrite spilled block: {err}"))
    }

    /// Fallible variant of [`Relation::delete`]: an I/O failure while loading or
    /// rewriting a **spilled** block surfaces as the underlying
    /// [`std::io::Error`] instead of a panic, leaving the record untouched
    /// (the store never repoints the directory at a write that failed).
    /// Deleting hot or heap-resident records never does I/O and never errors.
    pub fn try_delete(&mut self, id: RowId) -> std::io::Result<bool> {
        let row = id.row as usize;
        // The primary-key value is captured on the same access that performs the
        // delete, so the spilled path never pages the block in a second time.
        let pk_col = if self.pk_index.is_some() {
            self.schema.primary_key()
        } else {
            None
        };
        let (deleted, key) = match id.segment {
            Segment::Cold(b) => match &mut self.cold[b] {
                ColdSlot::Resident(block) => {
                    let block = Arc::make_mut(block);
                    let deleted = block.delete(row);
                    let key = pk_col.map(|col| block.get(row, col));
                    (deleted, key)
                }
                ColdSlot::Spilled(block_id) => {
                    // `mutate` holds the store's mutation lock across the whole
                    // load → flag → rewrite sequence, so concurrent deletes from
                    // relation clones sharing the store serialise (no lost
                    // tombstones).
                    let store = self.store.as_ref().expect("spilled slot without store");
                    store.mutate(*block_id, |current| {
                        if current.is_deleted(row) {
                            (None, (false, None))
                        } else {
                            let key = pk_col.map(|col| current.get(row, col));
                            let mut block = current.clone();
                            block.delete(row);
                            (Some(block), (true, key))
                        }
                    })?
                }
            },
            Segment::Hot(c) => {
                let chunk = Arc::make_mut(&mut self.hot[c]);
                let deleted = chunk.delete(row);
                let key = pk_col.map(|col| chunk.get(row, col));
                (deleted, key)
            }
        };
        if deleted {
            if let (Some(index), Some(Value::Int(key))) = (&mut self.pk_index, key) {
                index.remove(&key);
            }
        }
        Ok(deleted)
    }

    /// Update a record with new values.
    ///
    /// Hot records are updated in place; frozen records are invalidated (delete flag)
    /// and the new version is re-inserted into the hot tail — exactly the paper's
    /// "update = delete followed by insert" rule for cold data. Returns the location
    /// of the current version.
    pub fn update(&mut self, id: RowId, values: Vec<Value>) -> RowId {
        assert_eq!(
            values.len(),
            self.schema.column_count(),
            "value count must match the schema"
        );
        match id.segment {
            Segment::Hot(c) => {
                let pk_col = self.schema.primary_key();
                let old_key = pk_col.map(|col| self.hot[c].get(id.row as usize, col));
                let chunk = Arc::make_mut(&mut self.hot[c]);
                for (col, value) in values.iter().enumerate() {
                    chunk.update_in_place(id.row as usize, col, value.clone());
                }
                if let (Some(index), Some(col)) = (&mut self.pk_index, pk_col) {
                    if let Some(Value::Int(old)) = old_key {
                        index.remove(&old);
                    }
                    if let Value::Int(new) = values[col] {
                        index.insert(new, id);
                    }
                }
                id
            }
            Segment::Cold(_) => {
                self.delete(id);
                self.insert(values)
            }
        }
    }

    /// Point lookup via the primary-key index, if one exists.
    pub fn lookup_pk(&self, key: i64) -> Option<RowId> {
        let id = *self.pk_index.as_ref()?.get(&key)?;
        if self.is_deleted(id) {
            None
        } else {
            Some(id)
        }
    }

    /// Point lookup without an index: a scan over all segments restricted on the
    /// primary-key attribute (SMAs/PSMAs on frozen blocks narrow this scan; on hot
    /// chunks it is a plain scan). Returns the first live match.
    pub fn lookup_pk_scan(&self, key: i64, options: datablocks::ScanOptions) -> Option<RowId> {
        let pk_col = self.schema.primary_key()?;
        let restriction = [Restriction::eq(pk_col, key)];
        // One scratch + one result buffer reused across every block and chunk.
        let mut scratch = Vec::new();
        let mut matches = Vec::new();
        for block_idx in 0..self.cold.len() {
            // SMA pruning from the in-memory directory: a spilled block whose
            // summary rules the key out is never read from disk.
            if !self.cold_block_may_match(block_idx, &restriction, &options) {
                continue;
            }
            let block = self.cold_block(block_idx);
            matches.clear();
            datablocks::scan::scan_collect_into(
                &block,
                &restriction,
                options,
                &mut scratch,
                &mut matches,
            );
            if let Some(&row) = matches.first() {
                return Some(RowId {
                    segment: Segment::Cold(block_idx),
                    row,
                });
            }
        }
        for (chunk_idx, chunk) in self.hot.iter().enumerate() {
            matches.clear();
            chunk.find_matches(&restriction, 0, chunk.len(), &mut matches);
            if let Some(&row) = matches.first() {
                return Some(RowId {
                    segment: Segment::Hot(chunk_idx),
                    row,
                });
            }
        }
        None
    }

    // ------------------------------------------------------------------- freezing

    /// Freeze every *full* hot chunk into a Data Block, leaving the (possibly
    /// partially filled) tail chunk hot. This is the steady-state behaviour of the
    /// system: cold data migrates to compressed blocks, the hot tail stays mutable.
    /// With a spill store attached the new blocks are written out to disk instead of
    /// retained on the heap.
    ///
    /// # Panics
    ///
    /// Panics if the spill store fails to write a block out. Fault-aware callers
    /// use [`Relation::try_freeze_full_chunks`].
    pub fn freeze_full_chunks(&mut self) {
        self.try_freeze_full_chunks()
            .unwrap_or_else(|err| panic!("spill frozen block: {err}"))
    }

    /// Freeze **all** hot chunks (including the tail). Used when bulk-loading a
    /// relation that is known to be cold, e.g. the OLAP experiments.
    ///
    /// # Panics
    ///
    /// Panics if the spill store fails to write a block out. Fault-aware callers
    /// use [`Relation::try_freeze_all`].
    pub fn freeze_all(&mut self) {
        self.try_freeze_all()
            .unwrap_or_else(|err| panic!("spill frozen block: {err}"))
    }

    /// Freeze all hot chunks, re-ordering the records of each chunk by the given
    /// attribute before compression (the Section 3.2 clustering used by Figure 11).
    ///
    /// # Panics
    ///
    /// Panics if the spill store fails to write a block out. Fault-aware callers
    /// use [`Relation::try_freeze_all_sorted_by`].
    pub fn freeze_all_sorted_by(&mut self, column: usize) {
        self.try_freeze_all_sorted_by(column)
            .unwrap_or_else(|err| panic!("spill frozen block: {err}"))
    }

    /// Fallible variant of [`Relation::freeze_full_chunks`]: a spill-store write
    /// failure surfaces as the underlying [`std::io::Error`]. The freeze itself
    /// still completes — a block whose spill failed stays heap-**resident**
    /// (nothing is lost, it just did not reach disk), and the first error is
    /// returned so the caller knows durability was not achieved.
    pub fn try_freeze_full_chunks(&mut self) -> std::io::Result<()> {
        self.freeze_internal(false, None)
    }

    /// Fallible variant of [`Relation::freeze_all`]; same error contract as
    /// [`Relation::try_freeze_full_chunks`].
    pub fn try_freeze_all(&mut self) -> std::io::Result<()> {
        self.freeze_internal(true, None)
    }

    /// Fallible variant of [`Relation::freeze_all_sorted_by`]; same error
    /// contract as [`Relation::try_freeze_full_chunks`].
    pub fn try_freeze_all_sorted_by(&mut self, column: usize) -> std::io::Result<()> {
        self.freeze_internal(true, Some(column))
    }

    fn freeze_internal(
        &mut self,
        include_partial: bool,
        sort_by: Option<usize>,
    ) -> std::io::Result<()> {
        let mut remaining = Vec::new();
        let mut first_err: Option<std::io::Error> = None;
        let hot = std::mem::take(&mut self.hot);
        // Where each old hot chunk's records end up, in old-chunk order: either the
        // new cold block (rows preserved by an unsorted freeze) or the chunk's new
        // hot index. Lets the PK index be remapped in place instead of rebuilt.
        let mut remap = Vec::with_capacity(hot.len());
        for chunk in hot {
            if chunk.is_empty() || (!include_partial && !chunk.is_full()) {
                remap.push(Segment::Hot(remaining.len()));
                remaining.push(chunk);
                continue;
            }
            remap.push(Segment::Cold(self.cold.len()));
            self.cold_uncompressed_bytes += chunk.byte_size();
            let block = match sort_by {
                Some(col) => freeze_sorted(chunk.columns(), col),
                None => freeze(chunk.columns()),
            };
            // Carry over tombstones: records deleted while hot stay deleted when
            // frozen (their positions are preserved by an unsorted freeze; a sorted
            // freeze of a chunk with deletions is rejected to keep ids meaningful).
            let mut block = block;
            let had_deletions = (0..chunk.len()).any(|r| chunk.is_deleted(r));
            if had_deletions {
                assert!(
                    sort_by.is_none(),
                    "cannot sort-freeze a chunk that already has deletions"
                );
                for row in 0..chunk.len() {
                    if chunk.is_deleted(row) {
                        block.delete(row);
                    }
                }
            }
            let block = Arc::new(block);
            let slot = match &self.store {
                // A failed spill keeps the block resident: the freeze still
                // completes (data intact, just not on disk) and the first error
                // is carried out to the caller below.
                Some(store) => match store.append(Arc::clone(&block)) {
                    Ok(id) => ColdSlot::Spilled(id),
                    Err(err) => {
                        if first_err.is_none() {
                            first_err = Some(err);
                        }
                        ColdSlot::Resident(block)
                    }
                },
                None => ColdSlot::Resident(block),
            };
            self.cold.push(slot);
        }
        self.hot = remaining;
        // Record locations changed (hot chunk index -> cold block index / shifted
        // hot index). Unsorted freezes preserve row positions, so index entries are
        // remapped in place — no block is touched, which matters once cold blocks
        // live on disk (a full rebuild would page the whole cold tier back in on
        // every freeze). A sorted freeze permutes rows and takes the full rebuild.
        if sort_by.is_some() {
            if self.pk_index.is_some() {
                self.build_pk_index();
            }
        } else if let Some(index) = &mut self.pk_index {
            for row_id in index.values_mut() {
                if let Segment::Hot(old_idx) = row_id.segment {
                    row_id.segment = remap[old_idx];
                }
            }
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    // ------------------------------------------------------------------ inspection

    /// Number of frozen Data Blocks (heap-resident and spilled).
    pub fn cold_block_count(&self) -> usize {
        self.cold.len()
    }

    /// Borrow cold block `idx`, paging it in (and pinning it in the block cache)
    /// when it is spilled. The returned [`BlockRef`] dereferences to [`DataBlock`];
    /// holding it keeps a spilled block pinned, so scans hold one per morsel.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or the spill store fails to load the block
    /// (I/O error or checksum mismatch). Callers that must survive a bad frame —
    /// scan workers above all — use [`Relation::try_cold_block`].
    pub fn cold_block(&self, idx: usize) -> BlockRef {
        self.try_cold_block(idx)
            .unwrap_or_else(|err| panic!("{err}"))
    }

    /// Fallible variant of [`Relation::cold_block`]: a spilled block that cannot
    /// be paged in (disk error, corrupt frame) comes back as a typed
    /// [`ColdReadError`] naming the block's exact on-disk position instead of
    /// panicking. Still panics if `idx` is out of range (a caller bug, not an
    /// I/O condition).
    pub fn try_cold_block(&self, idx: usize) -> Result<BlockRef, ColdReadError> {
        resolve_cold_slot(&self.cold[idx], self.store.as_ref())
    }

    /// Can any record of cold block `idx` match all `restrictions`?
    ///
    /// For a spilled block this consults the SMA summary in the store's in-memory
    /// directory — **zero I/O** — replicating exactly the scan planner's SMA
    /// block-skipping gate (see [`datablocks::BlockSummary::may_match`]; the
    /// planner's non-SMA rule-outs, e.g. dictionary probes, still require loading
    /// the block). For a heap-resident block it returns `true` and leaves the
    /// decision to the scan planner, which has the full block at hand; either way
    /// the scan's result and its skip counters are identical.
    pub fn cold_block_may_match(
        &self,
        idx: usize,
        restrictions: &[Restriction],
        options: &ScanOptions,
    ) -> bool {
        cold_slot_may_match(&self.cold[idx], self.store.as_ref(), restrictions, options)
    }

    /// The hot chunks (`Arc`-shared with any live [`ScanSnapshot`]s).
    pub fn hot_chunks(&self) -> &[Arc<HotChunk>] {
        &self.hot
    }

    /// An owned point-in-time view of the scannable state (see [`ScanSnapshot`]).
    pub fn scan_snapshot(&self) -> ScanSnapshot {
        ScanSource::snapshot(self)
    }

    /// Tuple count of one cold slot, answered from the directory summary for
    /// spilled blocks (no I/O).
    fn cold_slot_tuples(&self, slot: &ColdSlot) -> (usize, usize) {
        match slot {
            ColdSlot::Resident(block) => (
                block.tuple_count() as usize,
                block.live_tuple_count() as usize,
            ),
            ColdSlot::Spilled(block_id) => {
                let store = self.store.as_ref().expect("spilled slot without store");
                store.with_summary(*block_id, |s| {
                    (s.tuple_count as usize, s.live_tuple_count() as usize)
                })
            }
        }
    }

    /// Total number of records (live and deleted) across all segments.
    pub fn row_count(&self) -> usize {
        self.cold
            .iter()
            .map(|slot| self.cold_slot_tuples(slot).0)
            .sum::<usize>()
            + self.hot.iter().map(|c| c.len()).sum::<usize>()
    }

    /// Number of live (not deleted) records.
    pub fn live_row_count(&self) -> usize {
        self.cold
            .iter()
            .map(|slot| self.cold_slot_tuples(slot).1)
            .sum::<usize>()
            + self.hot.iter().map(|c| c.live_len()).sum::<usize>()
    }

    /// Distinct storage-layout combinations across the frozen blocks (each one would
    /// be a separate code path for a JIT-compiled scan — Figure 5). Loads spilled
    /// blocks through the cache.
    pub fn layout_combinations(&self) -> usize {
        let mut layouts: Vec<_> = (0..self.cold.len())
            .map(|idx| self.cold_block(idx).layout_combination())
            .collect();
        layouts.sort();
        layouts.dedup();
        layouts.len()
    }

    /// Storage statistics for size/compression reporting. For spilled blocks
    /// `cold_bytes` reports the serialized on-disk frame size (answered from the
    /// directory, no I/O).
    pub fn storage_stats(&self) -> StorageStats {
        let cold_bytes = self
            .cold
            .iter()
            .map(|slot| match slot {
                ColdSlot::Resident(block) => block.byte_size(),
                ColdSlot::Spilled(block_id) => {
                    let store = self.store.as_ref().expect("spilled slot without store");
                    store.entry_len(*block_id)
                }
            })
            .sum();
        StorageStats {
            cold_blocks: self.cold.len(),
            hot_chunks: self.hot.len(),
            cold_rows: self
                .cold
                .iter()
                .map(|slot| self.cold_slot_tuples(slot).0)
                .sum(),
            hot_rows: self.hot.iter().map(|c| c.len()).sum(),
            cold_bytes,
            hot_bytes: self.hot.iter().map(|c| c.byte_size()).sum(),
            cold_bytes_uncompressed: self.cold_uncompressed_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use datablocks::{DataType, ScanOptions};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("grp", DataType::Str),
            ColumnDef::new("amount", DataType::Int),
        ])
        .with_primary_key("id")
    }

    fn filled_relation(rows: i64, chunk_capacity: usize) -> Relation {
        let mut rel = Relation::with_chunk_capacity("t", schema(), chunk_capacity);
        for i in 0..rows {
            rel.insert(vec![
                Value::Int(i),
                Value::Str(format!("g{}", i % 4)),
                Value::Int(i * 10),
            ]);
        }
        rel
    }

    #[test]
    fn insert_and_point_lookup_hot() {
        let rel = filled_relation(100, 1000);
        let id = rel.lookup_pk(42).expect("indexed lookup");
        assert_eq!(rel.get(id, 2), Value::Int(420));
        assert_eq!(rel.get_row(id)[1], Value::Str("g2".into()));
        assert_eq!(rel.row_count(), 100);
    }

    #[test]
    fn freeze_moves_rows_to_cold_and_lookups_still_work() {
        let mut rel = filled_relation(2_500, 1000);
        assert_eq!(rel.hot_chunks().len(), 3);
        rel.freeze_full_chunks();
        assert_eq!(rel.cold_block_count(), 2);
        assert_eq!(rel.hot_chunks().len(), 1);
        // indexed lookup finds rows in both cold and hot segments
        let cold_id = rel.lookup_pk(500).unwrap();
        assert!(matches!(cold_id.segment, Segment::Cold(_)));
        assert_eq!(rel.get(cold_id, 2), Value::Int(5000));
        let hot_id = rel.lookup_pk(2_400).unwrap();
        assert!(matches!(hot_id.segment, Segment::Hot(_)));
        // non-indexed scan lookup agrees
        let scanned = rel.lookup_pk_scan(500, ScanOptions::default()).unwrap();
        assert_eq!(rel.get(scanned, 0), Value::Int(500));
    }

    #[test]
    fn freeze_all_includes_partial_tail() {
        let mut rel = filled_relation(1_500, 1000);
        rel.freeze_all();
        assert_eq!(rel.cold_block_count(), 2);
        assert!(rel.hot_chunks().is_empty());
        assert_eq!(rel.live_row_count(), 1_500);
    }

    #[test]
    fn delete_hides_record_from_lookup() {
        let mut rel = filled_relation(100, 50);
        rel.freeze_all();
        let id = rel.lookup_pk(10).unwrap();
        assert!(rel.delete(id));
        assert!(rel.is_deleted(id));
        assert!(rel.lookup_pk(10).is_none());
        assert!(rel.lookup_pk_scan(10, ScanOptions::default()).is_none());
        assert_eq!(rel.live_row_count(), 99);
    }

    #[test]
    fn update_cold_record_becomes_delete_plus_insert() {
        let mut rel = filled_relation(100, 50);
        rel.freeze_all();
        let old_id = rel.lookup_pk(7).unwrap();
        assert!(matches!(old_id.segment, Segment::Cold(_)));
        let new_id = rel.update(
            old_id,
            vec![Value::Int(7), Value::Str("updated".into()), Value::Int(777)],
        );
        assert!(matches!(new_id.segment, Segment::Hot(_)));
        assert!(rel.is_deleted(old_id));
        let found = rel.lookup_pk(7).unwrap();
        assert_eq!(found, new_id);
        assert_eq!(rel.get(found, 1), Value::Str("updated".into()));
        assert_eq!(rel.get(found, 2), Value::Int(777));
    }

    #[test]
    fn update_hot_record_in_place() {
        let mut rel = filled_relation(10, 100);
        let id = rel.lookup_pk(3).unwrap();
        let same = rel.update(
            id,
            vec![Value::Int(3), Value::Str("x".into()), Value::Int(-1)],
        );
        assert_eq!(id, same);
        assert_eq!(rel.get(id, 2), Value::Int(-1));
    }

    #[test]
    fn pk_index_can_be_dropped_and_rebuilt() {
        let mut rel = filled_relation(200, 64);
        rel.freeze_all();
        assert!(rel.has_pk_index());
        rel.drop_pk_index();
        assert!(!rel.has_pk_index());
        assert!(rel.lookup_pk(5).is_none());
        assert!(rel.lookup_pk_scan(5, ScanOptions::default()).is_some());
        rel.build_pk_index();
        assert!(rel.lookup_pk(5).is_some());
    }

    #[test]
    fn storage_stats_report_compression() {
        let mut rel = filled_relation(5_000, 1000);
        rel.freeze_all();
        let stats = rel.storage_stats();
        assert_eq!(stats.cold_blocks, 5);
        assert_eq!(stats.cold_rows, 5_000);
        assert_eq!(stats.hot_rows, 0);
        assert!(
            stats.compression_ratio() > 1.5,
            "ratio {}",
            stats.compression_ratio()
        );
        assert!(stats.total_bytes() > 0);
    }

    #[test]
    fn layout_combinations_counted() {
        let mut rel = filled_relation(3_000, 1000);
        rel.freeze_all();
        assert!(rel.layout_combinations() >= 1);
    }

    #[test]
    fn tombstones_survive_freezing() {
        let mut rel = filled_relation(100, 100);
        let id = rel.lookup_pk(55).unwrap();
        rel.delete(id);
        rel.freeze_all();
        assert!(rel.lookup_pk(55).is_none());
        assert_eq!(rel.live_row_count(), 99);
    }

    #[test]
    fn enable_spill_moves_existing_and_future_blocks_to_disk() {
        let mut rel = filled_relation(2_500, 1000);
        rel.freeze_full_chunks(); // 2 resident blocks + hot tail
        assert!(!rel.has_spill());
        rel.enable_spill(&SpillPolicy::with_cache_capacity(usize::MAX))
            .unwrap();
        assert!(rel.has_spill());
        let store = rel.spill_store().unwrap().clone();
        assert_eq!(store.block_count(), 2, "existing blocks written out");
        // subsequent freezes spill instead of retaining
        for i in 2_500..4_000 {
            rel.insert(vec![
                Value::Int(i),
                Value::Str(format!("g{}", i % 4)),
                Value::Int(i * 10),
            ]);
        }
        rel.freeze_all();
        assert_eq!(store.block_count(), rel.cold_block_count());
        // everything still readable after dropping the cache (true cold reads)
        store.clear_cache();
        let id = rel.lookup_pk(3_999).unwrap();
        assert_eq!(rel.get(id, 2), Value::Int(39_990));
        assert!(store.stats().block_reads > 0);
    }

    #[test]
    fn enable_spill_twice_is_rejected() {
        let mut rel = filled_relation(100, 100);
        rel.enable_spill(&SpillPolicy::default()).unwrap();
        let err = rel.enable_spill(&SpillPolicy::default()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    }

    fn spill_path(tag: &str) -> std::path::PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "datablocks-relation-{tag}-{}-{}.dbs",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ))
    }

    fn named_policy(path: std::path::PathBuf) -> SpillPolicy {
        SpillPolicy {
            cache_capacity_bytes: usize::MAX,
            path: Some(path),
            ..SpillPolicy::default()
        }
    }

    fn remove_spill_files(path: &std::path::Path) {
        BlockStore::remove_files(path).expect("remove spill files");
    }

    #[test]
    fn reopen_spilled_round_trips_cold_tier_and_tombstones() {
        let path = spill_path("reopen");
        let policy = named_policy(path.clone());
        {
            let mut rel = filled_relation(1_000, 250);
            rel.freeze_all();
            rel.enable_spill(&policy).unwrap();
            let id = rel.lookup_pk(123).unwrap();
            assert!(rel.delete(id));
        } // drop closes the store (manifest checkpoint)
        let reopened = Relation::reopen_spilled("t", schema(), &policy).unwrap();
        assert_eq!(reopened.cold_block_count(), 4);
        assert_eq!(reopened.row_count(), 1_000);
        assert_eq!(reopened.live_row_count(), 999, "tombstone survived reopen");
        assert!(reopened.lookup_pk(123).is_none());
        let id = reopened.lookup_pk(456).unwrap();
        assert_eq!(reopened.get(id, 2), Value::Int(4_560));
        // the reopened relation keeps working as a normal spilling relation
        let mut reopened = reopened;
        for i in 1_000..1_300 {
            reopened.insert(vec![
                Value::Int(i),
                Value::Str(format!("g{}", i % 4)),
                Value::Int(i * 10),
            ]);
        }
        reopened.freeze_all();
        assert_eq!(reopened.live_row_count(), 1_299);
        assert!(reopened.spill_store().unwrap().block_count() > 4);
        drop(reopened);
        remove_spill_files(&path);
    }

    #[test]
    fn reopen_spilled_of_live_store_fails_loudly() {
        let path = spill_path("live");
        let policy = named_policy(path.clone());
        let mut rel = filled_relation(200, 100);
        rel.freeze_all();
        rel.enable_spill(&policy).unwrap();
        // same loud error as enable_spill reconfiguration: AlreadyExists
        let err = Relation::reopen_spilled("t", schema(), &policy).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
        drop(rel);
        let reopened = Relation::reopen_spilled("t", schema(), &policy).unwrap();
        assert_eq!(reopened.live_row_count(), 200);
        drop(reopened);
        remove_spill_files(&path);
    }

    #[test]
    fn reopen_spilled_requires_a_path() {
        let err = Relation::reopen_spilled("t", schema(), &SpillPolicy::default()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn spilled_delete_is_durable_across_cache_drops() {
        let mut rel = filled_relation(200, 100);
        rel.freeze_all();
        rel.enable_spill(&SpillPolicy::with_cache_capacity(1))
            .unwrap();
        let id = rel.lookup_pk(42).unwrap();
        assert!(rel.delete(id));
        assert!(!rel.delete(id), "double delete reports false");
        rel.spill_store().unwrap().clear_cache();
        assert!(rel.is_deleted(id));
        assert!(rel.lookup_pk(42).is_none());
        assert_eq!(rel.live_row_count(), 199);
    }

    #[test]
    fn spilled_stats_report_on_disk_bytes_without_io() {
        let mut rel = filled_relation(3_000, 1000);
        rel.freeze_all();
        let resident_stats = rel.storage_stats();
        rel.enable_spill(&SpillPolicy::with_cache_capacity(0))
            .unwrap();
        let store = rel.spill_store().unwrap().clone();
        store.clear_cache();
        store.reset_stats();
        let spilled_stats = rel.storage_stats();
        assert_eq!(spilled_stats.cold_blocks, resident_stats.cold_blocks);
        assert_eq!(spilled_stats.cold_rows, resident_stats.cold_rows);
        assert!(spilled_stats.cold_bytes > 0);
        assert_eq!(rel.row_count(), 3_000);
        assert_eq!(rel.live_row_count(), 3_000);
        // counts and sizes came from the directory, not the payloads
        assert_eq!(store.stats().block_reads, 0);
    }

    #[test]
    fn clones_share_the_spill_store() {
        let mut rel = filled_relation(1_000, 500);
        rel.freeze_all();
        rel.enable_spill(&SpillPolicy::default()).unwrap();
        let clone = rel.clone();
        assert!(Arc::ptr_eq(
            rel.spill_store().unwrap(),
            clone.spill_store().unwrap()
        ));
        let id = clone.lookup_pk(123).unwrap();
        assert_eq!(clone.get(id, 2), Value::Int(1_230));
    }

    #[test]
    fn sorted_freeze_orders_block_contents() {
        let mut rel = Relation::with_chunk_capacity("t", schema(), 1000);
        for i in (0..1000i64).rev() {
            rel.insert(vec![Value::Int(i), Value::Str("g".into()), Value::Int(i)]);
        }
        rel.freeze_all_sorted_by(0);
        let block = rel.cold_block(0);
        assert_eq!(block.get(0, 0), Value::Int(0));
        assert_eq!(block.get(999, 0), Value::Int(999));
        // index still finds the right record after the permutation
        let id = rel.lookup_pk(123).unwrap();
        assert_eq!(rel.get(id, 2), Value::Int(123));
    }
}
