//! A minimal catalog: a named collection of relations.

use std::collections::BTreeMap;

use crate::relation::Relation;
use crate::schema::Schema;

/// An in-memory database: a set of named relations sharing no state beyond the
/// catalog itself. This is the object the workload loaders populate and the query
/// layer executes against.
#[derive(Debug, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create a new empty relation and return a mutable reference to it.
    ///
    /// # Panics
    ///
    /// Panics if a relation with the same name already exists.
    pub fn create_relation(&mut self, name: &str, schema: Schema) -> &mut Relation {
        assert!(
            !self.relations.contains_key(name),
            "relation {name:?} already exists"
        );
        self.relations
            .insert(name.to_string(), Relation::new(name, schema));
        self.relations.get_mut(name).expect("just inserted")
    }

    /// Register an already-populated relation (used by bulk loaders).
    pub fn add_relation(&mut self, relation: Relation) {
        assert!(
            !self.relations.contains_key(relation.name()),
            "relation {:?} already exists",
            relation.name()
        );
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Borrow a relation by name.
    pub fn relation(&self, name: &str) -> &Relation {
        self.relations
            .get(name)
            .unwrap_or_else(|| panic!("unknown relation {name:?}"))
    }

    /// Borrow a relation mutably by name.
    pub fn relation_mut(&mut self, name: &str) -> &mut Relation {
        self.relations
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown relation {name:?}"))
    }

    /// Does a relation with this name exist?
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(|s| s.as_str()).collect()
    }

    /// All relations.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Freeze every relation's cold data (all chunks) into Data Blocks.
    pub fn freeze_all(&mut self) {
        for relation in self.relations.values_mut() {
            relation.freeze_all();
        }
    }

    /// Total bytes used across all relations.
    pub fn total_bytes(&self) -> usize {
        self.relations
            .values()
            .map(|r| r.storage_stats().total_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use datablocks::{DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::new("id", DataType::Int)]).with_primary_key("id")
    }

    #[test]
    fn create_and_lookup_relations() {
        let mut db = Database::new();
        db.create_relation("a", schema());
        db.create_relation("b", schema());
        assert!(db.contains("a"));
        assert!(!db.contains("c"));
        assert_eq!(db.relation_names(), vec!["a", "b"]);
        db.relation_mut("a").insert(vec![Value::Int(1)]);
        assert_eq!(db.relation("a").row_count(), 1);
        assert_eq!(db.relations().count(), 2);
    }

    #[test]
    fn freeze_all_relations() {
        let mut db = Database::new();
        db.create_relation("a", schema());
        for i in 0..100 {
            db.relation_mut("a").insert(vec![Value::Int(i)]);
        }
        db.freeze_all();
        assert_eq!(db.relation("a").cold_blocks().len(), 1);
        assert!(db.total_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_relation_rejected() {
        let mut db = Database::new();
        db.create_relation("a", schema());
        db.create_relation("a", schema());
    }

    #[test]
    #[should_panic(expected = "unknown relation")]
    fn unknown_relation_panics() {
        Database::new().relation("ghost");
    }
}
