//! A minimal catalog: a named collection of relations, with an optional
//! database-wide spill policy.

use std::collections::BTreeMap;

use crate::blockstore::SpillPolicy;
use crate::relation::Relation;
use crate::schema::Schema;

/// A database: a set of named relations sharing no state beyond the catalog itself.
/// This is the object the workload loaders populate and the query layer executes
/// against. A spill policy set via [`Database::enable_spill`] applies to every
/// current and future relation, turning the catalog into a larger-than-memory
/// store.
#[derive(Debug, Default)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
    spill: Option<SpillPolicy>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Spill every relation's frozen blocks to secondary storage under `policy`.
    /// Each relation gets its own store file: `policy.path` of `Some(dir)` places
    /// one `<relation>.dbs` per relation in that directory, `None` uses per-store
    /// temporary files (deleted on drop). Relations created or added later inherit
    /// the policy.
    ///
    /// Like [`Relation::enable_spill`], reconfiguration is not supported: once the
    /// database policy is set, a second call fails with
    /// [`std::io::ErrorKind::AlreadyExists`]. Relations that already spill (enabled
    /// individually, or by a previous call that failed partway) are left on their
    /// existing stores and skipped, so a failed call — some relations converted,
    /// `spill_policy()` still unset — can simply be retried once the underlying
    /// problem (e.g. directory permissions) is fixed.
    pub fn enable_spill(&mut self, policy: SpillPolicy) -> std::io::Result<()> {
        if self.spill.is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "database spill policy already set; reconfiguration is not supported",
            ));
        }
        for relation in self.relations.values_mut() {
            if relation.has_spill() {
                continue;
            }
            relation.enable_spill(&Database::per_relation(&policy, relation.name()))?;
        }
        self.spill = Some(policy);
        Ok(())
    }

    /// Reopen a spilled database from the directory a previous
    /// [`Database::enable_spill`] wrote to: for every `(name, schema)` pair, the
    /// relation's cold tier is rebuilt from `<dir>/<name>.dbs` by replaying that
    /// store's persisted manifest ([`crate::Relation::reopen_spilled`]); names
    /// without a spill file come back as empty relations attached to fresh
    /// stores. Schemas are supplied by the caller — the store persists block
    /// frames and the directory, not catalog metadata.
    ///
    /// `policy.path` must be `Some(dir)`. Hot (unfrozen) rows are not recovered;
    /// see [`crate::Relation::reopen_spilled`] for the exact contract and error
    /// conditions (including the loud [`std::io::ErrorKind::AlreadyExists`] when
    /// a store is still live in this process).
    pub fn open_spilled(
        policy: SpillPolicy,
        schemas: impl IntoIterator<Item = (String, Schema)>,
    ) -> std::io::Result<Database> {
        if policy.path.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "Database::open_spilled requires SpillPolicy.path to name the spill directory",
            ));
        }
        let mut db = Database::new();
        for (name, schema) in schemas {
            let per_relation = Database::per_relation(&policy, &name);
            let spill_file = per_relation.path.as_ref().expect("path checked above");
            let relation = if spill_file.exists() {
                Relation::reopen_spilled(&name, schema, &per_relation)?
            } else {
                let mut relation = Relation::new(&name, schema);
                relation.enable_spill(&per_relation)?;
                relation
            };
            db.relations.insert(name, relation);
        }
        db.spill = Some(policy);
        Ok(db)
    }

    /// The database-wide spill policy, if one was set.
    pub fn spill_policy(&self) -> Option<&SpillPolicy> {
        self.spill.as_ref()
    }

    fn per_relation(policy: &SpillPolicy, name: &str) -> SpillPolicy {
        SpillPolicy {
            cache_capacity_bytes: policy.cache_capacity_bytes,
            path: policy
                .path
                .as_ref()
                .map(|dir| dir.join(format!("{name}.dbs"))),
            compaction_garbage_ratio: policy.compaction_garbage_ratio,
            durability: policy.durability,
        }
    }

    /// Create a new empty relation and return a mutable reference to it. Inherits
    /// the database spill policy, if one is set.
    ///
    /// # Panics
    ///
    /// Panics if a relation with the same name already exists, or if attaching the
    /// inherited spill store fails.
    pub fn create_relation(&mut self, name: &str, schema: Schema) -> &mut Relation {
        assert!(
            !self.relations.contains_key(name),
            "relation {name:?} already exists"
        );
        self.relations
            .insert(name.to_string(), Relation::new(name, schema));
        let relation = self.relations.get_mut(name).expect("just inserted");
        if let Some(policy) = &self.spill {
            relation
                .enable_spill(&Database::per_relation(policy, name))
                .expect("attach spill store");
        }
        relation
    }

    /// Register an already-populated relation (used by bulk loaders). Inherits the
    /// database spill policy if the relation does not already spill.
    ///
    /// # Panics
    ///
    /// Panics if a relation with the same name already exists, or if attaching the
    /// inherited spill store fails.
    pub fn add_relation(&mut self, mut relation: Relation) {
        assert!(
            !self.relations.contains_key(relation.name()),
            "relation {:?} already exists",
            relation.name()
        );
        if let (Some(policy), false) = (&self.spill, relation.has_spill()) {
            relation
                .enable_spill(&Database::per_relation(policy, relation.name()))
                .expect("attach spill store");
        }
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Borrow a relation by name.
    pub fn relation(&self, name: &str) -> &Relation {
        self.relations
            .get(name)
            .unwrap_or_else(|| panic!("unknown relation {name:?}"))
    }

    /// Borrow a relation mutably by name.
    pub fn relation_mut(&mut self, name: &str) -> &mut Relation {
        self.relations
            .get_mut(name)
            .unwrap_or_else(|| panic!("unknown relation {name:?}"))
    }

    /// Does a relation with this name exist?
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Names of all relations, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(|s| s.as_str()).collect()
    }

    /// All relations.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Freeze every relation's cold data (all chunks) into Data Blocks.
    pub fn freeze_all(&mut self) {
        for relation in self.relations.values_mut() {
            relation.freeze_all();
        }
    }

    /// Total bytes used across all relations.
    pub fn total_bytes(&self) -> usize {
        self.relations
            .values()
            .map(|r| r.storage_stats().total_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use datablocks::{DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::new("id", DataType::Int)]).with_primary_key("id")
    }

    #[test]
    fn create_and_lookup_relations() {
        let mut db = Database::new();
        db.create_relation("a", schema());
        db.create_relation("b", schema());
        assert!(db.contains("a"));
        assert!(!db.contains("c"));
        assert_eq!(db.relation_names(), vec!["a", "b"]);
        db.relation_mut("a").insert(vec![Value::Int(1)]);
        assert_eq!(db.relation("a").row_count(), 1);
        assert_eq!(db.relations().count(), 2);
    }

    #[test]
    fn freeze_all_relations() {
        let mut db = Database::new();
        db.create_relation("a", schema());
        for i in 0..100 {
            db.relation_mut("a").insert(vec![Value::Int(i)]);
        }
        db.freeze_all();
        assert_eq!(db.relation("a").cold_block_count(), 1);
        assert!(db.total_bytes() > 0);
    }

    #[test]
    fn spill_policy_applies_to_existing_and_future_relations() {
        let mut db = Database::new();
        db.create_relation("a", schema());
        for i in 0..100 {
            db.relation_mut("a").insert(vec![Value::Int(i)]);
        }
        db.enable_spill(crate::blockstore::SpillPolicy::with_cache_capacity(1 << 20))
            .unwrap();
        assert!(db.spill_policy().is_some());
        assert!(db.relation("a").has_spill());
        // a relation created after the policy inherits it
        db.create_relation("b", schema());
        assert!(db.relation("b").has_spill());
        // frozen blocks land in each relation's own store
        db.freeze_all();
        assert_eq!(db.relation("a").spill_store().unwrap().block_count(), 1);
        assert_eq!(db.relation("a").cold_block_count(), 1);
        assert!(db.total_bytes() > 0);
    }

    #[test]
    fn enable_spill_twice_is_rejected() {
        let mut db = Database::new();
        db.create_relation("a", schema());
        db.enable_spill(SpillPolicy::default()).unwrap();
        // reconfiguration fails loudly, exactly like Relation::enable_spill
        let err = db.enable_spill(SpillPolicy::default()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    }

    #[test]
    fn open_spilled_round_trips_a_database_directory() {
        let dir = std::env::temp_dir().join(format!(
            "datablocks-db-reopen-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let policy = SpillPolicy {
            cache_capacity_bytes: usize::MAX,
            path: Some(dir.clone()),
            ..SpillPolicy::default()
        };
        {
            let mut db = Database::new();
            db.create_relation("a", schema());
            for i in 0..300 {
                db.relation_mut("a").insert(vec![Value::Int(i)]);
            }
            db.enable_spill(policy.clone()).unwrap();
            db.freeze_all();
            let id = db.relation("a").lookup_pk(42).unwrap();
            db.relation_mut("a").delete(id);
        } // drop closes every store
        let schemas = vec![("a".to_string(), schema()), ("b".to_string(), schema())];
        let db = Database::open_spilled(policy, schemas).unwrap();
        assert!(db.spill_policy().is_some());
        let a = db.relation("a");
        assert_eq!(a.live_row_count(), 299, "tombstone survived reopen");
        assert!(a.lookup_pk(42).is_none());
        assert!(a.lookup_pk(7).is_some());
        // "b" had no spill file: it comes back empty but spilling
        let b = db.relation("b");
        assert_eq!(b.row_count(), 0);
        assert!(b.has_spill());
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_relation_rejected() {
        let mut db = Database::new();
        db.create_relation("a", schema());
        db.create_relation("a", schema());
    }

    #[test]
    #[should_panic(expected = "unknown relation")]
    fn unknown_relation_panics() {
        Database::new().relation("ghost");
    }
}
