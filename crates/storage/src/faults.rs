//! Deterministic fault injection for the block store's I/O layer.
//!
//! [`StoreFile`] wraps the positional file I/O the store performs
//! (`read_exact_at` / `write_all_at` / `sync_data`) and tags every call with a
//! **failpoint site** — a static string naming the logical operation the store
//! is doing (`"gen.append_write"`, `"manifest.sync"`, ...; the full list lives
//! in [`crate::blockstore`]'s module docs). An optional [`FaultInjector`],
//! shared by all of one store's files, can be armed to misbehave at any site:
//!
//! * [`FaultAction::Transient`] — fail the next N hits with
//!   [`std::io::ErrorKind::Interrupted`], then behave normally. Models
//!   EINTR-style blips; the store's bounded retry is expected to absorb them.
//! * [`FaultAction::Torn`] — write only the first `keep` bytes of the payload,
//!   then enter crash-stop. Models power loss in the middle of a `pwrite`.
//! * [`FaultAction::Crash`] — skip the operation entirely and enter
//!   crash-stop. Models power loss immediately before the operation.
//!
//! **Crash-stop is sticky**: once entered, every later I/O through the
//! injector fails, so nothing "after the power cut" can reach the disk —
//! including the store's own best-effort drop-time checkpoint. Reopening the
//! path with a fresh store (and no injector, or a fresh one) is the simulated
//! reboot.
//!
//! The injector records the ordered set of distinct sites it has seen, so the
//! crash-point matrix test (`tests/fault_injection.rs`) can *discover* every
//! failpoint from a passive run and then enumerate a crash at each one. All
//! injection decisions are deterministic; the seed only drives the helper RNG
//! ([`FaultInjector::next_u64`]) tests use to derive torn-write cut points and
//! fuzz corruptions.

use std::collections::HashMap;
use std::fs::File;
use std::io;
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// What an armed failpoint does when its site is next hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the next `times` hits with [`std::io::ErrorKind::Interrupted`],
    /// then succeed. The store's bounded retry turns a short burst into a
    /// counted, invisible recovery; a long burst surfaces as an error.
    Transient {
        /// How many consecutive hits fail before the site heals.
        times: u32,
    },
    /// On the next *write* at this site, persist only the first `keep` bytes
    /// of the payload, then enter crash-stop (the write itself reports
    /// failure — a real power cut never returns to the caller). On non-write
    /// operations this degrades to [`FaultAction::Crash`].
    Torn {
        /// Prefix length actually written; clamped to the payload length.
        keep: usize,
    },
    /// Skip the operation and enter crash-stop: this and every later I/O
    /// through the injector fails.
    Crash,
}

/// Outcome of consulting the injector at a site (internal).
enum Check {
    /// No fault armed: perform the real operation.
    Proceed,
    /// Write this prefix length, then fail (crash-stop already entered).
    Torn(usize),
    /// Fail with this error without touching the file.
    Fail(io::Error),
}

/// A seeded, deterministic fault plan shared by all files of one store.
///
/// Construct with [`FaultInjector::new`], pass to
/// [`crate::BlockStore::create_opts`] / [`crate::BlockStore::reopen_opts`],
/// and arm sites with [`FaultInjector::arm`]. See the module docs for
/// semantics.
#[derive(Debug)]
pub struct FaultInjector {
    rng: Mutex<u64>,
    crashed: AtomicBool,
    plans: Mutex<HashMap<&'static str, FaultAction>>,
    sites: Mutex<Vec<&'static str>>,
}

impl FaultInjector {
    /// A fresh injector with nothing armed. `seed` drives only the helper RNG.
    pub fn new(seed: u64) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            rng: Mutex::new(seed | 1),
            crashed: AtomicBool::new(false),
            plans: Mutex::new(HashMap::new()),
            sites: Mutex::new(Vec::new()),
        })
    }

    /// Arm `site` with `action`, replacing any previous plan for that site.
    pub fn arm(&self, site: &'static str, action: FaultAction) {
        self.plans
            .lock()
            .expect("fault plan lock poisoned")
            .insert(site, action);
    }

    /// Has the injector entered crash-stop (torn write performed or crash
    /// triggered)? After this, every I/O through the injector fails.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Ordered distinct failpoint sites this injector has seen so far — the
    /// crash-point matrix test discovers the failpoint inventory from this.
    pub fn sites_hit(&self) -> Vec<&'static str> {
        self.sites.lock().expect("fault site lock poisoned").clone()
    }

    /// Deterministic xorshift64* step — the only use of the seed. Tests use it
    /// to derive torn-write cut points and fuzz corruption offsets.
    pub fn next_u64(&self) -> u64 {
        let mut state = self.rng.lock().expect("fault rng lock poisoned");
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn crash_error(site: &'static str) -> io::Error {
        io::Error::other(format!("fault injection: crash-stop (at failpoint {site})"))
    }

    /// Consult the plan at `site`, recording the hit.
    fn check(&self, site: &'static str) -> Check {
        {
            let mut sites = self.sites.lock().expect("fault site lock poisoned");
            if !sites.contains(&site) {
                sites.push(site);
            }
        }
        if self.crashed() {
            return Check::Fail(FaultInjector::crash_error(site));
        }
        let mut plans = self.plans.lock().expect("fault plan lock poisoned");
        match plans.get_mut(site) {
            None => Check::Proceed,
            Some(FaultAction::Transient { times }) => {
                if *times > 1 {
                    *times -= 1;
                } else {
                    plans.remove(site);
                }
                Check::Fail(io::Error::new(
                    io::ErrorKind::Interrupted,
                    format!("fault injection: transient error (at failpoint {site})"),
                ))
            }
            Some(FaultAction::Torn { keep }) => {
                let keep = *keep;
                self.crashed.store(true, Ordering::SeqCst);
                Check::Torn(keep)
            }
            Some(FaultAction::Crash) => {
                self.crashed.store(true, Ordering::SeqCst);
                Check::Fail(FaultInjector::crash_error(site))
            }
        }
    }
}

/// Consult an optional injector at a site that is not a file operation (e.g.
/// the checkpoint's `rename`). `Torn` degrades to `Crash` here.
pub(crate) fn failpoint(faults: &Option<Arc<FaultInjector>>, site: &'static str) -> io::Result<()> {
    let Some(injector) = faults else {
        return Ok(());
    };
    match injector.check(site) {
        Check::Proceed => Ok(()),
        Check::Torn(_) => Err(FaultInjector::crash_error(site)),
        Check::Fail(err) => Err(err),
    }
}

/// A positional-I/O file handle with named failpoints: the unit every
/// generation file and the manifest go through inside
/// [`crate::BlockStore`]. Without an injector attached it is a zero-cost
/// veneer over [`std::os::unix::fs::FileExt`].
#[derive(Debug, Clone)]
pub struct StoreFile {
    pub(crate) file: Arc<File>,
    faults: Option<Arc<FaultInjector>>,
}

impl StoreFile {
    /// Wrap `file`, routing every call through `faults` when present.
    pub fn new(file: File, faults: Option<Arc<FaultInjector>>) -> StoreFile {
        StoreFile {
            file: Arc::new(file),
            faults,
        }
    }

    /// The wrapped file, bypassing injection — an escape hatch for tests that
    /// need to corrupt bytes behind the store's back.
    pub fn raw(&self) -> &File {
        &self.file
    }

    fn check(&self, site: &'static str) -> Check {
        match &self.faults {
            None => Check::Proceed,
            Some(injector) => injector.check(site),
        }
    }

    /// `read_exact_at` through the failpoint at `site`.
    pub fn read_exact_at(&self, buf: &mut [u8], offset: u64, site: &'static str) -> io::Result<()> {
        match self.check(site) {
            Check::Proceed => self.file.read_exact_at(buf, offset),
            Check::Torn(_) => Err(FaultInjector::crash_error(site)),
            Check::Fail(err) => Err(err),
        }
    }

    /// `write_all_at` through the failpoint at `site`. A [`FaultAction::Torn`]
    /// plan persists only the armed prefix and reports failure.
    pub fn write_all_at(&self, buf: &[u8], offset: u64, site: &'static str) -> io::Result<()> {
        match self.check(site) {
            Check::Proceed => self.file.write_all_at(buf, offset),
            Check::Torn(keep) => {
                let keep = keep.min(buf.len());
                // The torn prefix really reaches the file — that is the point.
                self.file.write_all_at(&buf[..keep], offset)?;
                Err(FaultInjector::crash_error(site))
            }
            Check::Fail(err) => Err(err),
        }
    }

    /// `sync_data` through the failpoint at `site`.
    pub fn sync_data(&self, site: &'static str) -> io::Result<()> {
        match self.check(site) {
            Check::Proceed => self.file.sync_data(),
            Check::Torn(_) => Err(FaultInjector::crash_error(site)),
            Check::Fail(err) => Err(err),
        }
    }

    /// `sync_all` through the failpoint at `site` (used for the
    /// parent-directory fsync of the checkpoint commit point).
    pub fn sync_all(&self, site: &'static str) -> io::Result<()> {
        match self.check(site) {
            Check::Proceed => self.file.sync_all(),
            Check::Torn(_) => Err(FaultInjector::crash_error(site)),
            Check::Fail(err) => Err(err),
        }
    }

    /// `set_len` through the failpoint at `site`.
    pub fn set_len(&self, len: u64, site: &'static str) -> io::Result<()> {
        match self.check(site) {
            Check::Proceed => self.file.set_len(len),
            Check::Torn(_) => Err(FaultInjector::crash_error(site)),
            Check::Fail(err) => Err(err),
        }
    }

    /// `metadata` of the wrapped file (no failpoint: metadata reads are not an
    /// interesting crash surface).
    pub fn metadata(&self) -> io::Result<std::fs::Metadata> {
        self.file.metadata()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file() -> File {
        tempfile_in(std::env::temp_dir())
    }

    fn tempfile_in(dir: std::path::PathBuf) -> File {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = dir.join(format!(
            "faults-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .expect("create temp file");
        std::fs::remove_file(&path).expect("unlink temp file");
        file
    }

    #[test]
    fn unarmed_injector_passes_io_through_and_records_sites() {
        let injector = FaultInjector::new(7);
        let file = StoreFile::new(temp_file(), Some(Arc::clone(&injector)));
        file.write_all_at(b"hello", 0, "site.a").unwrap();
        let mut buf = [0u8; 5];
        file.read_exact_at(&mut buf, 0, "site.b").unwrap();
        assert_eq!(&buf, b"hello");
        file.sync_data("site.a").unwrap();
        assert_eq!(injector.sites_hit(), vec!["site.a", "site.b"]);
        assert!(!injector.crashed());
    }

    #[test]
    fn transient_fault_heals_after_armed_count() {
        let injector = FaultInjector::new(7);
        injector.arm("w", FaultAction::Transient { times: 2 });
        let file = StoreFile::new(temp_file(), Some(Arc::clone(&injector)));
        for _ in 0..2 {
            let err = file.write_all_at(b"x", 0, "w").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        }
        file.write_all_at(b"x", 0, "w").unwrap();
        assert!(!injector.crashed());
    }

    #[test]
    fn torn_write_persists_prefix_then_crash_stops() {
        let injector = FaultInjector::new(7);
        injector.arm("w", FaultAction::Torn { keep: 3 });
        let file = StoreFile::new(temp_file(), Some(Arc::clone(&injector)));
        assert!(file.write_all_at(b"abcdef", 0, "w").is_err());
        assert!(injector.crashed());
        // the prefix reached the file ...
        let mut buf = [0u8; 3];
        file.raw().read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"abc");
        // ... and everything afterwards fails, any site
        assert!(file.read_exact_at(&mut buf, 0, "other").is_err());
        assert!(file.sync_data("w").is_err());
    }

    #[test]
    fn crash_action_skips_the_operation() {
        let injector = FaultInjector::new(7);
        injector.arm("w", FaultAction::Crash);
        let file = StoreFile::new(temp_file(), Some(Arc::clone(&injector)));
        assert!(file.write_all_at(b"abc", 0, "w").is_err());
        assert_eq!(file.metadata().unwrap().len(), 0, "write never happened");
        assert!(injector.crashed());
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = FaultInjector::new(42);
        let b = FaultInjector::new(42);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], xs[1]);
    }
}
