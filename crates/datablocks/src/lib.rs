//! # datablocks — compressed, byte-addressable columnar blocks for hybrid OLTP & OLAP
//!
//! This crate is the core contribution of the reproduced paper, *"Data Blocks: Hybrid
//! OLTP and OLAP on Compressed Storage using both Vectorization and Compilation"*
//! (SIGMOD 2016): a storage format for **cold** relation chunks that
//!
//! * compresses each attribute of each chunk with the light-weight, byte-addressable
//!   scheme that is optimal for that attribute's value distribution in that chunk
//!   (single value, order-preserving dictionary, or Frame-of-Reference truncation),
//! * keeps **point accesses O(1)** so OLTP transactions can still touch frozen
//!   records cheaply,
//! * attaches **SMAs** (min/max) to skip entire blocks and **Positional SMAs** — a
//!   concise lookup table mapping value deltas to position ranges — to narrow the
//!   scan range inside a block, and
//! * evaluates SARGable predicates **directly on the compressed code words** with the
//!   SIMD kernels of the [`dbsimd`] crate, producing match-position vectors that are
//!   then unpacked and pushed into the consuming query pipeline.
//!
//! ## Quick tour
//!
//! ```
//! use datablocks::{
//!     builder::{freeze, int_column, str_column},
//!     scan::{scan_collect, Restriction, ScanOptions},
//!     Value,
//! };
//!
//! // A cold chunk of a relation: two attributes, 10 000 records.
//! let quantity = int_column((0..10_000).map(|i| i % 50).collect());
//! let status = str_column((0..10_000).map(|i| format!("S{}", i % 3)).collect());
//!
//! // Freeze it into an immutable, compressed Data Block.
//! let block = freeze(&[quantity, status]);
//! assert!(block.byte_size() < 10_000 * (8 + 26));
//!
//! // Point access stays cheap on compressed data.
//! assert_eq!(block.get(4711, 0), Value::Int(4711 % 50));
//!
//! // SARGable predicates are evaluated on the compressed representation.
//! let matches = scan_collect(
//!     &block,
//!     &[Restriction::between(0, 10i64, 19i64), Restriction::eq(1, "S1")],
//!     ScanOptions::default(),
//! );
//! assert!(!matches.is_empty());
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod builder;
pub mod column;
pub mod compression;
pub mod frame;
pub mod layout;
pub mod psma;
pub mod scan;
pub mod sma;
pub mod unpack;
pub mod value;

pub use block::{BlockColumn, DataBlock, DEFAULT_BLOCK_CAPACITY};
pub use column::{Column, ColumnData};
pub use compression::{CodeVec, ColumnCompression, SchemeKind};
pub use frame::{BlockSummary, ColumnSummary, FrameError, FrameHeader, ManifestRecord};
pub use psma::{Psma, ScanRange};
pub use scan::{
    plan_scan, scan_collect, scan_collect_into, BlockScan, Restriction, ScanOptions, ScanPlan,
};
pub use sma::Sma;
pub use value::{date_to_days, days_to_date, DataType, Value};

// Re-export the predicate vocabulary so downstream crates only need one import path.
pub use dbsimd::{CmpOp, IsaLevel};
