//! Small Materialized Aggregates (SMA) — per-attribute min/max values used to rule
//! out whole Data Blocks during a scan (Section 3.2, after Moerkotte's SMAs).

use crate::column::Column;
use crate::value::{DataType, Value};
use dbsimd::CmpOp;

/// Min/max aggregate for one attribute of one Data Block.
///
/// `Untyped` covers the degenerate cases (empty block, or a column that is entirely
/// NULL) where no domain information exists; such an SMA can never rule a block out
/// for `IS NULL` restrictions but rules it out for every value restriction.
#[derive(Debug, Clone, PartialEq)]
pub enum Sma {
    /// Integer domain `[min, max]` of the non-NULL values.
    Int {
        /// Smallest non-NULL value.
        min: i64,
        /// Largest non-NULL value.
        max: i64,
    },
    /// Floating point domain `[min, max]` of the non-NULL values.
    Double {
        /// Smallest non-NULL value.
        min: f64,
        /// Largest non-NULL value.
        max: f64,
    },
    /// Lexicographic string domain `[min, max]` of the non-NULL values.
    Str {
        /// Lexicographically smallest non-NULL value.
        min: String,
        /// Lexicographically largest non-NULL value.
        max: String,
    },
    /// No non-NULL values exist.
    AllNull,
}

impl Sma {
    /// Compute the SMA of a column (hot representation) while freezing it.
    pub fn compute(column: &Column) -> Sma {
        let n = column.len();
        let mut any = false;
        match column.data_type() {
            DataType::Int => {
                let data = column.data.as_int().expect("int column");
                let (mut min, mut max) = (i64::MAX, i64::MIN);
                for (row, &v) in data.iter().enumerate().take(n) {
                    if column.is_null(row) {
                        continue;
                    }
                    any = true;
                    min = min.min(v);
                    max = max.max(v);
                }
                if any {
                    Sma::Int { min, max }
                } else {
                    Sma::AllNull
                }
            }
            DataType::Double => {
                let data = column.data.as_double().expect("double column");
                let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                for (row, &v) in data.iter().enumerate().take(n) {
                    if column.is_null(row) {
                        continue;
                    }
                    any = true;
                    min = min.min(v);
                    max = max.max(v);
                }
                if any {
                    Sma::Double { min, max }
                } else {
                    Sma::AllNull
                }
            }
            DataType::Str => {
                let data = column.data.as_str().expect("string column");
                let mut min: Option<&str> = None;
                let mut max: Option<&str> = None;
                for (row, value) in data.iter().enumerate().take(n) {
                    if column.is_null(row) {
                        continue;
                    }
                    let s = value.as_str();
                    min = Some(match min {
                        Some(m) if m <= s => m,
                        _ => s,
                    });
                    max = Some(match max {
                        Some(m) if m >= s => m,
                        _ => s,
                    });
                }
                match (min, max) {
                    (Some(mn), Some(mx)) => Sma::Str {
                        min: mn.to_string(),
                        max: mx.to_string(),
                    },
                    _ => Sma::AllNull,
                }
            }
        }
    }

    /// The minimum value as a [`Value`] (`Null` for an all-NULL column).
    pub fn min_value(&self) -> Value {
        match self {
            Sma::Int { min, .. } => Value::Int(*min),
            Sma::Double { min, .. } => Value::Double(*min),
            Sma::Str { min, .. } => Value::Str(min.clone()),
            Sma::AllNull => Value::Null,
        }
    }

    /// The maximum value as a [`Value`] (`Null` for an all-NULL column).
    pub fn max_value(&self) -> Value {
        match self {
            Sma::Int { max, .. } => Value::Int(*max),
            Sma::Double { max, .. } => Value::Double(*max),
            Sma::Str { max, .. } => Value::Str(max.clone()),
            Sma::AllNull => Value::Null,
        }
    }

    /// Can a comparison `attribute op constant` possibly be satisfied by any value in
    /// this block? `false` means the whole block can be skipped for this restriction.
    pub fn may_match_cmp(&self, op: CmpOp, constant: &Value) -> bool {
        let (min, max) = match self {
            Sma::AllNull => return false,
            _ => (self.min_value(), self.max_value()),
        };
        let cmp_min = min.sql_cmp(constant);
        let cmp_max = max.sql_cmp(constant);
        let (cmp_min, cmp_max) = match (cmp_min, cmp_max) {
            (Some(a), Some(b)) => (a, b),
            // Incomparable constant (type mismatch or NULL) can never match.
            _ => return false,
        };
        use std::cmp::Ordering::*;
        match op {
            CmpOp::Eq => cmp_min != Greater && cmp_max != Less,
            // `<>` can only be ruled out when every value equals the constant, which
            // requires min == max == constant.
            CmpOp::Ne => !(cmp_min == Equal && cmp_max == Equal),
            CmpOp::Lt => cmp_min == Less,
            CmpOp::Le => cmp_min != Greater,
            CmpOp::Gt => cmp_max == Greater,
            CmpOp::Ge => cmp_max != Less,
        }
    }

    /// Can a `BETWEEN lo AND hi` restriction possibly be satisfied?
    pub fn may_match_between(&self, lo: &Value, hi: &Value) -> bool {
        self.may_match_cmp(CmpOp::Ge, lo) && self.may_match_cmp(CmpOp::Le, hi)
    }

    /// Serialized size of the SMA in bytes (min + max), used by the layout module.
    pub fn serialized_size(&self) -> usize {
        match self {
            Sma::Int { .. } => 16,
            Sma::Double { .. } => 16,
            Sma::Str { min, max } => 8 + min.len() + max.len(),
            Sma::AllNull => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnData;

    fn int_column(values: &[i64]) -> Column {
        Column::from_data(ColumnData::Int(values.to_vec()))
    }

    #[test]
    fn compute_int_min_max() {
        let sma = Sma::compute(&int_column(&[5, -3, 12, 7]));
        assert_eq!(sma, Sma::Int { min: -3, max: 12 });
    }

    #[test]
    fn compute_ignores_nulls() {
        let mut col = Column::new(DataType::Int);
        col.push(Value::Null);
        col.push(Value::Int(10));
        col.push(Value::Null);
        col.push(Value::Int(4));
        assert_eq!(Sma::compute(&col), Sma::Int { min: 4, max: 10 });
    }

    #[test]
    fn compute_all_null() {
        let mut col = Column::new(DataType::Int);
        col.push(Value::Null);
        col.push(Value::Null);
        assert_eq!(Sma::compute(&col), Sma::AllNull);
        assert!(!Sma::AllNull.may_match_cmp(CmpOp::Eq, &Value::Int(0)));
    }

    #[test]
    fn compute_string_min_max() {
        let col = Column::from_data(ColumnData::Str(vec![
            "pear".into(),
            "apple".into(),
            "zebra".into(),
        ]));
        assert_eq!(
            Sma::compute(&col),
            Sma::Str {
                min: "apple".into(),
                max: "zebra".into()
            }
        );
    }

    #[test]
    fn compute_double_min_max() {
        let col = Column::from_data(ColumnData::Double(vec![2.5, -1.0, 7.25]));
        assert_eq!(
            Sma::compute(&col),
            Sma::Double {
                min: -1.0,
                max: 7.25
            }
        );
    }

    #[test]
    fn may_match_eq_inside_and_outside() {
        let sma = Sma::Int { min: 10, max: 20 };
        assert!(sma.may_match_cmp(CmpOp::Eq, &Value::Int(10)));
        assert!(sma.may_match_cmp(CmpOp::Eq, &Value::Int(15)));
        assert!(!sma.may_match_cmp(CmpOp::Eq, &Value::Int(9)));
        assert!(!sma.may_match_cmp(CmpOp::Eq, &Value::Int(21)));
    }

    #[test]
    fn may_match_inequalities() {
        let sma = Sma::Int { min: 10, max: 20 };
        assert!(!sma.may_match_cmp(CmpOp::Lt, &Value::Int(10)));
        assert!(sma.may_match_cmp(CmpOp::Lt, &Value::Int(11)));
        assert!(sma.may_match_cmp(CmpOp::Le, &Value::Int(10)));
        assert!(!sma.may_match_cmp(CmpOp::Gt, &Value::Int(20)));
        assert!(sma.may_match_cmp(CmpOp::Ge, &Value::Int(20)));
        assert!(!sma.may_match_cmp(CmpOp::Ge, &Value::Int(21)));
    }

    #[test]
    fn may_match_ne_only_ruled_out_for_constant_block() {
        let constant = Sma::Int { min: 5, max: 5 };
        assert!(!constant.may_match_cmp(CmpOp::Ne, &Value::Int(5)));
        assert!(constant.may_match_cmp(CmpOp::Ne, &Value::Int(6)));
        let varied = Sma::Int { min: 5, max: 9 };
        assert!(varied.may_match_cmp(CmpOp::Ne, &Value::Int(5)));
    }

    #[test]
    fn may_match_between() {
        let sma = Sma::Int { min: 100, max: 200 };
        assert!(sma.may_match_between(&Value::Int(150), &Value::Int(300)));
        assert!(sma.may_match_between(&Value::Int(0), &Value::Int(100)));
        assert!(!sma.may_match_between(&Value::Int(201), &Value::Int(300)));
        assert!(!sma.may_match_between(&Value::Int(0), &Value::Int(99)));
    }

    #[test]
    fn incomparable_constant_never_matches() {
        let sma = Sma::Int { min: 1, max: 2 };
        assert!(!sma.may_match_cmp(CmpOp::Eq, &Value::from("one")));
        assert!(!sma.may_match_cmp(CmpOp::Eq, &Value::Null));
    }

    #[test]
    fn string_sma_range_check() {
        let sma = Sma::Str {
            min: "HOUSEHOLD".into(),
            max: "MACHINERY".into(),
        };
        assert!(sma.may_match_cmp(CmpOp::Eq, &Value::from("MACHINERY")));
        assert!(!sma.may_match_cmp(CmpOp::Eq, &Value::from("AUTOMOBILE")));
    }
}
