//! Attribute compression schemes (Section 3.3).
//!
//! Data Blocks only use *light-weight, byte-addressable* schemes so that point
//! accesses stay O(1) and predicate evaluation can run directly on the compressed
//! code words with the integer SIMD kernels:
//!
//! * **single value** — all values of the attribute in the block are identical
//!   (including the all-NULL case); nothing but the value itself is stored.
//! * **ordered dictionary** — distinct values are stored sorted, rows store the
//!   dictionary code. Order preservation means range predicates translate to code
//!   ranges. Strings are always compressed this way.
//! * **truncation** — a Frame-of-Reference encoding with the block minimum as the
//!   reference: `code = value − min`, stored in the narrowest of 1-, 2-, 4- or
//!   8-byte unsigned integers.
//! * **uncompressed doubles** — floating-point attributes are never truncated; if
//!   they are not constant they are stored as-is.
//!
//! The scheme is chosen *per attribute, per block*, purely by resulting size.

use crate::column::Column;
use crate::value::{DataType, Value};
use dbsimd::{IsaLevel, RangePredicate};

/// A vector of unsigned code words in the narrowest sufficient byte width.
#[derive(Debug, Clone, PartialEq)]
pub enum CodeVec {
    /// 1-byte codes.
    U8(Vec<u8>),
    /// 2-byte codes.
    U16(Vec<u16>),
    /// 4-byte codes.
    U32(Vec<u32>),
    /// 8-byte codes.
    U64(Vec<u64>),
}

impl CodeVec {
    /// Encode `codes` using the narrowest width that can represent `max_code`.
    pub fn encode(codes: &[u64], max_code: u64) -> CodeVec {
        if max_code <= u8::MAX as u64 {
            CodeVec::U8(codes.iter().map(|&c| c as u8).collect())
        } else if max_code <= u16::MAX as u64 {
            CodeVec::U16(codes.iter().map(|&c| c as u16).collect())
        } else if max_code <= u32::MAX as u64 {
            CodeVec::U32(codes.iter().map(|&c| c as u32).collect())
        } else {
            CodeVec::U64(codes.to_vec())
        }
    }

    /// Number of code words.
    pub fn len(&self) -> usize {
        match self {
            CodeVec::U8(v) => v.len(),
            CodeVec::U16(v) => v.len(),
            CodeVec::U32(v) => v.len(),
            CodeVec::U64(v) => v.len(),
        }
    }

    /// True if the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Width of one code word in bytes (1, 2, 4 or 8).
    pub fn byte_width(&self) -> usize {
        match self {
            CodeVec::U8(_) => 1,
            CodeVec::U16(_) => 2,
            CodeVec::U32(_) => 4,
            CodeVec::U64(_) => 8,
        }
    }

    /// Total payload size in bytes.
    pub fn byte_size(&self) -> usize {
        self.len() * self.byte_width()
    }

    /// Read the code word at `row`.
    #[inline]
    pub fn get(&self, row: usize) -> u64 {
        match self {
            CodeVec::U8(v) => v[row] as u64,
            CodeVec::U16(v) => v[row] as u64,
            CodeVec::U32(v) => v[row] as u64,
            CodeVec::U64(v) => v[row],
        }
    }

    /// Find matches of the inclusive code range `[lo, hi]` within the position window
    /// `[from, to)`, appending *block-relative* positions to `out`.
    pub fn find_matches(
        &self,
        isa: IsaLevel,
        lo: u64,
        hi: u64,
        from: usize,
        to: usize,
        out: &mut Vec<u32>,
    ) -> usize {
        debug_assert!(from <= to && to <= self.len());
        match self {
            CodeVec::U8(v) => {
                let pred = clamp_pred::<u8>(lo, hi);
                dbsimd::find_matches(isa, &v[from..to], &pred, from as u32, out)
            }
            CodeVec::U16(v) => {
                let pred = clamp_pred::<u16>(lo, hi);
                dbsimd::find_matches(isa, &v[from..to], &pred, from as u32, out)
            }
            CodeVec::U32(v) => {
                let pred = clamp_pred::<u32>(lo, hi);
                dbsimd::find_matches(isa, &v[from..to], &pred, from as u32, out)
            }
            CodeVec::U64(v) => {
                let pred = RangePredicate::between(lo, hi);
                dbsimd::find_matches(isa, &v[from..to], &pred, from as u32, out)
            }
        }
    }

    /// Reduce an existing match vector of block-relative positions by the inclusive
    /// code range `[lo, hi]`.
    pub fn reduce_matches(&self, isa: IsaLevel, lo: u64, hi: u64, matches: &mut Vec<u32>) -> usize {
        match self {
            CodeVec::U8(v) => {
                let pred = clamp_pred::<u8>(lo, hi);
                dbsimd::reduce_matches(isa, v, &pred, 0, matches)
            }
            CodeVec::U16(v) => {
                let pred = clamp_pred::<u16>(lo, hi);
                dbsimd::reduce_matches(isa, v, &pred, 0, matches)
            }
            CodeVec::U32(v) => {
                let pred = clamp_pred::<u32>(lo, hi);
                dbsimd::reduce_matches(isa, v, &pred, 0, matches)
            }
            CodeVec::U64(v) => {
                let pred = RangePredicate::between(lo, hi);
                dbsimd::reduce_matches(isa, v, &pred, 0, matches)
            }
        }
    }
}

/// Clamp a `u64` inclusive code range to the narrower code-word domain `T`.
fn clamp_pred<T>(lo: u64, hi: u64) -> RangePredicate<T>
where
    T: dbsimd::ScanWord + TryFrom<u64>,
{
    let t_max = T::MAX_VALUE.as_u64();
    if lo > t_max {
        return RangePredicate::empty();
    }
    let lo_t = T::try_from(lo).unwrap_or(T::MAX_VALUE);
    let hi_t = T::try_from(hi.min(t_max)).unwrap_or(T::MAX_VALUE);
    RangePredicate::between(lo_t, hi_t)
}

/// Identifier of the compression scheme chosen for an attribute (part of a block's
/// "storage layout combination" — the thing that makes JIT code paths explode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchemeKind {
    /// All values identical.
    SingleValue,
    /// Frame-of-Reference truncation to `n`-byte codes.
    Truncated(u8),
    /// Ordered integer dictionary with `n`-byte codes.
    DictInt(u8),
    /// Ordered string dictionary with `n`-byte codes.
    DictStr(u8),
    /// Uncompressed 8-byte floating point.
    Double,
}

/// The compressed representation of one attribute in one Data Block.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnCompression {
    /// Every row holds the same value (possibly NULL).
    SingleValue(Value),
    /// Frame-of-Reference truncation: `value = min + code`.
    Truncated {
        /// The reference (block minimum over non-NULL values).
        min: i64,
        /// The per-row codes.
        codes: CodeVec,
    },
    /// Ordered dictionary over integers: `value = dict[code]`.
    DictInt {
        /// Sorted distinct values.
        dict: Vec<i64>,
        /// The per-row codes.
        codes: CodeVec,
    },
    /// Ordered dictionary over strings: `value = dict[code]`.
    DictStr {
        /// Sorted distinct values.
        dict: Vec<String>,
        /// The per-row codes.
        codes: CodeVec,
    },
    /// Uncompressed 8-byte floating point values.
    Double(Vec<f64>),
}

impl ColumnCompression {
    /// Compress one column, choosing the scheme with the smallest resulting size.
    ///
    /// NULL rows receive code 0; the block-level validity bitmap marks them.
    pub fn compress(column: &Column) -> ColumnCompression {
        let n = column.len();
        let null_count = column.null_count();
        if null_count == n {
            return ColumnCompression::SingleValue(Value::Null);
        }
        match column.data_type() {
            DataType::Int => Self::compress_int(column, n, null_count),
            DataType::Str => Self::compress_str(column, n, null_count),
            DataType::Double => Self::compress_double(column, n, null_count),
        }
    }

    fn compress_int(column: &Column, n: usize, null_count: usize) -> ColumnCompression {
        let data = column.data.as_int().expect("int column");
        let mut distinct: Vec<i64> = Vec::with_capacity(n);
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        for (row, &v) in data.iter().enumerate().take(n) {
            if column.is_null(row) {
                continue;
            }
            min = min.min(v);
            max = max.max(v);
            distinct.push(v);
        }
        distinct.sort_unstable();
        distinct.dedup();

        if distinct.len() == 1 && null_count == 0 {
            return ColumnCompression::SingleValue(Value::Int(distinct[0]));
        }

        // Candidate 1: truncation (codes relative to min).
        let range = (max as i128 - min as i128) as u64;
        let trunc_width = width_for(range);
        let trunc_size = n * trunc_width;

        // Candidate 2: ordered dictionary (codes index sorted distinct values).
        let dict_width = width_for(distinct.len().saturating_sub(1) as u64);
        let dict_size = n * dict_width + distinct.len() * 8;

        if dict_size < trunc_size {
            let codes: Vec<u64> = (0..n)
                .map(|row| {
                    if column.is_null(row) {
                        0
                    } else {
                        distinct.binary_search(&data[row]).expect("value in dict") as u64
                    }
                })
                .collect();
            let codes = CodeVec::encode(&codes, distinct.len().saturating_sub(1) as u64);
            ColumnCompression::DictInt {
                dict: distinct,
                codes,
            }
        } else {
            let codes: Vec<u64> = (0..n)
                .map(|row| {
                    if column.is_null(row) {
                        0
                    } else {
                        (data[row] - min) as u64
                    }
                })
                .collect();
            let codes = CodeVec::encode(&codes, range);
            ColumnCompression::Truncated { min, codes }
        }
    }

    fn compress_str(column: &Column, n: usize, null_count: usize) -> ColumnCompression {
        let data = column.data.as_str().expect("string column");
        let mut distinct: Vec<String> = (0..n)
            .filter(|&row| !column.is_null(row))
            .map(|row| data[row].clone())
            .collect();
        distinct.sort_unstable();
        distinct.dedup();

        if distinct.len() == 1 && null_count == 0 {
            return ColumnCompression::SingleValue(Value::Str(distinct.pop().expect("one value")));
        }

        let codes: Vec<u64> = (0..n)
            .map(|row| {
                if column.is_null(row) {
                    0
                } else {
                    distinct.binary_search(&data[row]).expect("value in dict") as u64
                }
            })
            .collect();
        let codes = CodeVec::encode(&codes, distinct.len().saturating_sub(1) as u64);
        ColumnCompression::DictStr {
            dict: distinct,
            codes,
        }
    }

    fn compress_double(column: &Column, n: usize, null_count: usize) -> ColumnCompression {
        let data = column.data.as_double().expect("double column");
        let first_valid = (0..n)
            .find(|&row| !column.is_null(row))
            .expect("non-null value");
        let constant = (0..n)
            .filter(|&row| !column.is_null(row))
            .all(|row| data[row].to_bits() == data[first_valid].to_bits());
        if constant && null_count == 0 {
            return ColumnCompression::SingleValue(Value::Double(data[first_valid]));
        }
        ColumnCompression::Double(data.to_vec())
    }

    /// The scheme identifier (used for layout-combination accounting and the JIT
    /// compile-time model).
    pub fn kind(&self) -> SchemeKind {
        match self {
            ColumnCompression::SingleValue(_) => SchemeKind::SingleValue,
            ColumnCompression::Truncated { codes, .. } => {
                SchemeKind::Truncated(codes.byte_width() as u8)
            }
            ColumnCompression::DictInt { codes, .. } => {
                SchemeKind::DictInt(codes.byte_width() as u8)
            }
            ColumnCompression::DictStr { codes, .. } => {
                SchemeKind::DictStr(codes.byte_width() as u8)
            }
            ColumnCompression::Double(_) => SchemeKind::Double,
        }
    }

    /// Number of rows stored (0 for single-value columns, which store no per-row
    /// data; the block knows the tuple count).
    pub fn stored_rows(&self) -> usize {
        match self {
            ColumnCompression::SingleValue(_) => 0,
            ColumnCompression::Truncated { codes, .. } => codes.len(),
            ColumnCompression::DictInt { codes, .. } => codes.len(),
            ColumnCompression::DictStr { codes, .. } => codes.len(),
            ColumnCompression::Double(v) => v.len(),
        }
    }

    /// Decompress the value at `row` (NULL handling happens at the block level).
    pub fn get(&self, row: usize) -> Value {
        match self {
            ColumnCompression::SingleValue(v) => v.clone(),
            ColumnCompression::Truncated { min, codes } => Value::Int(min + codes.get(row) as i64),
            ColumnCompression::DictInt { dict, codes } => Value::Int(dict[codes.get(row) as usize]),
            ColumnCompression::DictStr { dict, codes } => {
                Value::Str(dict[codes.get(row) as usize].clone())
            }
            ColumnCompression::Double(v) => Value::Double(v[row]),
        }
    }

    /// Decompress the integer value at `row` without allocating; `None` if the column
    /// is not integer-typed.
    #[inline]
    pub fn get_int(&self, row: usize) -> Option<i64> {
        match self {
            ColumnCompression::SingleValue(Value::Int(v)) => Some(*v),
            ColumnCompression::Truncated { min, codes } => Some(min + codes.get(row) as i64),
            ColumnCompression::DictInt { dict, codes } => Some(dict[codes.get(row) as usize]),
            _ => None,
        }
    }

    /// Borrow the string at `row` without cloning; `None` if not a string column.
    #[inline]
    pub fn get_str(&self, row: usize) -> Option<&str> {
        match self {
            ColumnCompression::SingleValue(Value::Str(s)) => Some(s),
            ColumnCompression::DictStr { dict, codes } => Some(&dict[codes.get(row) as usize]),
            _ => None,
        }
    }

    /// Translate a value-space inclusive range `[lo, hi]` into code space.
    ///
    /// Returns `None` when no code can possibly satisfy the range (the block — or at
    /// least this attribute — rules the restriction out), mirroring the dictionary
    /// binary-search early-out of Section 3.4.
    pub fn translate_int_range(&self, lo: i64, hi: i64) -> Option<(u64, u64)> {
        if lo > hi {
            return None;
        }
        match self {
            ColumnCompression::Truncated { min, codes } => {
                // Open-ended comparisons arrive as `i64::MIN`/`i64::MAX` bounds, so
                // the value→code shift must saturate rather than overflow (the code
                // width clamp below makes the saturated value exact anyway).
                let lo_code = if lo <= *min {
                    0
                } else {
                    lo.saturating_sub(*min) as u64
                };
                if hi < *min {
                    return None;
                }
                let hi_code = hi.saturating_sub(*min) as u64;
                // Clamp to the code width; anything above the width's max cannot occur.
                let width_max = match codes.byte_width() {
                    1 => u8::MAX as u64,
                    2 => u16::MAX as u64,
                    4 => u32::MAX as u64,
                    _ => u64::MAX,
                };
                if lo_code > width_max {
                    return None;
                }
                Some((lo_code, hi_code.min(width_max)))
            }
            ColumnCompression::DictInt { dict, .. } => {
                let lo_code = dict.partition_point(|v| *v < lo) as u64;
                let hi_code = dict.partition_point(|v| *v <= hi) as u64;
                if lo_code >= hi_code {
                    None
                } else {
                    Some((lo_code, hi_code - 1))
                }
            }
            _ => None,
        }
    }

    /// Translate a string-space inclusive range into dictionary-code space.
    pub fn translate_str_range(&self, lo: &str, hi: &str) -> Option<(u64, u64)> {
        match self {
            ColumnCompression::DictStr { dict, .. } => {
                if lo > hi {
                    return None;
                }
                let lo_code = dict.partition_point(|v| v.as_str() < lo) as u64;
                let hi_code = dict.partition_point(|v| v.as_str() <= hi) as u64;
                if lo_code >= hi_code {
                    None
                } else {
                    Some((lo_code, hi_code - 1))
                }
            }
            _ => None,
        }
    }

    /// Exact-match dictionary probe for string equality: `None` when the string is not
    /// in this block's dictionary (the block can be ruled out).
    pub fn translate_str_eq(&self, value: &str) -> Option<u64> {
        match self {
            ColumnCompression::DictStr { dict, .. } => dict
                .binary_search_by(|d| d.as_str().cmp(value))
                .ok()
                .map(|c| c as u64),
            _ => None,
        }
    }

    /// Borrow the ordered string dictionary (if this is a string-dictionary column).
    pub fn str_dict(&self) -> Option<&[String]> {
        match self {
            ColumnCompression::DictStr { dict, .. } => Some(dict),
            _ => None,
        }
    }

    /// The per-row code vector (if the scheme stores one).
    pub fn codes(&self) -> Option<&CodeVec> {
        match self {
            ColumnCompression::Truncated { codes, .. } => Some(codes),
            ColumnCompression::DictInt { codes, .. } => Some(codes),
            ColumnCompression::DictStr { codes, .. } => Some(codes),
            _ => None,
        }
    }

    /// In-memory size in bytes of the compressed representation (codes + dictionary +
    /// string payload), used by the Table 1 / Figure 10 size accounting.
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnCompression::SingleValue(v) => match v {
                Value::Str(s) => 8 + s.len(),
                _ => 8,
            },
            ColumnCompression::Truncated { codes, .. } => 8 + codes.byte_size(),
            ColumnCompression::DictInt { dict, codes } => dict.len() * 8 + codes.byte_size(),
            ColumnCompression::DictStr { dict, codes } => {
                // dictionary: offsets (4 B each) + string bytes
                dict.iter().map(|s| s.len() + 4).sum::<usize>() + codes.byte_size()
            }
            ColumnCompression::Double(v) => v.len() * 8,
        }
    }
}

/// Narrowest byte width (1, 2, 4, 8) that can hold `max_code`.
pub fn width_for(max_code: u64) -> usize {
    if max_code <= u8::MAX as u64 {
        1
    } else if max_code <= u16::MAX as u64 {
        2
    } else if max_code <= u32::MAX as u64 {
        4
    } else {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnData;

    fn int_col(values: &[i64]) -> Column {
        Column::from_data(ColumnData::Int(values.to_vec()))
    }

    fn str_col(values: &[&str]) -> Column {
        Column::from_data(ColumnData::Str(
            values.iter().map(|s| s.to_string()).collect(),
        ))
    }

    #[test]
    fn codevec_width_selection() {
        assert_eq!(CodeVec::encode(&[0, 255], 255).byte_width(), 1);
        assert_eq!(CodeVec::encode(&[0, 256], 256).byte_width(), 2);
        assert_eq!(CodeVec::encode(&[0, 70_000], 70_000).byte_width(), 4);
        assert_eq!(CodeVec::encode(&[0, u64::MAX], u64::MAX).byte_width(), 8);
    }

    #[test]
    fn codevec_roundtrip_get() {
        let cv = CodeVec::encode(&[1, 300, 65_536], 65_536);
        assert_eq!(cv.byte_width(), 4);
        assert_eq!(cv.get(0), 1);
        assert_eq!(cv.get(1), 300);
        assert_eq!(cv.get(2), 65_536);
        assert_eq!(cv.byte_size(), 12);
    }

    #[test]
    fn codevec_find_and_reduce() {
        let cv = CodeVec::encode(&(0..1000u64).collect::<Vec<_>>(), 999);
        let mut out = Vec::new();
        cv.find_matches(IsaLevel::detect(), 100, 199, 0, 1000, &mut out);
        assert_eq!(out.len(), 100);
        assert_eq!(out[0], 100);
        cv.reduce_matches(IsaLevel::detect(), 150, u64::MAX, &mut out);
        assert_eq!(out.len(), 50);
        // windowed find
        let mut windowed = Vec::new();
        cv.find_matches(IsaLevel::detect(), 100, 199, 150, 1000, &mut windowed);
        assert_eq!(windowed.len(), 50);
        assert_eq!(windowed[0], 150);
    }

    #[test]
    fn clamp_pred_over_width() {
        // A range entirely above the u8 domain matches nothing.
        let p: RangePredicate<u8> = clamp_pred(300, 400);
        assert!(p.is_empty());
        // A range straddling the max clamps.
        let p: RangePredicate<u8> = clamp_pred(200, 400);
        assert_eq!(p, RangePredicate::between(200u8, 255));
    }

    #[test]
    fn single_value_detection() {
        let c = ColumnCompression::compress(&int_col(&[7, 7, 7, 7]));
        assert_eq!(c, ColumnCompression::SingleValue(Value::Int(7)));
        assert_eq!(c.kind(), SchemeKind::SingleValue);
        assert_eq!(c.get(3), Value::Int(7));
    }

    #[test]
    fn all_null_is_single_value_null() {
        let mut col = Column::new(DataType::Int);
        col.push(Value::Null);
        col.push(Value::Null);
        let c = ColumnCompression::compress(&col);
        assert_eq!(c, ColumnCompression::SingleValue(Value::Null));
    }

    #[test]
    fn truncation_chosen_for_dense_domains() {
        // 0..=200 dense: truncation to 1 byte beats a 201-entry dictionary.
        let values: Vec<i64> = (0..4096).map(|i| 1000 + (i % 200)).collect();
        let c = ColumnCompression::compress(&int_col(&values));
        match &c {
            ColumnCompression::Truncated { min, codes } => {
                assert_eq!(*min, 1000);
                assert_eq!(codes.byte_width(), 1);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
        assert_eq!(c.get(1), Value::Int(1001));
    }

    #[test]
    fn dictionary_chosen_for_sparse_domains() {
        // Two distinct values far apart: truncation would need 4-byte codes, the
        // dictionary needs 1-byte codes plus a 16-byte dictionary.
        let values: Vec<i64> = (0..1024)
            .map(|i| if i % 2 == 0 { 5 } else { 5_000_000 })
            .collect();
        let c = ColumnCompression::compress(&int_col(&values));
        match &c {
            ColumnCompression::DictInt { dict, codes } => {
                assert_eq!(dict.as_slice(), &[5, 5_000_000]);
                assert_eq!(codes.byte_width(), 1);
            }
            other => panic!("expected dictionary, got {other:?}"),
        }
        assert_eq!(c.get(1), Value::Int(5_000_000));
        assert_eq!(c.get(2), Value::Int(5));
    }

    #[test]
    fn string_dictionary_is_ordered() {
        let c = ColumnCompression::compress(&str_col(&["pear", "apple", "pear", "fig"]));
        match &c {
            ColumnCompression::DictStr { dict, .. } => {
                assert_eq!(dict.as_slice(), &["apple", "fig", "pear"]);
            }
            other => panic!("expected string dictionary, got {other:?}"),
        }
        assert_eq!(c.get(0), Value::Str("pear".into()));
        assert_eq!(c.get_str(3), Some("fig"));
    }

    #[test]
    fn constant_string_is_single_value() {
        let c = ColumnCompression::compress(&str_col(&["x", "x", "x"]));
        assert_eq!(c, ColumnCompression::SingleValue(Value::Str("x".into())));
    }

    #[test]
    fn double_columns_stay_uncompressed_unless_constant() {
        let c = ColumnCompression::compress(&Column::from_data(ColumnData::Double(vec![
            1.0, 2.0, 3.0,
        ])));
        assert_eq!(c.kind(), SchemeKind::Double);
        assert_eq!(c.get(2), Value::Double(3.0));
        let constant =
            ColumnCompression::compress(&Column::from_data(ColumnData::Double(vec![0.5, 0.5])));
        assert_eq!(constant, ColumnCompression::SingleValue(Value::Double(0.5)));
    }

    #[test]
    fn translate_int_range_truncated() {
        let values: Vec<i64> = (100..300).collect();
        let c = ColumnCompression::compress(&int_col(&values));
        assert_eq!(c.translate_int_range(150, 160), Some((50, 60)));
        // below the min clamps to code 0
        assert_eq!(c.translate_int_range(0, 120), Some((0, 20)));
        // entirely below min
        assert_eq!(c.translate_int_range(0, 99), None);
        // lo > hi
        assert_eq!(c.translate_int_range(10, 5), None);
    }

    #[test]
    fn translate_int_range_dict() {
        let values: Vec<i64> = (0..512)
            .map(|i| if i % 2 == 0 { 10 } else { 1_000_000 })
            .collect();
        let c = ColumnCompression::compress(&int_col(&values));
        assert_eq!(c.translate_int_range(10, 10), Some((0, 0)));
        assert_eq!(c.translate_int_range(11, 999_999), None);
        assert_eq!(c.translate_int_range(10, 2_000_000), Some((0, 1)));
    }

    #[test]
    fn translate_str_predicates() {
        let c =
            ColumnCompression::compress(&str_col(&["BRASS", "COPPER", "NICKEL", "STEEL", "TIN"]));
        assert_eq!(c.translate_str_eq("NICKEL"), Some(2));
        assert_eq!(c.translate_str_eq("GOLD"), None);
        assert_eq!(c.translate_str_range("COPPER", "STEEL"), Some((1, 3)));
        assert_eq!(c.translate_str_range("U", "Z"), None);
    }

    #[test]
    fn nulls_get_code_zero_and_are_not_in_dict() {
        let mut col = Column::new(DataType::Int);
        col.push(Value::Int(500));
        col.push(Value::Null);
        col.push(Value::Int(900));
        let c = ColumnCompression::compress(&col);
        // With a NULL present, single-value is not applicable even though only two
        // distinct non-null values exist.
        assert!(c.codes().is_some());
        assert_eq!(c.get_int(0), Some(500));
        assert_eq!(c.get_int(2), Some(900));
    }

    #[test]
    fn byte_size_is_smaller_than_uncompressed() {
        let values: Vec<i64> = (0..65_536).map(|i| i % 100).collect();
        let col = int_col(&values);
        let c = ColumnCompression::compress(&col);
        assert!(c.byte_size() < col.byte_size() / 4);
    }
}
