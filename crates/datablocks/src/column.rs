//! Uncompressed columnar data — the representation of *hot* chunks and of the
//! intermediate buffers that vectorized scans unpack matches into.

use crate::value::{DataType, Value};

/// The typed payload of an uncompressed column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers (also dates, scaled decimals, char(1) code points).
    Int(Vec<i64>),
    /// 64-bit floats.
    Double(Vec<f64>),
    /// Owned strings.
    Str(Vec<String>),
}

impl ColumnData {
    /// The logical type of the column.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Double(_) => DataType::Double,
            ColumnData::Str(_) => DataType::Str,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An empty column of the given type.
    pub fn new(ty: DataType) -> ColumnData {
        match ty {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Double => ColumnData::Double(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
        }
    }

    /// An empty column of the given type with pre-reserved capacity.
    pub fn with_capacity(ty: DataType, cap: usize) -> ColumnData {
        match ty {
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Double => ColumnData::Double(Vec::with_capacity(cap)),
            DataType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        }
    }

    /// Read one row as an owned [`Value`].
    pub fn get(&self, row: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Double(v) => Value::Double(v[row]),
            ColumnData::Str(v) => Value::Str(v[row].clone()),
        }
    }

    /// Append a non-null value; panics on a type mismatch (schema violations are
    /// programming errors, not runtime conditions).
    pub fn push(&mut self, value: Value) {
        match (self, value) {
            (ColumnData::Int(v), Value::Int(x)) => v.push(x),
            (ColumnData::Double(v), Value::Double(x)) => v.push(x),
            (ColumnData::Double(v), Value::Int(x)) => v.push(x as f64),
            (ColumnData::Str(v), Value::Str(x)) => v.push(x),
            (col, value) => panic!(
                "type mismatch: cannot push {:?} into a {} column",
                value,
                col.data_type()
            ),
        }
    }

    /// Append a default "zero" value (used as the payload slot of NULL rows).
    pub fn push_default(&mut self) {
        match self {
            ColumnData::Int(v) => v.push(0),
            ColumnData::Double(v) => v.push(0.0),
            ColumnData::Str(v) => v.push(String::new()),
        }
    }

    /// Borrow the integer payload; `None` if this is not an integer column.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the float payload; `None` if this is not a double column.
    pub fn as_double(&self) -> Option<&[f64]> {
        match self {
            ColumnData::Double(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow the string payload; `None` if this is not a string column.
    pub fn as_str(&self) -> Option<&[String]> {
        match self {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Heap size of the payload in bytes (used for the Table 1 size accounting of
    /// uncompressed storage).
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len() * 8,
            ColumnData::Double(v) => v.len() * 8,
            // A string in uncompressed storage costs its bytes plus the Vec<String>
            // header (pointer + len + capacity), which is how an in-memory row store
            // or column store would hold it.
            ColumnData::Str(v) => v.iter().map(|s| s.len() + 24).sum(),
        }
    }
}

/// An uncompressed column: typed payload plus an optional validity bitmap.
///
/// `validity[i] == false` means row `i` is NULL; the payload slot of a NULL row holds
/// an arbitrary default and must not be interpreted. A column without a bitmap has no
/// NULLs.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// The typed values.
    pub data: ColumnData,
    /// Optional validity bitmap (true = value present).
    pub validity: Option<Vec<bool>>,
}

impl Column {
    /// A new, empty, non-nullable column.
    pub fn new(ty: DataType) -> Column {
        Column {
            data: ColumnData::new(ty),
            validity: None,
        }
    }

    /// Wrap fully-valid data.
    pub fn from_data(data: ColumnData) -> Column {
        Column {
            data,
            validity: None,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The logical type.
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// Is row `row` NULL?
    pub fn is_null(&self, row: usize) -> bool {
        self.validity.as_ref().map(|v| !v[row]).unwrap_or(false)
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity
            .as_ref()
            .map(|v| v.iter().filter(|&&b| !b).count())
            .unwrap_or(0)
    }

    /// Read row `row`, honouring NULLs.
    pub fn get(&self, row: usize) -> Value {
        if self.is_null(row) {
            Value::Null
        } else {
            self.data.get(row)
        }
    }

    /// Append a value (NULL allocates a validity bitmap on first use).
    pub fn push(&mut self, value: Value) {
        match value {
            Value::Null => {
                let len = self.len();
                let validity = self.validity.get_or_insert_with(|| vec![true; len]);
                validity.push(false);
                self.data.push_default();
            }
            v => {
                if let Some(validity) = &mut self.validity {
                    validity.push(true);
                }
                self.data.push(v);
            }
        }
    }

    /// Heap size in bytes, including the validity bitmap if present.
    pub fn byte_size(&self) -> usize {
        self.data.byte_size() + self.validity.as_ref().map(|v| v.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_data_push_and_get() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(Value::Int(1));
        c.push(Value::Int(2));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Value::Int(2));
        assert_eq!(c.as_int().unwrap(), &[1, 2]);
        assert!(c.as_str().is_none());
    }

    #[test]
    fn int_widens_into_double_column() {
        let mut c = ColumnData::new(DataType::Double);
        c.push(Value::Int(3));
        c.push(Value::Double(1.5));
        assert_eq!(c.as_double().unwrap(), &[3.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(Value::from("nope"));
    }

    #[test]
    fn column_null_handling() {
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(10));
        c.push(Value::Null);
        c.push(Value::Int(30));
        assert_eq!(c.len(), 3);
        assert_eq!(c.null_count(), 1);
        assert!(c.is_null(1));
        assert!(!c.is_null(0));
        assert_eq!(c.get(0), Value::Int(10));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(30));
    }

    #[test]
    fn column_without_nulls_has_no_bitmap() {
        let mut c = Column::new(DataType::Str);
        c.push(Value::from("a"));
        c.push(Value::from("b"));
        assert!(c.validity.is_none());
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn byte_size_accounting() {
        let c = Column::from_data(ColumnData::Int(vec![1, 2, 3, 4]));
        assert_eq!(c.byte_size(), 32);
        let s = Column::from_data(ColumnData::Str(vec!["ab".into(), "cdef".into()]));
        assert_eq!(s.byte_size(), 2 + 4 + 2 * 24);
    }

    #[test]
    fn with_capacity_preserves_type() {
        let c = ColumnData::with_capacity(DataType::Str, 100);
        assert_eq!(c.data_type(), DataType::Str);
        assert!(c.is_empty());
    }
}
