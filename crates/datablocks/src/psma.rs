//! Positional Small Materialized Aggregates (PSMA) — the light-weight lookup-table
//! index of Section 3.2 / Appendix B.
//!
//! A PSMA maps a probe value to a *range of positions* inside the Data Block where
//! that value may appear, narrowing the scan even when the block as a whole cannot be
//! skipped. The table has `2^8` slots per byte of the indexed delta domain: the slot
//! of a value `v` is computed from `Δ = v − min` as
//!
//! ```text
//! r = index of the most significant non-zero byte of Δ   (0 for Δ < 256)
//! slot = (Δ >> 8·r) + 256·r
//! ```
//!
//! so deltas that fit in one byte get exclusive slots, 2-byte deltas share a slot with
//! up to 2^8 other values, and so on — the table is deliberately more precise near the
//! block minimum. Each slot stores a half-open position range `[begin, end)` that is
//! widened as colliding values are inserted during the build scan.

/// A half-open range of record positions `[begin, end)` within a Data Block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanRange {
    /// First potentially matching position.
    pub begin: u32,
    /// One past the last potentially matching position.
    pub end: u32,
}

impl ScanRange {
    /// The canonical empty range.
    pub const EMPTY: ScanRange = ScanRange { begin: 0, end: 0 };

    /// A range covering `[0, n)`.
    pub fn full(n: u32) -> ScanRange {
        ScanRange { begin: 0, end: n }
    }

    /// True if the range contains no positions.
    pub fn is_empty(&self) -> bool {
        self.begin >= self.end
    }

    /// Number of positions covered.
    pub fn len(&self) -> u32 {
        self.end.saturating_sub(self.begin)
    }

    /// Smallest range containing both (used when unioning slot ranges for range
    /// predicates — empty ranges are identities).
    pub fn union(&self, other: &ScanRange) -> ScanRange {
        if self.is_empty() {
            *other
        } else if other.is_empty() {
            *self
        } else {
            ScanRange {
                begin: self.begin.min(other.begin),
                end: self.end.max(other.end),
            }
        }
    }

    /// Intersection (used to combine ranges from PSMAs on different attributes).
    pub fn intersect(&self, other: &ScanRange) -> ScanRange {
        let begin = self.begin.max(other.begin);
        let end = self.end.min(other.end);
        if begin >= end {
            ScanRange::EMPTY
        } else {
            ScanRange { begin, end }
        }
    }
}

/// Compute the PSMA slot of a delta value (Appendix B's `getPSMASlot`).
#[inline]
pub fn psma_slot(delta: u64) -> usize {
    // r = index of the most significant non-zero byte (0 for values < 256).
    let r = if delta == 0 {
        0
    } else {
        7 - (delta.leading_zeros() as usize >> 3)
    };
    let msb = (delta >> (r << 3)) as usize;
    msb + (r << 8)
}

/// Number of lookup-table slots needed to index deltas up to `max_delta`.
///
/// The table always has a multiple of 256 slots — one group of 256 per byte of the
/// maximum delta (2 KB for 1-byte deltas, 4 KB for 2-byte, 8 KB for 4-byte, as the
/// paper reports; each slot is two `u32`s).
pub fn psma_slots_for(max_delta: u64) -> usize {
    let bytes = if max_delta == 0 {
        1
    } else {
        8 - (max_delta.leading_zeros() as usize >> 3)
    };
    bytes * 256
}

/// The Positional SMA lookup table for one attribute of one Data Block.
#[derive(Debug, Clone, PartialEq)]
pub struct Psma {
    slots: Vec<ScanRange>,
    /// The attribute minimum the deltas are relative to.
    min: i64,
    /// The attribute maximum (probes outside `[min, max]` return the empty range).
    max: i64,
}

impl Psma {
    /// Build a PSMA over the integer key space `keys` (attribute values, dictionary
    /// codes, or biased doubles — anything totally ordered and convertible to `i64`).
    ///
    /// `keys[i]` is the key of the record at position `i`; the build is a single O(n)
    /// scan (Appendix B).
    pub fn build(keys: &[i64]) -> Option<Psma> {
        let min = *keys.iter().min()?;
        let max = *keys.iter().max()?;
        let max_delta = (max - min) as u64;
        let mut slots = vec![ScanRange::EMPTY; psma_slots_for(max_delta)];
        for (tid, &key) in keys.iter().enumerate() {
            let slot = psma_slot((key - min) as u64);
            let entry = &mut slots[slot];
            if entry.is_empty() {
                *entry = ScanRange {
                    begin: tid as u32,
                    end: tid as u32 + 1,
                };
            } else {
                entry.end = tid as u32 + 1;
            }
        }
        Some(Psma { slots, min, max })
    }

    /// The minimum key the table was built over.
    pub fn min(&self) -> i64 {
        self.min
    }

    /// The maximum key the table was built over.
    pub fn max(&self) -> i64 {
        self.max
    }

    /// Number of slots in the lookup table.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Size of the lookup table in bytes (each slot is a `[begin, end)` pair of
    /// 4-byte unsigned integers).
    pub fn byte_size(&self) -> usize {
        self.slots.len() * 8
    }

    /// Scan range for an equality probe `key = value` — a single table lookup.
    pub fn probe_eq(&self, value: i64) -> ScanRange {
        if value < self.min || value > self.max {
            return ScanRange::EMPTY;
        }
        self.slots[psma_slot((value - self.min) as u64)]
    }

    /// Scan range for a range probe `lo <= key <= hi`: the union of all non-empty slot
    /// ranges between the slots of `lo` and `hi` (clamped to the block domain).
    pub fn probe_range(&self, lo: i64, hi: i64) -> ScanRange {
        let lo = lo.max(self.min);
        let hi = hi.min(self.max);
        if lo > hi {
            return ScanRange::EMPTY;
        }
        let slot_lo = psma_slot((lo - self.min) as u64);
        let slot_hi = psma_slot((hi - self.min) as u64);
        let mut range = ScanRange::EMPTY;
        for slot in slot_lo..=slot_hi {
            range = range.union(&self.slots[slot]);
        }
        range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_of_small_deltas_is_identity() {
        for d in 0..256u64 {
            assert_eq!(psma_slot(d), d as usize);
        }
    }

    #[test]
    fn slot_of_wider_deltas_uses_leading_byte() {
        // paper example: probe 998 with min 2 → delta 996 = 0x03E4 → second byte 0x03,
        // one remaining byte → slot 3 + 256 = 259
        assert_eq!(psma_slot(996), 259);
        // delta 0x0100 → msb 1, r = 1 → 257
        assert_eq!(psma_slot(256), 257);
        // delta 0x01_0000 → msb 1, r = 2 → 513
        assert_eq!(psma_slot(1 << 16), 513);
        // delta with the top byte set
        assert_eq!(psma_slot(0xFF00_0000_0000_0000), 255 + 7 * 256);
    }

    #[test]
    fn slots_for_domain_sizes() {
        assert_eq!(psma_slots_for(0), 256);
        assert_eq!(psma_slots_for(255), 256);
        assert_eq!(psma_slots_for(256), 512);
        assert_eq!(psma_slots_for(65_535), 512);
        assert_eq!(psma_slots_for(65_536), 768);
        assert_eq!(psma_slots_for(u32::MAX as u64), 1024);
    }

    #[test]
    fn typical_byte_sizes_match_paper() {
        // 1-, 2- and 4-byte delta domains → 2 KB, 4 KB and 8 KB lookup tables.
        let one_byte = Psma::build(&(0..=255i64).collect::<Vec<_>>()).unwrap();
        assert_eq!(one_byte.byte_size(), 2 * 1024);
        let two_byte = Psma::build(&[0, 65_535]).unwrap();
        assert_eq!(two_byte.byte_size(), 4 * 1024);
        let four_byte = Psma::build(&[0, u32::MAX as i64]).unwrap();
        assert_eq!(four_byte.byte_size(), 8 * 1024);
    }

    #[test]
    fn paper_figure4_example() {
        // data = (7, 2, 6, 42, 128, 7, 998, 2, 42, 5), min = 2
        let data = [7i64, 2, 6, 42, 128, 7, 998, 2, 42, 5];
        let psma = Psma::build(&data).unwrap();
        assert_eq!(psma.min(), 2);
        assert_eq!(psma.max(), 998);
        // probe 7 → delta 5 → slot 5 → range [0, 6): positions 0 and 5 hold value 7,
        // and the slot was widened by every other delta-5 insertion in between.
        assert_eq!(psma.probe_eq(7), ScanRange { begin: 0, end: 6 });
        // probe 998 → delta 996 → slot 259 → only position 6
        assert_eq!(psma.probe_eq(998), ScanRange { begin: 6, end: 7 });
        // probe 2 (the minimum itself) → delta 0 → slot 0 → positions 1..8
        assert_eq!(psma.probe_eq(2), ScanRange { begin: 1, end: 8 });
        // value outside the domain
        assert_eq!(psma.probe_eq(1), ScanRange::EMPTY);
        assert_eq!(psma.probe_eq(1_000), ScanRange::EMPTY);
    }

    #[test]
    fn probe_eq_ranges_always_cover_value_positions() {
        // deterministic pseudo-random data: every occurrence of a probed value must be
        // inside the returned range
        let mut x = 12345u64;
        let keys: Vec<i64> = (0..4096)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) % 10_000) as i64
            })
            .collect();
        let psma = Psma::build(&keys).unwrap();
        for probe in [0i64, 1, 17, 500, 5_000, 9_999] {
            let range = psma.probe_eq(probe);
            for (pos, &k) in keys.iter().enumerate() {
                if k == probe {
                    assert!(
                        (pos as u32) >= range.begin && (pos as u32) < range.end,
                        "position {pos} of value {probe} outside range {range:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn probe_range_covers_all_matching_positions() {
        let keys: Vec<i64> = (0..1000).map(|i| (i * 37) % 1000).collect();
        let psma = Psma::build(&keys).unwrap();
        let (lo, hi) = (100, 300);
        let range = psma.probe_range(lo, hi);
        for (pos, &k) in keys.iter().enumerate() {
            if k >= lo && k <= hi {
                assert!((pos as u32) >= range.begin && (pos as u32) < range.end);
            }
        }
    }

    #[test]
    fn probe_range_outside_domain_is_empty() {
        let psma = Psma::build(&[10, 20, 30]).unwrap();
        assert!(psma.probe_range(40, 100).is_empty());
        assert!(psma.probe_range(0, 9).is_empty());
        assert!(!psma.probe_range(0, 15).is_empty());
    }

    #[test]
    fn sorted_data_gives_tight_ranges() {
        // On data sorted by the key, PSMA ranges should be narrow for small deltas.
        let keys: Vec<i64> = (0..256).flat_map(|v| std::iter::repeat_n(v, 4)).collect();
        let psma = Psma::build(&keys).unwrap();
        let r = psma.probe_eq(100);
        assert_eq!(
            r,
            ScanRange {
                begin: 400,
                end: 404
            }
        );
    }

    #[test]
    fn build_on_empty_input_returns_none() {
        assert!(Psma::build(&[]).is_none());
    }

    #[test]
    fn scan_range_set_operations() {
        let a = ScanRange { begin: 10, end: 20 };
        let b = ScanRange { begin: 15, end: 30 };
        assert_eq!(a.union(&b), ScanRange { begin: 10, end: 30 });
        assert_eq!(a.intersect(&b), ScanRange { begin: 15, end: 20 });
        assert_eq!(a.union(&ScanRange::EMPTY), a);
        assert_eq!(ScanRange::EMPTY.union(&b), b);
        assert!(a.intersect(&ScanRange { begin: 30, end: 40 }).is_empty());
        assert_eq!(ScanRange::full(5), ScanRange { begin: 0, end: 5 });
        assert_eq!(a.len(), 10);
        assert_eq!(ScanRange::EMPTY.len(), 0);
    }

    #[test]
    fn negative_keys_are_supported() {
        let keys = [-100i64, -50, 0, 50, 100];
        let psma = Psma::build(&keys).unwrap();
        assert_eq!(psma.min(), -100);
        let r = psma.probe_eq(-50);
        assert!(r.begin <= 1 && r.end > 1);
        assert!(psma.probe_eq(-101).is_empty());
    }
}
