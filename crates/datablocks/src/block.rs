//! The Data Block container: a self-contained, immutable, compressed columnar
//! representation of one chunk of a relation (Section 3).

use crate::compression::{ColumnCompression, SchemeKind};
use crate::psma::Psma;
use crate::sma::Sma;
use crate::value::Value;

/// Default number of records frozen into one Data Block (the paper's default of
/// 2^16; smaller blocks pay proportionally more metadata overhead, see Figure 10).
pub const DEFAULT_BLOCK_CAPACITY: usize = 1 << 16;

/// One attribute of a Data Block: the chosen compression, its Small Materialized
/// Aggregate, its Positional SMA and (if the attribute is nullable) a validity bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockColumn {
    /// The compressed payload.
    pub compression: ColumnCompression,
    /// Min/max of the attribute in this block.
    pub sma: Sma,
    /// Positional SMA over the compressed code words (absent for single-value and
    /// floating-point attributes, which have no code vector to index).
    pub psma: Option<Psma>,
    /// Validity bitmap (`false` = NULL); absent when the attribute has no NULLs.
    pub validity: Option<Vec<bool>>,
}

impl BlockColumn {
    /// Is the value at `row` NULL?
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        match &self.compression {
            ColumnCompression::SingleValue(Value::Null) => true,
            _ => self.validity.as_ref().map(|v| !v[row]).unwrap_or(false),
        }
    }

    /// Decompress the value at `row`, honouring NULLs.
    pub fn get(&self, row: usize) -> Value {
        if self.is_null(row) {
            Value::Null
        } else {
            self.compression.get(row)
        }
    }

    /// In-memory size of the column's compressed data, SMA and PSMA in bytes.
    pub fn byte_size(&self) -> usize {
        self.compression.byte_size()
            + self.sma.serialized_size()
            + self.psma.as_ref().map(|p| p.byte_size()).unwrap_or(0)
            + self.validity.as_ref().map(|v| v.len() / 8 + 1).unwrap_or(0)
    }

    /// Size without the PSMA index (used to quantify the PSMA overhead).
    pub fn byte_size_without_psma(&self) -> usize {
        self.byte_size() - self.psma.as_ref().map(|p| p.byte_size()).unwrap_or(0)
    }
}

/// An immutable ("frozen") compressed block of records.
///
/// A Data Block stores all attributes of a sequence of tuples in compressed columnar
/// format (PAX-style). Once frozen the contained data never changes; the only
/// permitted mutation is marking a record as deleted, which sets a flag — updates are
/// handled by the storage layer as delete-plus-reinsert into a hot chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct DataBlock {
    tuple_count: u32,
    columns: Vec<BlockColumn>,
    /// Lazily allocated delete flags (`true` = record deleted).
    deleted: Option<Vec<bool>>,
    deleted_count: u32,
}

impl DataBlock {
    /// Assemble a block from already-frozen columns. Used by the builder; all columns
    /// must describe the same number of records.
    pub(crate) fn from_parts(tuple_count: u32, columns: Vec<BlockColumn>) -> DataBlock {
        DataBlock {
            tuple_count,
            columns,
            deleted: None,
            deleted_count: 0,
        }
    }

    /// Number of records stored in the block (including deleted ones).
    pub fn tuple_count(&self) -> u32 {
        self.tuple_count
    }

    /// Number of records not marked as deleted.
    pub fn live_tuple_count(&self) -> u32 {
        self.tuple_count - self.deleted_count
    }

    /// Number of attributes.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Access one attribute's block-level metadata and compressed payload.
    pub fn column(&self, col: usize) -> &BlockColumn {
        &self.columns[col]
    }

    /// All attributes.
    pub fn columns(&self) -> &[BlockColumn] {
        &self.columns
    }

    /// Point access: decompress attribute `col` of record `row` (Section 3.4 —
    /// point accesses skip all scan machinery and unpack a single position).
    pub fn get(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Has record `row` been marked deleted?
    pub fn is_deleted(&self, row: usize) -> bool {
        self.deleted.as_ref().map(|d| d[row]).unwrap_or(false)
    }

    /// Mark record `row` as deleted. Returns `false` if it was already deleted.
    ///
    /// This is the only mutation a frozen block supports.
    pub fn delete(&mut self, row: usize) -> bool {
        let flags = self
            .deleted
            .get_or_insert_with(|| vec![false; self.tuple_count as usize]);
        if flags[row] {
            false
        } else {
            flags[row] = true;
            self.deleted_count += 1;
            true
        }
    }

    /// True if any record in the block carries a delete flag.
    pub fn has_deletions(&self) -> bool {
        self.deleted_count > 0
    }

    /// Borrow the delete-flag bitmap, if any deletions happened.
    pub fn deleted_flags(&self) -> Option<&[bool]> {
        self.deleted.as_deref()
    }

    /// The storage-layout combination of this block: the compression scheme of every
    /// attribute. A tuple-at-a-time JIT engine would need one generated code path per
    /// distinct combination (Section 4, Figure 5).
    pub fn layout_combination(&self) -> Vec<SchemeKind> {
        self.columns.iter().map(|c| c.compression.kind()).collect()
    }

    /// Total in-memory size of the block in bytes, including SMAs, PSMAs, validity
    /// and delete bitmaps, plus a fixed per-attribute header (tuple count, scheme tag
    /// and the four offsets of Figure 3).
    pub fn byte_size(&self) -> usize {
        let header = 4 + self.columns.len() * 20;
        header
            + self.columns.iter().map(|c| c.byte_size()).sum::<usize>()
            + self.deleted.as_ref().map(|d| d.len() / 8 + 1).unwrap_or(0)
    }

    /// Block size excluding the PSMA lookup tables (quantifies index overhead).
    pub fn byte_size_without_psma(&self) -> usize {
        let header = 4 + self.columns.len() * 20;
        header
            + self
                .columns
                .iter()
                .map(|c| c.byte_size_without_psma())
                .sum::<usize>()
            + self.deleted.as_ref().map(|d| d.len() / 8 + 1).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::freeze;
    use crate::column::{Column, ColumnData};

    fn sample_block() -> DataBlock {
        let a = Column::from_data(ColumnData::Int((0..100).collect()));
        let b = Column::from_data(ColumnData::Str(
            (0..100).map(|i| format!("s{}", i % 5)).collect(),
        ));
        let c = Column::from_data(ColumnData::Double(
            (0..100).map(|i| i as f64 / 2.0).collect(),
        ));
        freeze(&[a, b, c])
    }

    #[test]
    fn point_access_roundtrip() {
        let block = sample_block();
        assert_eq!(block.tuple_count(), 100);
        assert_eq!(block.column_count(), 3);
        assert_eq!(block.get(42, 0), Value::Int(42));
        assert_eq!(block.get(42, 1), Value::Str("s2".into()));
        assert_eq!(block.get(42, 2), Value::Double(21.0));
    }

    #[test]
    fn delete_flags() {
        let mut block = sample_block();
        assert!(!block.is_deleted(10));
        assert!(!block.has_deletions());
        assert!(block.delete(10));
        assert!(block.is_deleted(10));
        assert!(!block.delete(10), "double delete reports false");
        assert_eq!(block.live_tuple_count(), 99);
        assert!(block.has_deletions());
        // Deleting does not change the stored data — the record is only flagged.
        assert_eq!(block.get(10, 0), Value::Int(10));
    }

    #[test]
    fn layout_combination_lists_all_attributes() {
        let block = sample_block();
        let layout = block.layout_combination();
        assert_eq!(layout.len(), 3);
        assert!(matches!(layout[0], SchemeKind::Truncated(1)));
        assert!(matches!(layout[1], SchemeKind::DictStr(1)));
        assert!(matches!(layout[2], SchemeKind::Double));
    }

    #[test]
    fn byte_size_includes_psma_overhead() {
        let block = sample_block();
        assert!(block.byte_size() > block.byte_size_without_psma());
    }
}
