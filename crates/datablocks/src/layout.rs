//! Flat binary layout of a Data Block (Figure 3).
//!
//! A Data Block is self-contained and pointer-free so it can be evicted to secondary
//! storage (or NVRAM) and read back — or even accessed in place — without any fix-up.
//! This module implements that flat layout: a small header holding the tuple count
//! and, per attribute, the compression tag and byte offsets of the attribute's SMA,
//! PSMA, dictionary, code vector, string payload and validity bitmap, followed by the
//! data areas themselves.
//!
//! The in-memory [`DataBlock`] remains the primary working representation; the
//! serialized form is used for persistence, eviction and the size accounting of the
//! evaluation (the serialized size is what Table 1 and Figure 10 report).

use crate::block::{BlockColumn, DataBlock};
use crate::compression::{CodeVec, ColumnCompression};
use crate::psma::Psma;
use crate::sma::Sma;
use crate::value::Value;

/// Magic bytes identifying a serialized Data Block.
pub const MAGIC: &[u8; 4] = b"DBLK";
/// Current version of the serialized layout.
pub const VERSION: u32 = 1;

/// Errors produced when decoding a serialized Data Block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The buffer does not start with the Data Block magic.
    BadMagic,
    /// The buffer declares an unsupported layout version.
    UnsupportedVersion(u32),
    /// The buffer ended before the declared content.
    Truncated,
    /// A tag or offset field holds an invalid value.
    Corrupt(&'static str),
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::BadMagic => write!(f, "not a serialized Data Block (bad magic)"),
            LayoutError::UnsupportedVersion(v) => write!(f, "unsupported Data Block version {v}"),
            LayoutError::Truncated => write!(f, "serialized Data Block is truncated"),
            LayoutError::Corrupt(what) => write!(f, "corrupt Data Block: {what}"),
        }
    }
}

impl std::error::Error for LayoutError {}

// --- little helpers (shared with the frame module) -------------------------------

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer { buf: Vec::new() }
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
    fn pos(&self) -> u32 {
        self.buf.len() as u32
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], LayoutError> {
        if self.pos + n > self.buf.len() {
            return Err(LayoutError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    pub(crate) fn u8(&mut self) -> Result<u8, LayoutError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, LayoutError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, LayoutError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    pub(crate) fn i64(&mut self) -> Result<i64, LayoutError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    pub(crate) fn f64(&mut self) -> Result<f64, LayoutError> {
        Ok(f64::from_bits(self.u64()?))
    }
    pub(crate) fn str(&mut self) -> Result<String, LayoutError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| LayoutError::Corrupt("invalid utf-8"))
    }
}

// --- serialization ---------------------------------------------------------------

const TAG_SINGLE: u8 = 0;
const TAG_TRUNC: u8 = 1;
const TAG_DICT_INT: u8 = 2;
const TAG_DICT_STR: u8 = 3;
const TAG_DOUBLE: u8 = 4;

const VALUE_NULL: u8 = 0;
const VALUE_INT: u8 = 1;
const VALUE_DOUBLE: u8 = 2;
const VALUE_STR: u8 = 3;

/// Serialize a Data Block into its flat, self-contained byte representation.
pub fn to_bytes(block: &DataBlock) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(MAGIC);
    w.u32(VERSION);
    w.u32(block.tuple_count());
    w.u32(block.column_count() as u32);

    for column in block.columns() {
        write_column(&mut w, column, block.tuple_count() as usize);
    }

    // delete flags (bit-packed), written last so the common no-deletes case costs one byte
    match block.deleted_flags() {
        Some(flags) => {
            w.u8(1);
            write_bitmap(&mut w, flags);
        }
        None => w.u8(0),
    }
    w.buf
}

/// Size in bytes of the serialized representation without materialising it is not
/// provided; callers that only need the size can use [`DataBlock::byte_size`], which
/// reports an equivalent figure without copying.
fn write_column(w: &mut Writer, column: &BlockColumn, rows: usize) {
    // compression tag
    match &column.compression {
        ColumnCompression::SingleValue(_) => w.u8(TAG_SINGLE),
        ColumnCompression::Truncated { .. } => w.u8(TAG_TRUNC),
        ColumnCompression::DictInt { .. } => w.u8(TAG_DICT_INT),
        ColumnCompression::DictStr { .. } => w.u8(TAG_DICT_STR),
        ColumnCompression::Double(_) => w.u8(TAG_DOUBLE),
    }
    // SMA
    write_sma(w, &column.sma);
    // compressed payload
    match &column.compression {
        ColumnCompression::SingleValue(v) => write_value(w, v),
        ColumnCompression::Truncated { min, codes } => {
            w.i64(*min);
            write_codes(w, codes);
        }
        ColumnCompression::DictInt { dict, codes } => {
            w.u32(dict.len() as u32);
            for &v in dict {
                w.i64(v);
            }
            write_codes(w, codes);
        }
        ColumnCompression::DictStr { dict, codes } => {
            w.u32(dict.len() as u32);
            for s in dict {
                w.str(s);
            }
            write_codes(w, codes);
        }
        ColumnCompression::Double(values) => {
            w.u32(values.len() as u32);
            for &v in values {
                w.f64(v);
            }
        }
    }
    // PSMA: rebuilt on load (it is derived data); we only record whether one existed
    // so the loaded block is identical feature-wise.
    w.u8(column.psma.is_some() as u8);
    // validity bitmap
    match &column.validity {
        Some(validity) => {
            w.u8(1);
            debug_assert_eq!(validity.len(), rows);
            write_bitmap(w, validity);
        }
        None => w.u8(0),
    }
    let _ = w.pos();
}

pub(crate) fn write_sma(w: &mut Writer, sma: &Sma) {
    match sma {
        Sma::Int { min, max } => {
            w.u8(1);
            w.i64(*min);
            w.i64(*max);
        }
        Sma::Double { min, max } => {
            w.u8(2);
            w.f64(*min);
            w.f64(*max);
        }
        Sma::Str { min, max } => {
            w.u8(3);
            w.str(min);
            w.str(max);
        }
        Sma::AllNull => w.u8(0),
    }
}

fn write_value(w: &mut Writer, value: &Value) {
    match value {
        Value::Null => w.u8(VALUE_NULL),
        Value::Int(v) => {
            w.u8(VALUE_INT);
            w.i64(*v);
        }
        Value::Double(v) => {
            w.u8(VALUE_DOUBLE);
            w.f64(*v);
        }
        Value::Str(s) => {
            w.u8(VALUE_STR);
            w.str(s);
        }
    }
}

fn write_codes(w: &mut Writer, codes: &CodeVec) {
    w.u8(codes.byte_width() as u8);
    w.u32(codes.len() as u32);
    match codes {
        CodeVec::U8(v) => w.bytes(v),
        CodeVec::U16(v) => {
            for &c in v {
                w.bytes(&c.to_le_bytes());
            }
        }
        CodeVec::U32(v) => {
            for &c in v {
                w.bytes(&c.to_le_bytes());
            }
        }
        CodeVec::U64(v) => {
            for &c in v {
                w.bytes(&c.to_le_bytes());
            }
        }
    }
}

fn write_bitmap(w: &mut Writer, bits: &[bool]) {
    w.u32(bits.len() as u32);
    let mut byte = 0u8;
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            w.u8(byte);
            byte = 0;
        }
    }
    if !bits.len().is_multiple_of(8) {
        w.u8(byte);
    }
}

// --- deserialization ---------------------------------------------------------------

/// Reconstruct a Data Block from its serialized representation.
pub fn from_bytes(bytes: &[u8]) -> Result<DataBlock, LayoutError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(LayoutError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(LayoutError::UnsupportedVersion(version));
    }
    let tuple_count = r.u32()?;
    let column_count = r.u32()? as usize;

    let mut columns = Vec::with_capacity(column_count);
    for _ in 0..column_count {
        columns.push(read_column(&mut r, tuple_count as usize)?);
    }

    let mut block = DataBlock::from_parts(tuple_count, columns);
    if r.u8()? == 1 {
        let flags = read_bitmap(&mut r)?;
        if flags.len() != tuple_count as usize {
            return Err(LayoutError::Corrupt("delete bitmap length mismatch"));
        }
        for (row, &deleted) in flags.iter().enumerate() {
            if deleted {
                block.delete(row);
            }
        }
    }
    Ok(block)
}

fn read_column(r: &mut Reader<'_>, rows: usize) -> Result<BlockColumn, LayoutError> {
    let tag = r.u8()?;
    let sma = read_sma(r)?;
    let compression = match tag {
        TAG_SINGLE => ColumnCompression::SingleValue(read_value(r)?),
        TAG_TRUNC => {
            let min = r.i64()?;
            let codes = read_codes(r)?;
            ColumnCompression::Truncated { min, codes }
        }
        TAG_DICT_INT => {
            let n = r.u32()? as usize;
            let mut dict = Vec::with_capacity(n);
            for _ in 0..n {
                dict.push(r.i64()?);
            }
            let codes = read_codes(r)?;
            ColumnCompression::DictInt { dict, codes }
        }
        TAG_DICT_STR => {
            let n = r.u32()? as usize;
            let mut dict = Vec::with_capacity(n);
            for _ in 0..n {
                dict.push(r.str()?);
            }
            let codes = read_codes(r)?;
            ColumnCompression::DictStr { dict, codes }
        }
        TAG_DOUBLE => {
            let n = r.u32()? as usize;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.f64()?);
            }
            ColumnCompression::Double(values)
        }
        _ => return Err(LayoutError::Corrupt("unknown compression tag")),
    };
    let had_psma = r.u8()? == 1;
    let psma = if had_psma {
        compression.codes().and_then(|codes| {
            Psma::build(
                &(0..codes.len())
                    .map(|i| codes.get(i) as i64)
                    .collect::<Vec<_>>(),
            )
        })
    } else {
        None
    };
    let validity = if r.u8()? == 1 {
        let bits = read_bitmap(r)?;
        if bits.len() != rows {
            return Err(LayoutError::Corrupt("validity bitmap length mismatch"));
        }
        Some(bits)
    } else {
        None
    };
    Ok(BlockColumn {
        compression,
        sma,
        psma,
        validity,
    })
}

pub(crate) fn read_sma(r: &mut Reader<'_>) -> Result<Sma, LayoutError> {
    Ok(match r.u8()? {
        0 => Sma::AllNull,
        1 => Sma::Int {
            min: r.i64()?,
            max: r.i64()?,
        },
        2 => Sma::Double {
            min: r.f64()?,
            max: r.f64()?,
        },
        3 => Sma::Str {
            min: r.str()?,
            max: r.str()?,
        },
        _ => return Err(LayoutError::Corrupt("unknown SMA tag")),
    })
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, LayoutError> {
    Ok(match r.u8()? {
        VALUE_NULL => Value::Null,
        VALUE_INT => Value::Int(r.i64()?),
        VALUE_DOUBLE => Value::Double(r.f64()?),
        VALUE_STR => Value::Str(r.str()?),
        _ => return Err(LayoutError::Corrupt("unknown value tag")),
    })
}

fn read_codes(r: &mut Reader<'_>) -> Result<CodeVec, LayoutError> {
    let width = r.u8()?;
    let len = r.u32()? as usize;
    Ok(match width {
        1 => CodeVec::U8(r.take(len)?.to_vec()),
        2 => {
            let raw = r.take(len * 2)?;
            CodeVec::U16(
                raw.chunks_exact(2)
                    .map(|c| u16::from_le_bytes([c[0], c[1]]))
                    .collect(),
            )
        }
        4 => {
            let raw = r.take(len * 4)?;
            CodeVec::U32(
                raw.chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                    .collect(),
            )
        }
        8 => {
            let raw = r.take(len * 8)?;
            CodeVec::U64(
                raw.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect(),
            )
        }
        _ => return Err(LayoutError::Corrupt("unknown code width")),
    })
}

fn read_bitmap(r: &mut Reader<'_>) -> Result<Vec<bool>, LayoutError> {
    let len = r.u32()? as usize;
    let bytes = r.take(len.div_ceil(8))?;
    Ok((0..len)
        .map(|i| bytes[i / 8] & (1 << (i % 8)) != 0)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{double_column, freeze, int_column, str_column};
    use crate::column::Column;
    use crate::value::DataType;

    fn rich_block() -> DataBlock {
        let ints = int_column((0..5000).map(|i| 100 + i % 700).collect());
        let sparse = int_column(
            (0..5000)
                .map(|i| if i % 2 == 0 { 3 } else { 9_000_000 })
                .collect(),
        );
        let strings = str_column((0..5000).map(|i| format!("cat-{}", i % 11)).collect());
        let doubles = double_column((0..5000).map(|i| i as f64 * 0.125).collect());
        let constant = int_column(vec![77; 5000]);
        let mut nullable = Column::new(DataType::Int);
        for i in 0..5000i64 {
            if i % 13 == 0 {
                nullable.push(Value::Null);
            } else {
                nullable.push(Value::Int(i % 40));
            }
        }
        freeze(&[ints, sparse, strings, doubles, constant, nullable])
    }

    #[test]
    fn roundtrip_preserves_every_value() {
        let block = rich_block();
        let bytes = to_bytes(&block);
        let restored = from_bytes(&bytes).expect("roundtrip");
        assert_eq!(restored.tuple_count(), block.tuple_count());
        assert_eq!(restored.column_count(), block.column_count());
        for row in (0..block.tuple_count() as usize).step_by(97) {
            for col in 0..block.column_count() {
                assert_eq!(
                    restored.get(row, col),
                    block.get(row, col),
                    "row {row} col {col}"
                );
            }
        }
        assert_eq!(restored.layout_combination(), block.layout_combination());
    }

    #[test]
    fn roundtrip_preserves_delete_flags() {
        let mut block = rich_block();
        block.delete(3);
        block.delete(4999);
        let restored = from_bytes(&to_bytes(&block)).unwrap();
        assert!(restored.is_deleted(3));
        assert!(restored.is_deleted(4999));
        assert!(!restored.is_deleted(5));
        assert_eq!(restored.live_tuple_count(), block.live_tuple_count());
    }

    #[test]
    fn roundtrip_rebuilds_psma_equivalently() {
        let block = rich_block();
        let restored = from_bytes(&to_bytes(&block)).unwrap();
        for col in 0..block.column_count() {
            assert_eq!(
                restored.column(col).psma.is_some(),
                block.column(col).psma.is_some(),
                "col {col}"
            );
            if let (Some(a), Some(b)) = (&restored.column(col).psma, &block.column(col).psma) {
                assert_eq!(a, b, "col {col}");
            }
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(from_bytes(b"NOPE"), Err(LayoutError::BadMagic));
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let block = rich_block();
        let bytes = to_bytes(&block);
        let err = from_bytes(&bytes[..bytes.len() / 2]).unwrap_err();
        assert!(matches!(
            err,
            LayoutError::Truncated | LayoutError::Corrupt(_)
        ));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let block = rich_block();
        let mut bytes = to_bytes(&block);
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(from_bytes(&bytes), Err(LayoutError::UnsupportedVersion(99)));
    }

    #[test]
    fn error_display_messages() {
        assert!(LayoutError::BadMagic.to_string().contains("magic"));
        assert!(LayoutError::Truncated.to_string().contains("truncated"));
        assert!(LayoutError::Corrupt("x").to_string().contains("x"));
        assert!(LayoutError::UnsupportedVersion(7).to_string().contains('7'));
    }

    #[test]
    fn serialized_size_tracks_block_size() {
        let block = rich_block();
        let bytes = to_bytes(&block);
        // Serialized form excludes the (derived) PSMA tables but includes everything
        // else; the two size measures should be in the same ballpark.
        let lower = block.byte_size_without_psma() / 2;
        let upper = block.byte_size() * 2;
        assert!(
            bytes.len() > lower && bytes.len() < upper,
            "{} not in ({lower}, {upper})",
            bytes.len()
        );
    }
}
