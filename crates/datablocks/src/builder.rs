//! Freezing cold chunks into Data Blocks.
//!
//! When the storage layer identifies a chunk as cold it is *frozen*: each attribute
//! is compressed with the scheme that is optimal for its value distribution in that
//! chunk, SMAs and PSMAs are computed, and the result becomes an immutable
//! [`DataBlock`]. Freezing may optionally re-order the chunk by a sort attribute to
//! cluster similar values, which sharpens the PSMA ranges (Section 3.2; this is what
//! the paper's Figure 11 experiment does to `l_shipdate`).

use crate::block::{BlockColumn, DataBlock};
use crate::column::{Column, ColumnData};
use crate::compression::ColumnCompression;
use crate::psma::Psma;
use crate::sma::Sma;
use crate::value::DataType;

/// Freeze a chunk (one [`Column`] per attribute, all of equal length) into a Data
/// Block, preserving the insertion order of the records.
///
/// # Panics
///
/// Panics if the columns have differing lengths or the chunk is empty — both are
/// storage-layer invariants, not runtime conditions.
pub fn freeze(columns: &[Column]) -> DataBlock {
    assert!(
        !columns.is_empty(),
        "cannot freeze a chunk with no attributes"
    );
    let rows = columns[0].len();
    assert!(rows > 0, "cannot freeze an empty chunk");
    assert!(
        columns.iter().all(|c| c.len() == rows),
        "all attributes of a chunk must have the same length"
    );
    assert!(
        rows <= u32::MAX as usize,
        "a Data Block addresses records with 32-bit positions"
    );

    let block_columns = columns.iter().map(freeze_column).collect();
    DataBlock::from_parts(rows as u32, block_columns)
}

/// Freeze a chunk after re-ordering its records by ascending value of attribute
/// `sort_by` (NULLs first). All attributes are permuted consistently, so the block
/// still represents the same set of tuples.
pub fn freeze_sorted(columns: &[Column], sort_by: usize) -> DataBlock {
    assert!(sort_by < columns.len(), "sort attribute out of range");
    let rows = columns[0].len();
    let mut permutation: Vec<u32> = (0..rows as u32).collect();
    let key = &columns[sort_by];
    permutation.sort_by(|&a, &b| key.get(a as usize).total_cmp(&key.get(b as usize)));

    let reordered: Vec<Column> = columns
        .iter()
        .map(|c| apply_permutation(c, &permutation))
        .collect();
    freeze(&reordered)
}

/// Apply a row permutation to a column (row `i` of the result is row `permutation[i]`
/// of the input).
pub fn apply_permutation(column: &Column, permutation: &[u32]) -> Column {
    let mut data = ColumnData::with_capacity(column.data_type(), permutation.len());
    match (&column.data, &mut data) {
        (ColumnData::Int(src), ColumnData::Int(dst)) => {
            dst.extend(permutation.iter().map(|&i| src[i as usize]));
        }
        (ColumnData::Double(src), ColumnData::Double(dst)) => {
            dst.extend(permutation.iter().map(|&i| src[i as usize]));
        }
        (ColumnData::Str(src), ColumnData::Str(dst)) => {
            dst.extend(permutation.iter().map(|&i| src[i as usize].clone()));
        }
        _ => unreachable!("ColumnData::with_capacity preserves the type"),
    }
    let validity = column
        .validity
        .as_ref()
        .map(|v| permutation.iter().map(|&i| v[i as usize]).collect());
    Column { data, validity }
}

fn freeze_column(column: &Column) -> BlockColumn {
    let sma = Sma::compute(column);
    let compression = ColumnCompression::compress(column);
    // The PSMA indexes the compressed code words: for truncation the code *is* the
    // delta to the SMA minimum (exactly the paper's Δ(v)), for dictionaries the code
    // order mirrors the value order because the dictionaries are order-preserving.
    let psma = compression.codes().and_then(|codes| {
        Psma::build(
            &(0..codes.len())
                .map(|i| codes.get(i) as i64)
                .collect::<Vec<_>>(),
        )
    });
    // Keep the validity bitmap only if the column actually contains NULLs (and is not
    // the degenerate all-NULL single value, which needs no bitmap).
    let has_nulls = column.null_count() > 0;
    let all_null = column.null_count() == column.len();
    let validity = if has_nulls && !all_null {
        column.validity.clone()
    } else {
        None
    };
    BlockColumn {
        compression,
        sma,
        psma,
        validity,
    }
}

/// Split a large chunk column-set into consecutive sub-chunks of at most
/// `block_capacity` rows and freeze each one. Convenience used by the workload
/// loaders and the Figure 10 block-size sweep.
pub fn freeze_chunked(columns: &[Column], block_capacity: usize) -> Vec<DataBlock> {
    assert!(block_capacity > 0);
    let rows = columns.first().map(|c| c.len()).unwrap_or(0);
    let mut blocks = Vec::new();
    let mut start = 0usize;
    while start < rows {
        let end = (start + block_capacity).min(rows);
        let slice: Vec<Column> = columns
            .iter()
            .map(|c| slice_column(c, start, end))
            .collect();
        blocks.push(freeze(&slice));
        start = end;
    }
    blocks
}

/// Copy rows `[from, to)` of a column into a new column.
pub fn slice_column(column: &Column, from: usize, to: usize) -> Column {
    let data = match &column.data {
        ColumnData::Int(v) => ColumnData::Int(v[from..to].to_vec()),
        ColumnData::Double(v) => ColumnData::Double(v[from..to].to_vec()),
        ColumnData::Str(v) => ColumnData::Str(v[from..to].to_vec()),
    };
    let validity = column.validity.as_ref().map(|v| v[from..to].to_vec());
    Column { data, validity }
}

/// Total uncompressed in-memory size of a chunk in bytes (for compression-ratio
/// reporting).
pub fn uncompressed_size(columns: &[Column]) -> usize {
    columns.iter().map(|c| c.byte_size()).sum()
}

/// Helper: an integer column without NULLs.
pub fn int_column(values: Vec<i64>) -> Column {
    Column::from_data(ColumnData::Int(values))
}

/// Helper: a double column without NULLs.
pub fn double_column(values: Vec<f64>) -> Column {
    Column::from_data(ColumnData::Double(values))
}

/// Helper: a string column without NULLs.
pub fn str_column(values: Vec<String>) -> Column {
    Column::from_data(ColumnData::Str(values))
}

/// Helper: an empty column of a given type (used when assembling chunks row by row).
pub fn empty_column(ty: DataType) -> Column {
    Column::new(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn freeze_roundtrips_every_value() {
        let a = int_column((0..1000).map(|i| i % 97).collect());
        let b = str_column((0..1000).map(|i| format!("v{}", i % 13)).collect());
        let c = double_column((0..1000).map(|i| i as f64 * 0.25).collect());
        let block = freeze(&[a.clone(), b.clone(), c.clone()]);
        for row in (0..1000).step_by(37) {
            assert_eq!(block.get(row, 0), a.get(row));
            assert_eq!(block.get(row, 1), b.get(row));
            assert_eq!(block.get(row, 2), c.get(row));
        }
    }

    #[test]
    fn freeze_preserves_nulls() {
        let mut col = Column::new(DataType::Int);
        for i in 0..100 {
            if i % 10 == 0 {
                col.push(Value::Null);
            } else {
                col.push(Value::Int(i));
            }
        }
        let block = freeze(&[col.clone()]);
        for row in 0..100 {
            assert_eq!(block.get(row, 0), col.get(row), "row {row}");
        }
    }

    #[test]
    fn freeze_sorted_clusters_values() {
        let key = int_column(vec![5, 1, 9, 3, 7]);
        let payload = str_column(vec![
            "e".into(),
            "a".into(),
            "i".into(),
            "c".into(),
            "g".into(),
        ]);
        let block = freeze_sorted(&[key, payload], 0);
        let keys: Vec<Value> = (0..5).map(|r| block.get(r, 0)).collect();
        assert_eq!(
            keys,
            vec![
                Value::Int(1),
                Value::Int(3),
                Value::Int(5),
                Value::Int(7),
                Value::Int(9)
            ]
        );
        // The payload column is permuted consistently.
        assert_eq!(block.get(0, 1), Value::Str("a".into()));
        assert_eq!(block.get(4, 1), Value::Str("i".into()));
    }

    #[test]
    fn freeze_chunked_splits_rows() {
        let col = int_column((0..2500).collect());
        let blocks = freeze_chunked(&[col], 1000);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0].tuple_count(), 1000);
        assert_eq!(blocks[2].tuple_count(), 500);
        assert_eq!(blocks[2].get(0, 0), Value::Int(2000));
    }

    #[test]
    fn compression_shrinks_typical_chunks() {
        // low-cardinality strings + dense ints compress well below uncompressed size
        let a = int_column((0..10_000).map(|i| 20_000 + (i % 500)).collect());
        let b = str_column((0..10_000).map(|i| format!("status-{}", i % 4)).collect());
        let uncompressed = uncompressed_size(&[a.clone(), b.clone()]);
        let block = freeze(&[a, b]);
        assert!(
            block.byte_size() * 3 < uncompressed,
            "expected >3x compression, got {} vs {}",
            block.byte_size(),
            uncompressed
        );
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn freeze_rejects_ragged_chunks() {
        let a = int_column(vec![1, 2, 3]);
        let b = int_column(vec![1]);
        freeze(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "empty chunk")]
    fn freeze_rejects_empty_chunks() {
        freeze(&[int_column(vec![])]);
    }
}
