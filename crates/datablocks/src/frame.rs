//! The on-disk *frame* around a serialized Data Block: checksum, section offsets and
//! a summary section readable without touching the payload.
//!
//! [`crate::layout`] defines the flat in-memory byte representation of a block; this
//! module wraps it for secondary storage. A frame prepends a fixed
//! [`FRAME_HEADER_LEN`]-byte header (magic, version, checksums, section offsets)
//! and a small **summary section**
//! holding exactly the metadata a block *directory* wants to keep hot in memory —
//! tuple/deleted counts and the per-attribute SMAs — so a store can
//!
//! * rebuild its directory from a file by reading headers and summaries only
//!   ([`read_header`] / [`read_summary`] never look at payload bytes), and
//! * evaluate SMA block-skipping for **cold** blocks without any payload I/O
//!   ([`BlockSummary::may_match`]), preserving the paper's scan-skipping behaviour
//!   even for blocks that have been evicted to disk.
//!
//! The payload is protected by an FNV-1a 64 checksum so a torn write or bit rot is
//! reported as [`FrameError::ChecksumMismatch`] instead of being decoded into
//! garbage. The byte-exact format is specified in `crates/datablocks/README.md`.

use crate::block::DataBlock;
use crate::layout::{self, LayoutError, Reader, Writer};
use crate::scan::{Restriction, ScanOptions};
use crate::sma::Sma;
use dbsimd::CmpOp;

/// Magic bytes identifying a Data Block frame.
pub const FRAME_MAGIC: &[u8; 4] = b"DBFM";
/// Current version of the frame format.
pub const FRAME_VERSION: u32 = 1;
/// Size of the fixed frame header in bytes.
pub const FRAME_HEADER_LEN: usize = 40;

/// Magic bytes identifying a block-store *manifest* record.
pub const MANIFEST_MAGIC: &[u8; 4] = b"DBMF";
/// Current version of the manifest record format.
pub const MANIFEST_VERSION: u32 = 1;
/// Size of the fixed manifest record header (magic, version, checksum, body
/// length) in bytes.
pub const MANIFEST_HEADER_LEN: usize = 20;

/// Errors produced when decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer does not start with the frame magic.
    BadMagic,
    /// The frame declares an unsupported format version.
    UnsupportedVersion(u32),
    /// The buffer ended before the declared content.
    Truncated,
    /// The stored checksum does not match the recomputed one.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum recomputed over the frame body.
        actual: u64,
    },
    /// A header or summary field holds an invalid value.
    Corrupt(&'static str),
    /// The payload failed to decode as a Data Block.
    Layout(LayoutError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not a Data Block frame (bad magic)"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Truncated => write!(f, "Data Block frame is truncated"),
            FrameError::ChecksumMismatch { stored, actual } => write!(
                f,
                "frame checksum mismatch (stored {stored:#018x}, actual {actual:#018x})"
            ),
            FrameError::Corrupt(what) => write!(f, "corrupt Data Block frame: {what}"),
            FrameError::Layout(err) => write!(f, "frame payload does not decode: {err}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Layout(err) => Some(err),
            _ => None,
        }
    }
}

impl From<LayoutError> for FrameError {
    fn from(err: LayoutError) -> FrameError {
        // A short buffer surfaces identically whether the reader stopped in the
        // summary or the payload.
        match err {
            LayoutError::Truncated => FrameError::Truncated,
            other => FrameError::Layout(other),
        }
    }
}

/// FNV-1a 64-bit, the checksum protecting the frame body (summary + payload). Not
/// cryptographic — it detects torn writes and bit rot, which is all a local block
/// store needs, and it is dependency-free.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The decoded fixed-size frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame format version.
    pub version: u32,
    /// FNV-1a 64 checksum over the frame body (summary section + payload section).
    pub checksum: u64,
    /// FNV-1a 64 checksum over the summary section alone, so a directory rebuild
    /// ([`read_summary`]) can verify its input without reading the payload — a
    /// bit-flipped SMA must not silently prune blocks that contain matches.
    pub summary_checksum: u64,
    /// Byte offset of the summary section from the frame start.
    pub summary_off: u32,
    /// Length of the summary section in bytes.
    pub summary_len: u32,
    /// Byte offset of the payload section from the frame start.
    pub payload_off: u32,
    /// Length of the payload section in bytes.
    pub payload_len: u32,
}

impl FrameHeader {
    /// Total size of the frame (header + summary + payload) in bytes. This is what a
    /// store walking a file of concatenated frames advances by.
    pub fn frame_len(&self) -> usize {
        self.payload_off as usize + self.payload_len as usize
    }
}

/// Per-attribute slice of a [`BlockSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Min/max of the attribute in the summarised block.
    pub sma: Sma,
    /// Did the attribute carry a Positional SMA? Purely informational for
    /// directory introspection (e.g. size accounting, deciding whether a scan of
    /// this block can narrow ranges): PSMAs are derived data, and it is the
    /// *payload's* `had_psma` flag ([`crate::layout`]) that drives the rebuild on
    /// load — a reloaded block is feature-identical regardless of this field.
    pub has_psma: bool,
}

/// The directory-resident summary of one frozen block: everything SMA pruning and
/// size accounting need, extracted without deserializing the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSummary {
    /// Records in the block (including deleted).
    pub tuple_count: u32,
    /// Records carrying a delete flag.
    pub deleted_count: u32,
    /// One summary per attribute, in attribute order.
    pub columns: Vec<ColumnSummary>,
}

impl BlockSummary {
    /// Summarise an in-memory block (what a store records at write-out time).
    pub fn of(block: &DataBlock) -> BlockSummary {
        BlockSummary {
            tuple_count: block.tuple_count(),
            deleted_count: block.tuple_count() - block.live_tuple_count(),
            columns: block
                .columns()
                .iter()
                .map(|c| ColumnSummary {
                    sma: c.sma.clone(),
                    has_psma: c.psma.is_some(),
                })
                .collect(),
        }
    }

    /// Records not marked deleted.
    pub fn live_tuple_count(&self) -> u32 {
        self.tuple_count - self.deleted_count
    }

    /// Can any record of the summarised block match all `restrictions`?
    ///
    /// This replicates exactly the **SMA** block-skipping gate of
    /// [`crate::scan::plan_scan`] — same [`Sma::may_match_cmp`] /
    /// [`Sma::may_match_between`] calls on the same SMA values, gated on
    /// [`ScanOptions::use_sma`] — so a scan that prunes a cold block from its summary
    /// reports byte-identical results *and counters* to one that loads the block and
    /// lets the scan planner rule it out. `false` means the block is guaranteed
    /// empty of matches and its payload never needs to be read.
    ///
    /// The SMA gate is the only rule-out the summary can decide: the planner's
    /// remaining rule-out causes (dictionary probes, single-value evaluation,
    /// `NULL`-validity reasoning) need data that is deliberately not summarised, so
    /// a block ruled out for one of those reasons still costs one load before it is
    /// counted as skipped. Skip *counters* agree with an all-in-memory scan either
    /// way; only the zero-I/O guarantee is scoped to SMA-prunable restrictions.
    pub fn may_match(&self, restrictions: &[Restriction], options: &ScanOptions) -> bool {
        if !options.use_sma {
            return true;
        }
        for restriction in restrictions {
            let Some(column) = self.columns.get(restriction.column()) else {
                continue;
            };
            let skip = match restriction {
                Restriction::Cmp { op, value, .. } if *op != CmpOp::Ne => {
                    !column.sma.may_match_cmp(*op, value)
                }
                Restriction::Between { lo, hi, .. } => !column.sma.may_match_between(lo, hi),
                _ => false,
            };
            if skip {
                return false;
            }
        }
        true
    }
}

/// Serialize a block into a complete frame: header, summary section, payload.
pub fn to_frame(block: &DataBlock) -> Vec<u8> {
    let summary = write_summary(&BlockSummary::of(block));
    let payload = layout::to_bytes(block);

    let summary_off = FRAME_HEADER_LEN as u32;
    let payload_off = summary_off + summary.len() as u32;

    let mut body = Vec::with_capacity(summary.len() + payload.len());
    body.extend_from_slice(&summary);
    body.extend_from_slice(&payload);
    let checksum = fnv1a64(&body);
    let summary_checksum = fnv1a64(&summary);

    let mut w = Writer::new();
    w.bytes(FRAME_MAGIC);
    w.u32(FRAME_VERSION);
    w.u64(checksum);
    w.u64(summary_checksum);
    w.u32(summary_off);
    w.u32(summary.len() as u32);
    w.u32(payload_off);
    w.u32(payload.len() as u32);
    debug_assert_eq!(w.buf.len(), FRAME_HEADER_LEN);
    w.bytes(&body);
    w.buf
}

/// Decode and validate the fixed header of a frame. Only the first
/// [`FRAME_HEADER_LEN`] bytes are examined — the checksum is **not** verified (that
/// requires the body; see [`from_frame`]).
pub fn read_header(bytes: &[u8]) -> Result<FrameHeader, FrameError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = r.u32()?;
    if version != FRAME_VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let header = FrameHeader {
        version,
        checksum: r.u64()?,
        summary_checksum: r.u64()?,
        summary_off: r.u32()?,
        summary_len: r.u32()?,
        payload_off: r.u32()?,
        payload_len: r.u32()?,
    };
    // checked_add: a crafted/corrupt header must come back as a FrameError, never
    // as an arithmetic panic inside a scan worker.
    let summary_end = header.summary_off.checked_add(header.summary_len);
    if (header.summary_off as usize) < FRAME_HEADER_LEN
        || summary_end != Some(header.payload_off)
        || header.payload_off.checked_add(header.payload_len).is_none()
    {
        return Err(FrameError::Corrupt("inconsistent section offsets"));
    }
    Ok(header)
}

/// Decode the summary section of a frame without reading the payload, verifying
/// the summary checksum. `bytes` only needs to cover the header and summary
/// sections — a store reopening a file reads exactly `FRAME_HEADER_LEN +
/// summary_len` bytes per block. The *body* checksum is not verified here (it
/// covers the payload, which is deliberately not read); payload integrity is
/// checked when the block itself is loaded.
pub fn read_summary(bytes: &[u8]) -> Result<BlockSummary, FrameError> {
    let header = read_header(bytes)?;
    let start = header.summary_off as usize;
    let end = start + header.summary_len as usize;
    if bytes.len() < end {
        return Err(FrameError::Truncated);
    }
    let section = &bytes[start..end];
    let actual = fnv1a64(section);
    if actual != header.summary_checksum {
        return Err(FrameError::ChecksumMismatch {
            stored: header.summary_checksum,
            actual,
        });
    }
    parse_summary(section)
}

/// Decode a whole frame back into a [`DataBlock`], verifying the checksum first.
pub fn from_frame(bytes: &[u8]) -> Result<DataBlock, FrameError> {
    let header = read_header(bytes)?;
    let body_start = header.summary_off as usize;
    let end = header.frame_len();
    if bytes.len() < end {
        return Err(FrameError::Truncated);
    }
    let actual = fnv1a64(&bytes[body_start..end]);
    if actual != header.checksum {
        return Err(FrameError::ChecksumMismatch {
            stored: header.checksum,
            actual,
        });
    }
    let payload = &bytes[header.payload_off as usize..end];
    Ok(layout::from_bytes(payload)?)
}

// ------------------------------------------------------------- manifest records

/// One record of a block-store **manifest**: the append-only log from which
/// [`crate::frame`]-aware stores rebuild their directory on reopen without
/// scanning block payloads.
///
/// A manifest file is a plain concatenation of records, each wrapped in a
/// fixed [`MANIFEST_HEADER_LEN`]-byte header (magic, version, FNV-1a 64 body
/// checksum, body length). The checksum makes a torn final record — the bytes a
/// crash leaves behind mid-append — detectable: replay stops at the first record
/// that is truncated or fails validation and discards the tail.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestRecord {
    /// Set directory entry `block_id`: the block's frame lives at `offset`/`len`
    /// of generation file `generation`, with the given hot summary. Emitted for
    /// appends *and* rewrites — replay is last-writer-wins per `block_id`, so the
    /// latest `Put` for an id (including its tombstone counts, carried in the
    /// summary) defines the reopened directory.
    Put {
        /// Directory index of the block.
        block_id: u32,
        /// Generation file holding the frame (0 is the store's base file).
        generation: u32,
        /// Byte offset of the frame within the generation file.
        offset: u64,
        /// Length of the frame in bytes.
        len: u32,
        /// The block's directory summary (tuple/deleted counts, per-column SMAs).
        summary: BlockSummary,
    },
    /// Directory reset marking the start of a **checkpoint**: the `entries`
    /// [`ManifestRecord::Put`]s that follow form the complete directory, and
    /// `generation` is the store's current append generation. Written as the
    /// first record of a freshly checkpointed manifest (close, compaction).
    Snapshot {
        /// Append generation at checkpoint time.
        generation: u32,
        /// Number of `Put` records that follow.
        entries: u32,
    },
}

const MANIFEST_KIND_PUT: u8 = 1;
const MANIFEST_KIND_SNAPSHOT: u8 = 2;

/// Serialize one manifest record (header + body).
pub fn manifest_record_to_bytes(record: &ManifestRecord) -> Vec<u8> {
    let mut body = Writer::new();
    match record {
        ManifestRecord::Put {
            block_id,
            generation,
            offset,
            len,
            summary,
        } => {
            body.u8(MANIFEST_KIND_PUT);
            body.u32(*block_id);
            body.u32(*generation);
            body.u64(*offset);
            body.u32(*len);
            body.bytes(&write_summary(summary));
        }
        ManifestRecord::Snapshot {
            generation,
            entries,
        } => {
            body.u8(MANIFEST_KIND_SNAPSHOT);
            body.u32(*generation);
            body.u32(*entries);
        }
    }
    let mut w = Writer::new();
    w.bytes(MANIFEST_MAGIC);
    w.u32(MANIFEST_VERSION);
    w.u64(fnv1a64(&body.buf));
    w.u32(body.buf.len() as u32);
    debug_assert_eq!(w.buf.len(), MANIFEST_HEADER_LEN);
    w.bytes(&body.buf);
    w.buf
}

/// Decode the manifest record at the start of `bytes`, returning it together with
/// the total number of bytes it occupies (header + body) so a caller can walk a
/// concatenated record log. A record that is cut short, carries a wrong checksum
/// or fails structural validation is an error — replay treats the first such
/// record as the torn tail of the log.
pub fn read_manifest_record(bytes: &[u8]) -> Result<(ManifestRecord, usize), FrameError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MANIFEST_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = r.u32()?;
    if version != MANIFEST_VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let checksum = r.u64()?;
    let body_len = r.u32()? as usize;
    let total = MANIFEST_HEADER_LEN
        .checked_add(body_len)
        .ok_or(FrameError::Corrupt("manifest body length overflows"))?;
    if bytes.len() < total {
        return Err(FrameError::Truncated);
    }
    let body = &bytes[MANIFEST_HEADER_LEN..total];
    let actual = fnv1a64(body);
    if actual != checksum {
        return Err(FrameError::ChecksumMismatch {
            stored: checksum,
            actual,
        });
    }
    let mut b = Reader::new(body);
    let record = match b.u8()? {
        MANIFEST_KIND_PUT => {
            let block_id = b.u32()?;
            let generation = b.u32()?;
            let offset = b.u64()?;
            let len = b.u32()?;
            let summary = parse_summary(&body[1 + 4 + 4 + 8 + 4..])?;
            ManifestRecord::Put {
                block_id,
                generation,
                offset,
                len,
                summary,
            }
        }
        MANIFEST_KIND_SNAPSHOT => ManifestRecord::Snapshot {
            generation: b.u32()?,
            entries: b.u32()?,
        },
        _ => return Err(FrameError::Corrupt("unknown manifest record kind")),
    };
    Ok((record, total))
}

/// Walk a manifest byte log from the front, collecting every valid record, and
/// report the length of the **valid prefix**. Replay stops at the first record
/// that fails to decode — a torn final record from a crashed append, or
/// trailing corruption — whose error is returned alongside so callers can
/// distinguish a clean log (`None`) from a truncated one.
pub fn replay_manifest(bytes: &[u8]) -> (Vec<ManifestRecord>, usize, Option<FrameError>) {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        match read_manifest_record(&bytes[offset..]) {
            Ok((record, consumed)) => {
                records.push(record);
                offset += consumed;
            }
            Err(err) => return (records, offset, Some(err)),
        }
    }
    (records, offset, None)
}

fn write_summary(summary: &BlockSummary) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(summary.tuple_count);
    w.u32(summary.deleted_count);
    w.u32(summary.columns.len() as u32);
    for column in &summary.columns {
        layout::write_sma(&mut w, &column.sma);
        w.u8(column.has_psma as u8);
    }
    w.buf
}

fn parse_summary(bytes: &[u8]) -> Result<BlockSummary, FrameError> {
    let mut r = Reader::new(bytes);
    let tuple_count = r.u32()?;
    let deleted_count = r.u32()?;
    if deleted_count > tuple_count {
        return Err(FrameError::Corrupt("deleted count exceeds tuple count"));
    }
    let column_count = r.u32()? as usize;
    let mut columns = Vec::with_capacity(column_count);
    for _ in 0..column_count {
        let sma = layout::read_sma(&mut r)?;
        let has_psma = r.u8()? == 1;
        columns.push(ColumnSummary { sma, has_psma });
    }
    Ok(BlockSummary {
        tuple_count,
        deleted_count,
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{double_column, freeze, int_column, str_column};
    use crate::scan::plan_scan;
    use crate::value::Value;

    fn block() -> DataBlock {
        let ids = int_column((0..3000).collect());
        let grp = str_column((0..3000).map(|i| format!("g{}", i % 7)).collect());
        let amount = double_column((0..3000).map(|i| i as f64 * 0.5).collect());
        freeze(&[ids, grp, amount])
    }

    #[test]
    fn frame_roundtrip_preserves_block() {
        let original = block();
        let frame = to_frame(&original);
        let restored = from_frame(&frame).expect("roundtrip");
        assert_eq!(restored.tuple_count(), original.tuple_count());
        for row in (0..3000).step_by(131) {
            for col in 0..original.column_count() {
                assert_eq!(restored.get(row, col), original.get(row, col));
            }
        }
    }

    #[test]
    fn summary_readable_without_payload() {
        let original = block();
        let frame = to_frame(&original);
        let header = read_header(&frame).unwrap();
        // A store reopening a file reads only this prefix per block.
        let prefix = &frame[..header.payload_off as usize];
        let summary = read_summary(prefix).unwrap();
        assert_eq!(summary, BlockSummary::of(&original));
        assert_eq!(summary.tuple_count, 3000);
        assert_eq!(summary.live_tuple_count(), 3000);
        assert_eq!(summary.columns.len(), 3);
        assert_eq!(summary.columns[0].sma, original.column(0).sma);
    }

    #[test]
    fn summary_records_deletions() {
        let mut b = block();
        b.delete(0);
        b.delete(17);
        let summary = read_summary(&to_frame(&b)).unwrap();
        assert_eq!(summary.deleted_count, 2);
        assert_eq!(summary.live_tuple_count(), 2998);
    }

    #[test]
    fn summary_pruning_matches_plan_scan_rule_out() {
        let b = block();
        let summary = BlockSummary::of(&b);
        let options = ScanOptions::default();
        let cases = vec![
            vec![Restriction::between(0, 100i64, 199i64)], // inside the domain
            vec![Restriction::between(0, 5000i64, 6000i64)], // outside: prune
            vec![Restriction::cmp(0, CmpOp::Lt, 0i64)],    // outside: prune
            vec![Restriction::eq(1, "g3")],                // string inside
            vec![Restriction::eq(1, "zzz")],               // string outside: prune
            vec![
                Restriction::between(0, 0i64, 10i64),
                Restriction::eq(1, "zzz"), // second restriction prunes
            ],
        ];
        for restrictions in cases {
            let plan = plan_scan(&b, &restrictions, &options);
            assert_eq!(
                summary.may_match(&restrictions, &options),
                !plan.is_ruled_out(),
                "{restrictions:?}"
            );
        }
    }

    #[test]
    fn summary_pruning_disabled_with_sma_off() {
        let summary = BlockSummary::of(&block());
        let options = ScanOptions {
            use_sma: false,
            ..ScanOptions::default()
        };
        assert!(summary.may_match(&[Restriction::between(0, 5000i64, 6000i64)], &options));
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let mut frame = to_frame(&block());
        let last = frame.len() - 1;
        frame[last] ^= 0xff; // flip payload bits
        assert!(matches!(
            from_frame(&frame),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        // flipping the stored checksum itself is also caught
        let mut frame2 = to_frame(&block());
        frame2[8] ^= 0x01;
        assert!(matches!(
            from_frame(&frame2),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_summary_is_rejected_without_payload() {
        let mut frame = to_frame(&block());
        frame[FRAME_HEADER_LEN] ^= 0xff; // flip a summary byte (tuple_count)
        assert!(matches!(
            read_summary(&frame),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        // the body checksum covers the summary too, so full decode also rejects it
        assert!(matches!(
            from_frame(&frame),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn overflowing_header_offsets_are_rejected_not_panicking() {
        let mut frame = to_frame(&block());
        frame[24..28].copy_from_slice(&u32::MAX.to_le_bytes()); // summary_off
        frame[28..32].copy_from_slice(&1u32.to_le_bytes()); // summary_len
        assert_eq!(
            read_header(&frame),
            Err(FrameError::Corrupt("inconsistent section offsets"))
        );
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let frame = to_frame(&block());
        for cut in [
            0,
            3,
            FRAME_HEADER_LEN - 1,
            FRAME_HEADER_LEN + 2,
            frame.len() - 1,
        ] {
            let err = from_frame(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated | FrameError::BadMagic),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut frame = to_frame(&block());
        frame[4..8].copy_from_slice(&42u32.to_le_bytes());
        assert_eq!(from_frame(&frame), Err(FrameError::UnsupportedVersion(42)));
        assert_eq!(
            read_summary(&frame),
            Err(FrameError::UnsupportedVersion(42))
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(
            read_header(b"NOPEnopeNOPEnopeNOPEnopeNOPEnope"),
            Err(FrameError::BadMagic)
        );
    }

    #[test]
    fn inconsistent_offsets_are_rejected() {
        let mut frame = to_frame(&block());
        frame[24..28].copy_from_slice(&7u32.to_le_bytes()); // payload_off != summary end
        assert_eq!(
            read_header(&frame),
            Err(FrameError::Corrupt("inconsistent section offsets"))
        );
    }

    #[test]
    fn single_value_and_null_columns_summarise() {
        let constant = int_column(vec![9; 500]);
        let mut nullable = crate::column::Column::new(crate::value::DataType::Int);
        for _ in 0..500 {
            nullable.push(Value::Null);
        }
        let b = freeze(&[constant, nullable]);
        let summary = read_summary(&to_frame(&b)).unwrap();
        assert_eq!(summary.columns[1].sma, Sma::AllNull);
        // an all-NULL attribute prunes every value restriction
        assert!(!summary.may_match(&[Restriction::eq(1, 9i64)], &ScanOptions::default()));
    }

    #[test]
    fn manifest_record_roundtrip() {
        let summary = BlockSummary::of(&block());
        let put = ManifestRecord::Put {
            block_id: 7,
            generation: 3,
            offset: 4096,
            len: 1234,
            summary: summary.clone(),
        };
        let bytes = manifest_record_to_bytes(&put);
        let (decoded, consumed) = read_manifest_record(&bytes).unwrap();
        assert_eq!(decoded, put);
        assert_eq!(consumed, bytes.len());

        let snap = ManifestRecord::Snapshot {
            generation: 2,
            entries: 42,
        };
        let bytes = manifest_record_to_bytes(&snap);
        let (decoded, consumed) = read_manifest_record(&bytes).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn manifest_replay_walks_concatenated_records() {
        let summary = BlockSummary::of(&block());
        let records = vec![
            ManifestRecord::Snapshot {
                generation: 0,
                entries: 1,
            },
            ManifestRecord::Put {
                block_id: 0,
                generation: 0,
                offset: 0,
                len: 100,
                summary: summary.clone(),
            },
            ManifestRecord::Put {
                block_id: 0,
                generation: 0,
                offset: 100,
                len: 90,
                summary,
            },
        ];
        let mut log = Vec::new();
        for record in &records {
            log.extend_from_slice(&manifest_record_to_bytes(record));
        }
        let (replayed, valid_len, err) = replay_manifest(&log);
        assert_eq!(replayed, records);
        assert_eq!(valid_len, log.len());
        assert!(err.is_none());
    }

    #[test]
    fn manifest_torn_final_record_is_detected_and_prefix_kept() {
        let summary = BlockSummary::of(&block());
        let full = manifest_record_to_bytes(&ManifestRecord::Put {
            block_id: 0,
            generation: 0,
            offset: 0,
            len: 100,
            summary: summary.clone(),
        });
        let torn = manifest_record_to_bytes(&ManifestRecord::Put {
            block_id: 1,
            generation: 0,
            offset: 100,
            len: 200,
            summary,
        });
        // a crash can cut the final record anywhere: inside the header, right
        // after it, or inside the body
        for cut in [1, 4, MANIFEST_HEADER_LEN - 1, MANIFEST_HEADER_LEN + 3] {
            let mut log = full.clone();
            log.extend_from_slice(&torn[..cut]);
            let (records, valid_len, err) = replay_manifest(&log);
            assert_eq!(records.len(), 1, "cut {cut}");
            assert_eq!(valid_len, full.len(), "cut {cut}");
            assert!(
                matches!(err, Some(FrameError::Truncated | FrameError::BadMagic)),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn manifest_bit_flipped_checksum_is_rejected() {
        let summary = BlockSummary::of(&block());
        let mut bytes = manifest_record_to_bytes(&ManifestRecord::Put {
            block_id: 0,
            generation: 0,
            offset: 0,
            len: 100,
            summary,
        });
        // flip one byte of the body (the block_id)
        bytes[MANIFEST_HEADER_LEN + 1] ^= 0xff;
        assert!(matches!(
            read_manifest_record(&bytes),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        // flip the stored checksum itself
        let mut bytes2 = manifest_record_to_bytes(&ManifestRecord::Snapshot {
            generation: 0,
            entries: 0,
        });
        bytes2[8] ^= 0x01;
        assert!(matches!(
            read_manifest_record(&bytes2),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn manifest_version_and_kind_are_validated() {
        let mut bytes = manifest_record_to_bytes(&ManifestRecord::Snapshot {
            generation: 0,
            entries: 0,
        });
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            read_manifest_record(&bytes).unwrap_err(),
            FrameError::UnsupportedVersion(9)
        );
        // an unknown record kind is corrupt, not silently skipped — but the
        // checksum covers the body, so the kind byte must be re-signed to reach
        // the structural check
        let mut body = vec![99u8];
        body.extend_from_slice(&0u32.to_le_bytes());
        let mut forged = Vec::new();
        forged.extend_from_slice(MANIFEST_MAGIC);
        forged.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        forged.extend_from_slice(&fnv1a64(&body).to_le_bytes());
        forged.extend_from_slice(&(body.len() as u32).to_le_bytes());
        forged.extend_from_slice(&body);
        assert_eq!(
            read_manifest_record(&forged).unwrap_err(),
            FrameError::Corrupt("unknown manifest record kind")
        );
    }

    #[test]
    fn error_display_messages() {
        assert!(FrameError::BadMagic.to_string().contains("magic"));
        assert!(FrameError::Truncated.to_string().contains("truncated"));
        assert!(FrameError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(FrameError::ChecksumMismatch {
            stored: 1,
            actual: 2
        }
        .to_string()
        .contains("checksum"));
        assert!(FrameError::Corrupt("x").to_string().contains('x'));
        let layout_err = FrameError::Layout(LayoutError::BadMagic);
        assert!(layout_err.to_string().contains("magic"));
        assert!(std::error::Error::source(&layout_err).is_some());
    }
}
