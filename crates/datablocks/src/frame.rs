//! The on-disk *frame* around a serialized Data Block: checksum, section offsets and
//! a summary section readable without touching the payload.
//!
//! [`crate::layout`] defines the flat in-memory byte representation of a block; this
//! module wraps it for secondary storage. A frame prepends a fixed
//! [`FRAME_HEADER_LEN`]-byte header (magic, version, checksums, section offsets)
//! and a small **summary section**
//! holding exactly the metadata a block *directory* wants to keep hot in memory —
//! tuple/deleted counts and the per-attribute SMAs — so a store can
//!
//! * rebuild its directory from a file by reading headers and summaries only
//!   ([`read_header`] / [`read_summary`] never look at payload bytes), and
//! * evaluate SMA block-skipping for **cold** blocks without any payload I/O
//!   ([`BlockSummary::may_match`]), preserving the paper's scan-skipping behaviour
//!   even for blocks that have been evicted to disk.
//!
//! The payload is protected by an FNV-1a 64 checksum so a torn write or bit rot is
//! reported as [`FrameError::ChecksumMismatch`] instead of being decoded into
//! garbage. The byte-exact format is specified in `crates/datablocks/README.md`.

use crate::block::DataBlock;
use crate::layout::{self, LayoutError, Reader, Writer};
use crate::scan::{Restriction, ScanOptions};
use crate::sma::Sma;
use dbsimd::CmpOp;

/// Magic bytes identifying a Data Block frame.
pub const FRAME_MAGIC: &[u8; 4] = b"DBFM";
/// Current version of the frame format.
pub const FRAME_VERSION: u32 = 1;
/// Size of the fixed frame header in bytes.
pub const FRAME_HEADER_LEN: usize = 40;

/// Errors produced when decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer does not start with the frame magic.
    BadMagic,
    /// The frame declares an unsupported format version.
    UnsupportedVersion(u32),
    /// The buffer ended before the declared content.
    Truncated,
    /// The stored checksum does not match the recomputed one.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum recomputed over the frame body.
        actual: u64,
    },
    /// A header or summary field holds an invalid value.
    Corrupt(&'static str),
    /// The payload failed to decode as a Data Block.
    Layout(LayoutError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not a Data Block frame (bad magic)"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Truncated => write!(f, "Data Block frame is truncated"),
            FrameError::ChecksumMismatch { stored, actual } => write!(
                f,
                "frame checksum mismatch (stored {stored:#018x}, actual {actual:#018x})"
            ),
            FrameError::Corrupt(what) => write!(f, "corrupt Data Block frame: {what}"),
            FrameError::Layout(err) => write!(f, "frame payload does not decode: {err}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Layout(err) => Some(err),
            _ => None,
        }
    }
}

impl From<LayoutError> for FrameError {
    fn from(err: LayoutError) -> FrameError {
        // A short buffer surfaces identically whether the reader stopped in the
        // summary or the payload.
        match err {
            LayoutError::Truncated => FrameError::Truncated,
            other => FrameError::Layout(other),
        }
    }
}

/// FNV-1a 64-bit, the checksum protecting the frame body (summary + payload). Not
/// cryptographic — it detects torn writes and bit rot, which is all a local block
/// store needs, and it is dependency-free.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The decoded fixed-size frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame format version.
    pub version: u32,
    /// FNV-1a 64 checksum over the frame body (summary section + payload section).
    pub checksum: u64,
    /// FNV-1a 64 checksum over the summary section alone, so a directory rebuild
    /// ([`read_summary`]) can verify its input without reading the payload — a
    /// bit-flipped SMA must not silently prune blocks that contain matches.
    pub summary_checksum: u64,
    /// Byte offset of the summary section from the frame start.
    pub summary_off: u32,
    /// Length of the summary section in bytes.
    pub summary_len: u32,
    /// Byte offset of the payload section from the frame start.
    pub payload_off: u32,
    /// Length of the payload section in bytes.
    pub payload_len: u32,
}

impl FrameHeader {
    /// Total size of the frame (header + summary + payload) in bytes. This is what a
    /// store walking a file of concatenated frames advances by.
    pub fn frame_len(&self) -> usize {
        self.payload_off as usize + self.payload_len as usize
    }
}

/// Per-attribute slice of a [`BlockSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    /// Min/max of the attribute in the summarised block.
    pub sma: Sma,
    /// Did the attribute carry a Positional SMA? Purely informational for
    /// directory introspection (e.g. size accounting, deciding whether a scan of
    /// this block can narrow ranges): PSMAs are derived data, and it is the
    /// *payload's* `had_psma` flag ([`crate::layout`]) that drives the rebuild on
    /// load — a reloaded block is feature-identical regardless of this field.
    pub has_psma: bool,
}

/// The directory-resident summary of one frozen block: everything SMA pruning and
/// size accounting need, extracted without deserializing the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSummary {
    /// Records in the block (including deleted).
    pub tuple_count: u32,
    /// Records carrying a delete flag.
    pub deleted_count: u32,
    /// One summary per attribute, in attribute order.
    pub columns: Vec<ColumnSummary>,
}

impl BlockSummary {
    /// Summarise an in-memory block (what a store records at write-out time).
    pub fn of(block: &DataBlock) -> BlockSummary {
        BlockSummary {
            tuple_count: block.tuple_count(),
            deleted_count: block.tuple_count() - block.live_tuple_count(),
            columns: block
                .columns()
                .iter()
                .map(|c| ColumnSummary {
                    sma: c.sma.clone(),
                    has_psma: c.psma.is_some(),
                })
                .collect(),
        }
    }

    /// Records not marked deleted.
    pub fn live_tuple_count(&self) -> u32 {
        self.tuple_count - self.deleted_count
    }

    /// Can any record of the summarised block match all `restrictions`?
    ///
    /// This replicates exactly the **SMA** block-skipping gate of
    /// [`crate::scan::plan_scan`] — same [`Sma::may_match_cmp`] /
    /// [`Sma::may_match_between`] calls on the same SMA values, gated on
    /// [`ScanOptions::use_sma`] — so a scan that prunes a cold block from its summary
    /// reports byte-identical results *and counters* to one that loads the block and
    /// lets the scan planner rule it out. `false` means the block is guaranteed
    /// empty of matches and its payload never needs to be read.
    ///
    /// The SMA gate is the only rule-out the summary can decide: the planner's
    /// remaining rule-out causes (dictionary probes, single-value evaluation,
    /// `NULL`-validity reasoning) need data that is deliberately not summarised, so
    /// a block ruled out for one of those reasons still costs one load before it is
    /// counted as skipped. Skip *counters* agree with an all-in-memory scan either
    /// way; only the zero-I/O guarantee is scoped to SMA-prunable restrictions.
    pub fn may_match(&self, restrictions: &[Restriction], options: &ScanOptions) -> bool {
        if !options.use_sma {
            return true;
        }
        for restriction in restrictions {
            let Some(column) = self.columns.get(restriction.column()) else {
                continue;
            };
            let skip = match restriction {
                Restriction::Cmp { op, value, .. } if *op != CmpOp::Ne => {
                    !column.sma.may_match_cmp(*op, value)
                }
                Restriction::Between { lo, hi, .. } => !column.sma.may_match_between(lo, hi),
                _ => false,
            };
            if skip {
                return false;
            }
        }
        true
    }
}

/// Serialize a block into a complete frame: header, summary section, payload.
pub fn to_frame(block: &DataBlock) -> Vec<u8> {
    let summary = write_summary(&BlockSummary::of(block));
    let payload = layout::to_bytes(block);

    let summary_off = FRAME_HEADER_LEN as u32;
    let payload_off = summary_off + summary.len() as u32;

    let mut body = Vec::with_capacity(summary.len() + payload.len());
    body.extend_from_slice(&summary);
    body.extend_from_slice(&payload);
    let checksum = fnv1a64(&body);
    let summary_checksum = fnv1a64(&summary);

    let mut w = Writer::new();
    w.bytes(FRAME_MAGIC);
    w.u32(FRAME_VERSION);
    w.u64(checksum);
    w.u64(summary_checksum);
    w.u32(summary_off);
    w.u32(summary.len() as u32);
    w.u32(payload_off);
    w.u32(payload.len() as u32);
    debug_assert_eq!(w.buf.len(), FRAME_HEADER_LEN);
    w.bytes(&body);
    w.buf
}

/// Decode and validate the fixed header of a frame. Only the first
/// [`FRAME_HEADER_LEN`] bytes are examined — the checksum is **not** verified (that
/// requires the body; see [`from_frame`]).
pub fn read_header(bytes: &[u8]) -> Result<FrameHeader, FrameError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != FRAME_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = r.u32()?;
    if version != FRAME_VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let header = FrameHeader {
        version,
        checksum: r.u64()?,
        summary_checksum: r.u64()?,
        summary_off: r.u32()?,
        summary_len: r.u32()?,
        payload_off: r.u32()?,
        payload_len: r.u32()?,
    };
    // checked_add: a crafted/corrupt header must come back as a FrameError, never
    // as an arithmetic panic inside a scan worker.
    let summary_end = header.summary_off.checked_add(header.summary_len);
    if (header.summary_off as usize) < FRAME_HEADER_LEN
        || summary_end != Some(header.payload_off)
        || header.payload_off.checked_add(header.payload_len).is_none()
    {
        return Err(FrameError::Corrupt("inconsistent section offsets"));
    }
    Ok(header)
}

/// Decode the summary section of a frame without reading the payload, verifying
/// the summary checksum. `bytes` only needs to cover the header and summary
/// sections — a store reopening a file reads exactly `FRAME_HEADER_LEN +
/// summary_len` bytes per block. The *body* checksum is not verified here (it
/// covers the payload, which is deliberately not read); payload integrity is
/// checked when the block itself is loaded.
pub fn read_summary(bytes: &[u8]) -> Result<BlockSummary, FrameError> {
    let header = read_header(bytes)?;
    let start = header.summary_off as usize;
    let end = start + header.summary_len as usize;
    if bytes.len() < end {
        return Err(FrameError::Truncated);
    }
    let section = &bytes[start..end];
    let actual = fnv1a64(section);
    if actual != header.summary_checksum {
        return Err(FrameError::ChecksumMismatch {
            stored: header.summary_checksum,
            actual,
        });
    }
    parse_summary(section)
}

/// Decode a whole frame back into a [`DataBlock`], verifying the checksum first.
pub fn from_frame(bytes: &[u8]) -> Result<DataBlock, FrameError> {
    let header = read_header(bytes)?;
    let body_start = header.summary_off as usize;
    let end = header.frame_len();
    if bytes.len() < end {
        return Err(FrameError::Truncated);
    }
    let actual = fnv1a64(&bytes[body_start..end]);
    if actual != header.checksum {
        return Err(FrameError::ChecksumMismatch {
            stored: header.checksum,
            actual,
        });
    }
    let payload = &bytes[header.payload_off as usize..end];
    Ok(layout::from_bytes(payload)?)
}

fn write_summary(summary: &BlockSummary) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(summary.tuple_count);
    w.u32(summary.deleted_count);
    w.u32(summary.columns.len() as u32);
    for column in &summary.columns {
        layout::write_sma(&mut w, &column.sma);
        w.u8(column.has_psma as u8);
    }
    w.buf
}

fn parse_summary(bytes: &[u8]) -> Result<BlockSummary, FrameError> {
    let mut r = Reader::new(bytes);
    let tuple_count = r.u32()?;
    let deleted_count = r.u32()?;
    if deleted_count > tuple_count {
        return Err(FrameError::Corrupt("deleted count exceeds tuple count"));
    }
    let column_count = r.u32()? as usize;
    let mut columns = Vec::with_capacity(column_count);
    for _ in 0..column_count {
        let sma = layout::read_sma(&mut r)?;
        let has_psma = r.u8()? == 1;
        columns.push(ColumnSummary { sma, has_psma });
    }
    Ok(BlockSummary {
        tuple_count,
        deleted_count,
        columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{double_column, freeze, int_column, str_column};
    use crate::scan::plan_scan;
    use crate::value::Value;

    fn block() -> DataBlock {
        let ids = int_column((0..3000).collect());
        let grp = str_column((0..3000).map(|i| format!("g{}", i % 7)).collect());
        let amount = double_column((0..3000).map(|i| i as f64 * 0.5).collect());
        freeze(&[ids, grp, amount])
    }

    #[test]
    fn frame_roundtrip_preserves_block() {
        let original = block();
        let frame = to_frame(&original);
        let restored = from_frame(&frame).expect("roundtrip");
        assert_eq!(restored.tuple_count(), original.tuple_count());
        for row in (0..3000).step_by(131) {
            for col in 0..original.column_count() {
                assert_eq!(restored.get(row, col), original.get(row, col));
            }
        }
    }

    #[test]
    fn summary_readable_without_payload() {
        let original = block();
        let frame = to_frame(&original);
        let header = read_header(&frame).unwrap();
        // A store reopening a file reads only this prefix per block.
        let prefix = &frame[..header.payload_off as usize];
        let summary = read_summary(prefix).unwrap();
        assert_eq!(summary, BlockSummary::of(&original));
        assert_eq!(summary.tuple_count, 3000);
        assert_eq!(summary.live_tuple_count(), 3000);
        assert_eq!(summary.columns.len(), 3);
        assert_eq!(summary.columns[0].sma, original.column(0).sma);
    }

    #[test]
    fn summary_records_deletions() {
        let mut b = block();
        b.delete(0);
        b.delete(17);
        let summary = read_summary(&to_frame(&b)).unwrap();
        assert_eq!(summary.deleted_count, 2);
        assert_eq!(summary.live_tuple_count(), 2998);
    }

    #[test]
    fn summary_pruning_matches_plan_scan_rule_out() {
        let b = block();
        let summary = BlockSummary::of(&b);
        let options = ScanOptions::default();
        let cases = vec![
            vec![Restriction::between(0, 100i64, 199i64)], // inside the domain
            vec![Restriction::between(0, 5000i64, 6000i64)], // outside: prune
            vec![Restriction::cmp(0, CmpOp::Lt, 0i64)],    // outside: prune
            vec![Restriction::eq(1, "g3")],                // string inside
            vec![Restriction::eq(1, "zzz")],               // string outside: prune
            vec![
                Restriction::between(0, 0i64, 10i64),
                Restriction::eq(1, "zzz"), // second restriction prunes
            ],
        ];
        for restrictions in cases {
            let plan = plan_scan(&b, &restrictions, &options);
            assert_eq!(
                summary.may_match(&restrictions, &options),
                !plan.is_ruled_out(),
                "{restrictions:?}"
            );
        }
    }

    #[test]
    fn summary_pruning_disabled_with_sma_off() {
        let summary = BlockSummary::of(&block());
        let options = ScanOptions {
            use_sma: false,
            ..ScanOptions::default()
        };
        assert!(summary.may_match(&[Restriction::between(0, 5000i64, 6000i64)], &options));
    }

    #[test]
    fn corrupted_checksum_is_rejected() {
        let mut frame = to_frame(&block());
        let last = frame.len() - 1;
        frame[last] ^= 0xff; // flip payload bits
        assert!(matches!(
            from_frame(&frame),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        // flipping the stored checksum itself is also caught
        let mut frame2 = to_frame(&block());
        frame2[8] ^= 0x01;
        assert!(matches!(
            from_frame(&frame2),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_summary_is_rejected_without_payload() {
        let mut frame = to_frame(&block());
        frame[FRAME_HEADER_LEN] ^= 0xff; // flip a summary byte (tuple_count)
        assert!(matches!(
            read_summary(&frame),
            Err(FrameError::ChecksumMismatch { .. })
        ));
        // the body checksum covers the summary too, so full decode also rejects it
        assert!(matches!(
            from_frame(&frame),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn overflowing_header_offsets_are_rejected_not_panicking() {
        let mut frame = to_frame(&block());
        frame[24..28].copy_from_slice(&u32::MAX.to_le_bytes()); // summary_off
        frame[28..32].copy_from_slice(&1u32.to_le_bytes()); // summary_len
        assert_eq!(
            read_header(&frame),
            Err(FrameError::Corrupt("inconsistent section offsets"))
        );
    }

    #[test]
    fn truncated_frame_is_rejected() {
        let frame = to_frame(&block());
        for cut in [
            0,
            3,
            FRAME_HEADER_LEN - 1,
            FRAME_HEADER_LEN + 2,
            frame.len() - 1,
        ] {
            let err = from_frame(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated | FrameError::BadMagic),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut frame = to_frame(&block());
        frame[4..8].copy_from_slice(&42u32.to_le_bytes());
        assert_eq!(from_frame(&frame), Err(FrameError::UnsupportedVersion(42)));
        assert_eq!(
            read_summary(&frame),
            Err(FrameError::UnsupportedVersion(42))
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(
            read_header(b"NOPEnopeNOPEnopeNOPEnopeNOPEnope"),
            Err(FrameError::BadMagic)
        );
    }

    #[test]
    fn inconsistent_offsets_are_rejected() {
        let mut frame = to_frame(&block());
        frame[24..28].copy_from_slice(&7u32.to_le_bytes()); // payload_off != summary end
        assert_eq!(
            read_header(&frame),
            Err(FrameError::Corrupt("inconsistent section offsets"))
        );
    }

    #[test]
    fn single_value_and_null_columns_summarise() {
        let constant = int_column(vec![9; 500]);
        let mut nullable = crate::column::Column::new(crate::value::DataType::Int);
        for _ in 0..500 {
            nullable.push(Value::Null);
        }
        let b = freeze(&[constant, nullable]);
        let summary = read_summary(&to_frame(&b)).unwrap();
        assert_eq!(summary.columns[1].sma, Sma::AllNull);
        // an all-NULL attribute prunes every value restriction
        assert!(!summary.may_match(&[Restriction::eq(1, 9i64)], &ScanOptions::default()));
    }

    #[test]
    fn error_display_messages() {
        assert!(FrameError::BadMagic.to_string().contains("magic"));
        assert!(FrameError::Truncated.to_string().contains("truncated"));
        assert!(FrameError::UnsupportedVersion(9).to_string().contains('9'));
        assert!(FrameError::ChecksumMismatch {
            stored: 1,
            actual: 2
        }
        .to_string()
        .contains("checksum"));
        assert!(FrameError::Corrupt("x").to_string().contains('x'));
        let layout_err = FrameError::Layout(LayoutError::BadMagic);
        assert!(layout_err.to_string().contains("magic"));
        assert!(std::error::Error::source(&layout_err).is_some());
    }
}
