//! Logical value model shared by hot (uncompressed) chunks and frozen Data Blocks.
//!
//! The logical type system is intentionally small — 64-bit integers (which also carry
//! dates as day numbers and `char(1)` as code points, as the paper does), 64-bit
//! floating point, and variable-length strings. What varies per block is not the
//! *logical* type but the *physical* compression chosen for the value distribution of
//! that attribute in that block.

use std::cmp::Ordering;
use std::fmt;

/// Logical data type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer. Also used for dates (days since 1970-01-01), decimals
    /// scaled to integers (e.g. cents), and `char(1)` code points.
    Int,
    /// 64-bit IEEE-754 floating point. Never truncated (Sec. 3.3).
    Double,
    /// Variable-length UTF-8 string. Always dictionary-compressed to integer codes in
    /// Data Blocks.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Double => write!(f, "double"),
            DataType::Str => write!(f, "string"),
        }
    }
}

/// A single attribute value (owned). Used for point accesses, predicate constants and
/// row-wise OLTP operations; bulk operations use the typed columnar representations.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// An [`DataType::Int`] value.
    Int(i64),
    /// A [`DataType::Double`] value.
    Double(f64),
    /// A [`DataType::Str`] value.
    Str(String),
}

impl Value {
    /// The logical type of the value, or `None` for NULL (NULL is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, if the value is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a double, if the value is one (integers widen losslessly where exact).
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Extract a string slice, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style comparison: NULL compares as unknown (`None`); values of different
    /// types do not compare.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Double(a), Value::Double(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Double(b)) => (*a as f64).partial_cmp(b),
            (Value::Double(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order used for sorting (NULLs first, then by type, then by value).
    /// Doubles use IEEE total ordering so the function is a valid `Ord`-style key.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) => 1,
                Value::Double(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Convert a calendar date to the day number used for `Int` date columns.
///
/// Implements the proleptic-Gregorian civil-day algorithm (Howard Hinnant's
/// `days_from_civil`), so workload generators and queries agree on date arithmetic
/// without any external dependency.
pub fn date_to_days(year: i32, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = month as i64;
    let d = day as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe - 719468
}

/// Inverse of [`date_to_days`]: day number back to `(year, month, day)`.
pub fn days_to_date(days: i64) -> (i32, u32, u32) {
    let z = days + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_type_and_accessors() {
        assert_eq!(Value::Int(3).data_type(), Some(DataType::Int));
        assert_eq!(Value::Double(1.5).data_type(), Some(DataType::Double));
        assert_eq!(Value::from("x").data_type(), Some(DataType::Str));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_double(), Some(7.0));
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::Double(2.0).as_int(), None);
    }

    #[test]
    fn sql_cmp_with_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_mixed_numeric() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Double(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn sql_cmp_incompatible_types() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::from("1")), None);
    }

    #[test]
    fn total_cmp_orders_nulls_first() {
        let mut v = [Value::Int(5), Value::Null, Value::Int(1)];
        v.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(v[0], Value::Null);
        assert_eq!(v[1], Value::Int(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::from("hi").to_string(), "hi");
        assert_eq!(DataType::Str.to_string(), "string");
    }

    #[test]
    fn date_roundtrip_epoch_and_known_dates() {
        assert_eq!(date_to_days(1970, 1, 1), 0);
        assert_eq!(date_to_days(1970, 1, 2), 1);
        assert_eq!(date_to_days(1969, 12, 31), -1);
        // TPC-H date domain endpoints
        assert_eq!(days_to_date(date_to_days(1992, 1, 1)), (1992, 1, 1));
        assert_eq!(days_to_date(date_to_days(1998, 12, 31)), (1998, 12, 31));
        // leap day
        assert_eq!(days_to_date(date_to_days(2000, 2, 29)), (2000, 2, 29));
    }

    #[test]
    fn date_ordering_is_monotonic() {
        let mut prev = date_to_days(1987, 10, 1);
        for m in 1..=12u32 {
            let d = date_to_days(1988, m, 15);
            assert!(d > prev);
            prev = d;
        }
    }
}
