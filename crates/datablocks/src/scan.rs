//! Scanning Data Blocks: SARGable restriction push-down, SMA block skipping, PSMA
//! range narrowing, and vectorized match finding on the compressed code words
//! (Sections 3.4 and 4.2).
//!
//! The scan proceeds exactly as the paper describes:
//!
//! 1. SMAs (and, for dictionary compression and equality predicates, a dictionary
//!    probe) may rule the whole block out.
//! 2. PSMAs narrow the scanned position range per restricted attribute; ranges from
//!    different attributes are intersected.
//! 3. Within the narrowed range the block is processed in vectors of
//!    [`ScanOptions::vector_size`] records: the first SARGable restriction *finds*
//!    matches with the SIMD kernels, every further restriction *reduces* the match
//!    vector, and NULL / deleted records are filtered out.
//! 4. The caller unpacks the matching positions ([`crate::unpack`]) and pushes the
//!    tuples into the consuming operator.

use crate::block::DataBlock;
use crate::compression::ColumnCompression;
use crate::psma::ScanRange;
use crate::value::Value;
use dbsimd::{CmpOp, IsaLevel};

/// A SARGable scan restriction as produced by the query layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Restriction {
    /// `attribute <op> constant`
    Cmp {
        /// Attribute index within the block/relation.
        column: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Comparison constant.
        value: Value,
    },
    /// `attribute BETWEEN lo AND hi` (inclusive).
    Between {
        /// Attribute index within the block/relation.
        column: usize,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// `attribute IS NULL`
    IsNull {
        /// Attribute index within the block/relation.
        column: usize,
    },
    /// `attribute IS NOT NULL`
    IsNotNull {
        /// Attribute index within the block/relation.
        column: usize,
    },
}

impl Restriction {
    /// Convenience constructor for an equality restriction.
    pub fn eq(column: usize, value: impl Into<Value>) -> Restriction {
        Restriction::Cmp {
            column,
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// Convenience constructor for a between restriction.
    pub fn between(column: usize, lo: impl Into<Value>, hi: impl Into<Value>) -> Restriction {
        Restriction::Between {
            column,
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Convenience constructor for a comparison restriction.
    pub fn cmp(column: usize, op: CmpOp, value: impl Into<Value>) -> Restriction {
        Restriction::Cmp {
            column,
            op,
            value: value.into(),
        }
    }

    /// The attribute the restriction applies to.
    pub fn column(&self) -> usize {
        match self {
            Restriction::Cmp { column, .. }
            | Restriction::Between { column, .. }
            | Restriction::IsNull { column }
            | Restriction::IsNotNull { column } => *column,
        }
    }

    /// Evaluate the restriction against a single value (SQL three-valued logic
    /// collapsed to "matches / does not match": NULL comparisons do not match).
    pub fn matches_value(&self, value: &Value) -> bool {
        match self {
            Restriction::Cmp {
                op,
                value: constant,
                ..
            } => match value.sql_cmp(constant) {
                Some(ord) => op.eval_ordering(ord),
                None => false,
            },
            Restriction::Between { lo, hi, .. } => {
                let ge = value.sql_cmp(lo).map(|o| o != std::cmp::Ordering::Less);
                let le = value.sql_cmp(hi).map(|o| o != std::cmp::Ordering::Greater);
                matches!((ge, le), (Some(true), Some(true)))
            }
            Restriction::IsNull { .. } => value.is_null(),
            Restriction::IsNotNull { .. } => !value.is_null(),
        }
    }
}

/// Extension trait: evaluate a [`CmpOp`] against an already-computed ordering.
pub trait CmpOpOrderingExt {
    /// Does an ordering outcome satisfy the operator?
    fn eval_ordering(self, ord: std::cmp::Ordering) -> bool;
}

impl CmpOpOrderingExt for CmpOp {
    fn eval_ordering(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// Knobs controlling how a block scan is executed. The defaults correspond to the
/// full Data Blocks design (SIMD, SMA skipping, PSMA narrowing, 8192-record vectors);
/// the benchmark harness switches individual features off to reproduce the paper's
/// ablation columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanOptions {
    /// SIMD level used by the find/reduce kernels.
    pub isa: IsaLevel,
    /// Number of records examined per vector (the paper's default is 8192).
    pub vector_size: usize,
    /// Use SMAs to rule out blocks / restrictions.
    pub use_sma: bool,
    /// Use PSMAs to narrow the scanned range.
    pub use_psma: bool,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions {
            isa: IsaLevel::detect(),
            vector_size: 8192,
            use_sma: true,
            use_psma: true,
        }
    }
}

impl ScanOptions {
    /// Options with every Data Blocks acceleration disabled (predicates still
    /// evaluated on compressed data, but scalar, full-range, per the "Data Block
    /// scan" column of Table 4).
    pub fn plain() -> ScanOptions {
        ScanOptions {
            isa: IsaLevel::Scalar,
            vector_size: 8192,
            use_sma: false,
            use_psma: false,
        }
    }
}

/// One evaluation step of a translated scan plan.
#[derive(Debug, Clone, PartialEq)]
enum Step {
    /// SIMD-able inclusive range over the compressed code words of an attribute.
    CodeRange { column: usize, lo: u64, hi: u64 },
    /// Scalar inclusive range over an uncompressed double attribute.
    DoubleRange { column: usize, lo: f64, hi: f64 },
    /// Scalar fallback: decompress the value and compare (`<>`, cross-type, …).
    ScalarCmp {
        column: usize,
        op: CmpOp,
        value: Value,
    },
    /// Keep only NULL rows of the attribute.
    KeepNull { column: usize },
    /// Keep only non-NULL rows of the attribute.
    KeepNotNull { column: usize },
}

/// The result of translating a set of restrictions against one specific block.
#[derive(Debug, Clone)]
pub struct ScanPlan {
    steps: Vec<Step>,
    range: ScanRange,
    ruled_out: bool,
}

impl ScanPlan {
    /// Was the whole block ruled out (by SMAs, dictionary probes or contradictory
    /// restrictions) without scanning?
    pub fn is_ruled_out(&self) -> bool {
        self.ruled_out
    }

    /// The narrowed position range that will actually be scanned.
    pub fn scan_range(&self) -> ScanRange {
        if self.ruled_out {
            ScanRange::EMPTY
        } else {
            self.range
        }
    }

    /// Number of evaluation steps that remain to be applied per vector.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }
}

/// Translate restrictions against a block: apply SMA skipping, translate constants to
/// code space, probe PSMAs, and produce the per-vector evaluation plan.
pub fn plan_scan(
    block: &DataBlock,
    restrictions: &[Restriction],
    options: &ScanOptions,
) -> ScanPlan {
    let mut plan = ScanPlan {
        steps: Vec::with_capacity(restrictions.len() + 2),
        range: ScanRange::full(block.tuple_count()),
        ruled_out: false,
    };

    for restriction in restrictions {
        if plan.ruled_out {
            break;
        }
        translate_restriction(block, restriction, options, &mut plan);
    }
    plan
}

fn translate_restriction(
    block: &DataBlock,
    restriction: &Restriction,
    options: &ScanOptions,
    plan: &mut ScanPlan,
) {
    let column_idx = restriction.column();
    let column = block.column(column_idx);

    // SMA block skipping for value restrictions.
    if options.use_sma {
        let skip = match restriction {
            Restriction::Cmp { op, value, .. } if *op != CmpOp::Ne => {
                !column.sma.may_match_cmp(*op, value)
            }
            Restriction::Between { lo, hi, .. } => !column.sma.may_match_between(lo, hi),
            _ => false,
        };
        if skip {
            plan.ruled_out = true;
            return;
        }
    }

    match restriction {
        Restriction::IsNull { .. } => match &column.compression {
            ColumnCompression::SingleValue(Value::Null) => {}
            _ if column.validity.is_none() => plan.ruled_out = true,
            _ => plan.steps.push(Step::KeepNull { column: column_idx }),
        },
        Restriction::IsNotNull { .. } => match &column.compression {
            ColumnCompression::SingleValue(Value::Null) => plan.ruled_out = true,
            _ if column.validity.is_none() => {}
            _ => plan.steps.push(Step::KeepNotNull { column: column_idx }),
        },
        Restriction::Cmp { .. } | Restriction::Between { .. }
            if matches!(&column.compression, ColumnCompression::SingleValue(_)) =>
        {
            // A single-value column either satisfies the restriction for every record
            // or for none; evaluate once.
            let constant = match &column.compression {
                ColumnCompression::SingleValue(v) => v.clone(),
                _ => unreachable!(),
            };
            if !restriction.matches_value(&constant) {
                plan.ruled_out = true;
            }
        }
        Restriction::Cmp {
            op: CmpOp::Ne,
            value,
            ..
        } => {
            plan.steps.push(Step::ScalarCmp {
                column: column_idx,
                op: CmpOp::Ne,
                value: value.clone(),
            });
            push_not_null_guard(block, column_idx, plan);
        }
        Restriction::Cmp { op, value, .. } => {
            translate_range_restriction(block, column_idx, *op, value, value, false, options, plan);
        }
        Restriction::Between { lo, hi, .. } => {
            translate_range_restriction(block, column_idx, CmpOp::Eq, lo, hi, true, options, plan);
        }
    }
}

/// Translate a comparison (`op` + single constant) or a between (`lo`/`hi` with
/// `op == Eq` as the marker) into a code-space step, narrowing with the PSMA.
#[allow(clippy::too_many_arguments)]
fn translate_range_restriction(
    block: &DataBlock,
    column_idx: usize,
    op: CmpOp,
    lo: &Value,
    hi: &Value,
    is_between: bool,
    options: &ScanOptions,
    plan: &mut ScanPlan,
) {
    let column = block.column(column_idx);

    match &column.compression {
        ColumnCompression::Truncated { .. } | ColumnCompression::DictInt { .. } => {
            let (lo_i, hi_i) = match int_bounds(op, lo, hi, is_between) {
                Some(bounds) => bounds,
                None => {
                    plan.steps.push(Step::ScalarCmp {
                        column: column_idx,
                        op,
                        value: lo.clone(),
                    });
                    push_not_null_guard(block, column_idx, plan);
                    return;
                }
            };
            match column.compression.translate_int_range(lo_i, hi_i) {
                Some((code_lo, code_hi)) => {
                    narrow_with_psma(column, code_lo, code_hi, options, plan);
                    plan.steps.push(Step::CodeRange {
                        column: column_idx,
                        lo: code_lo,
                        hi: code_hi,
                    });
                    push_not_null_guard(block, column_idx, plan);
                }
                None => plan.ruled_out = true,
            }
        }
        ColumnCompression::DictStr { dict, .. } => {
            let bounds = str_code_bounds(dict, op, lo, hi, is_between);
            match bounds {
                Some((code_lo, code_hi)) => {
                    narrow_with_psma(column, code_lo, code_hi, options, plan);
                    plan.steps.push(Step::CodeRange {
                        column: column_idx,
                        lo: code_lo,
                        hi: code_hi,
                    });
                    push_not_null_guard(block, column_idx, plan);
                }
                None => plan.ruled_out = true,
            }
        }
        ColumnCompression::Double(_) => {
            let (lo_f, hi_f) = match double_bounds(op, lo, hi, is_between) {
                Some(bounds) => bounds,
                None => {
                    plan.ruled_out = true;
                    return;
                }
            };
            plan.steps.push(Step::DoubleRange {
                column: column_idx,
                lo: lo_f,
                hi: hi_f,
            });
            push_not_null_guard(block, column_idx, plan);
        }
        ColumnCompression::SingleValue(_) => unreachable!("handled by the caller"),
    }
}

fn push_not_null_guard(block: &DataBlock, column_idx: usize, plan: &mut ScanPlan) {
    if block.column(column_idx).validity.is_some() {
        plan.steps.push(Step::KeepNotNull { column: column_idx });
    }
}

/// Inclusive integer bounds for `op constant` (or a between when `is_between`).
fn int_bounds(op: CmpOp, lo: &Value, hi: &Value, is_between: bool) -> Option<(i64, i64)> {
    if is_between {
        return Some((lo.as_int()?, hi.as_int()?));
    }
    let v = lo.as_int()?;
    Some(match op {
        CmpOp::Eq => (v, v),
        CmpOp::Lt => (i64::MIN, v.checked_sub(1)?),
        CmpOp::Le => (i64::MIN, v),
        CmpOp::Gt => (v.checked_add(1)?, i64::MAX),
        CmpOp::Ge => (v, i64::MAX),
        CmpOp::Ne => return None,
    })
}

/// Inclusive double bounds (doubles only support the closed-range approximation; the
/// strict inequalities keep the bound and rely on the scalar step for exactness).
fn double_bounds(op: CmpOp, lo: &Value, hi: &Value, is_between: bool) -> Option<(f64, f64)> {
    if is_between {
        return Some((lo.as_double()?, hi.as_double()?));
    }
    let v = lo.as_double()?;
    Some(match op {
        CmpOp::Eq => (v, v),
        CmpOp::Lt => (f64::NEG_INFINITY, prev_double(v)),
        CmpOp::Le => (f64::NEG_INFINITY, v),
        CmpOp::Gt => (next_double(v), f64::INFINITY),
        CmpOp::Ge => (v, f64::INFINITY),
        CmpOp::Ne => return None,
    })
}

fn next_double(v: f64) -> f64 {
    if v.is_infinite() {
        v
    } else {
        f64::from_bits(if v >= 0.0 {
            v.to_bits() + 1
        } else {
            v.to_bits() - 1
        })
    }
}

fn prev_double(v: f64) -> f64 {
    -next_double(-v)
}

/// Code bounds for a string comparison against an ordered dictionary.
fn str_code_bounds(
    dict: &[String],
    op: CmpOp,
    lo: &Value,
    hi: &Value,
    is_between: bool,
) -> Option<(u64, u64)> {
    let last = dict.len().checked_sub(1)? as u64;
    if is_between {
        let lo_s = lo.as_str()?;
        let hi_s = hi.as_str()?;
        let lo_code = dict.partition_point(|d| d.as_str() < lo_s) as u64;
        let hi_code = dict.partition_point(|d| d.as_str() <= hi_s) as u64;
        return if lo_code >= hi_code {
            None
        } else {
            Some((lo_code, hi_code - 1))
        };
    }
    let v = lo.as_str()?;
    let lt = dict.partition_point(|d| d.as_str() < v) as u64;
    let le = dict.partition_point(|d| d.as_str() <= v) as u64;
    match op {
        CmpOp::Eq => {
            if lt == le {
                None
            } else {
                Some((lt, le - 1))
            }
        }
        CmpOp::Lt => {
            if lt == 0 {
                None
            } else {
                Some((0, lt - 1))
            }
        }
        CmpOp::Le => {
            if le == 0 {
                None
            } else {
                Some((0, le - 1))
            }
        }
        CmpOp::Gt => {
            if le > last {
                None
            } else {
                Some((le, last))
            }
        }
        CmpOp::Ge => {
            if lt > last {
                None
            } else {
                Some((lt, last))
            }
        }
        CmpOp::Ne => None,
    }
}

fn narrow_with_psma(
    column: &crate::block::BlockColumn,
    code_lo: u64,
    code_hi: u64,
    options: &ScanOptions,
    plan: &mut ScanPlan,
) {
    if !options.use_psma {
        return;
    }
    if let Some(psma) = &column.psma {
        let lo = code_lo.min(i64::MAX as u64) as i64;
        let hi = code_hi.min(i64::MAX as u64) as i64;
        let narrowed = psma.probe_range(lo, hi);
        plan.range = plan.range.intersect(&narrowed);
        if plan.range.is_empty() {
            plan.ruled_out = true;
        }
    }
}

/// A vector-at-a-time scan over one Data Block.
pub struct BlockScan<'a> {
    block: &'a DataBlock,
    plan: ScanPlan,
    options: ScanOptions,
    cursor: u32,
}

impl<'a> BlockScan<'a> {
    /// Plan and start a scan of `block` under `restrictions`.
    pub fn new(block: &'a DataBlock, restrictions: &[Restriction], options: ScanOptions) -> Self {
        let plan = plan_scan(block, restrictions, &options);
        let cursor = plan.scan_range().begin;
        BlockScan {
            block,
            plan,
            options,
            cursor,
        }
    }

    /// The plan the scan executes (exposed for instrumentation).
    pub fn plan(&self) -> &ScanPlan {
        &self.plan
    }

    /// Produce the next vector of matching record positions.
    ///
    /// `matches` is cleared and filled with at most one vector's worth of block-
    /// relative positions. Returns `None` once the narrowed range is exhausted; a
    /// returned `Some(0)` means the current vector contained no matches but the scan
    /// is not finished.
    pub fn next_matches(&mut self, matches: &mut Vec<u32>) -> Option<usize> {
        matches.clear();
        let range = self.plan.scan_range();
        if self.cursor >= range.end {
            return None;
        }
        let from = self.cursor as usize;
        let to = ((self.cursor as usize) + self.options.vector_size).min(range.end as usize);
        self.cursor = to as u32;

        self.evaluate_window(from, to, matches);
        Some(matches.len())
    }

    /// Evaluate all plan steps over the window `[from, to)`.
    fn evaluate_window(&self, from: usize, to: usize, matches: &mut Vec<u32>) {
        let mut steps = self.plan.steps.iter();

        // Initial fill: the first SIMD-able step produces the initial match vector;
        // if the plan starts with a scalar step (or has none) every position in the
        // window is a candidate.
        match steps.next() {
            Some(Step::CodeRange { column, lo, hi }) => {
                let codes = self
                    .block
                    .column(*column)
                    .compression
                    .codes()
                    .expect("CodeRange step only planned for code-bearing columns");
                codes.find_matches(self.options.isa, *lo, *hi, from, to, matches);
            }
            first => {
                matches.extend(from as u32..to as u32);
                if let Some(step) = first {
                    self.reduce_with_step(step, matches);
                }
            }
        }

        for step in steps {
            if matches.is_empty() {
                break;
            }
            self.reduce_with_step(step, matches);
        }

        if self.block.has_deletions() && !matches.is_empty() {
            let deleted = self
                .block
                .deleted_flags()
                .expect("has_deletions implies flags");
            matches.retain(|&pos| !deleted[pos as usize]);
        }
    }

    fn reduce_with_step(&self, step: &Step, matches: &mut Vec<u32>) {
        match step {
            Step::CodeRange { column, lo, hi } => {
                let codes = self
                    .block
                    .column(*column)
                    .compression
                    .codes()
                    .expect("CodeRange step only planned for code-bearing columns");
                codes.reduce_matches(self.options.isa, *lo, *hi, matches);
            }
            Step::DoubleRange { column, lo, hi } => {
                let column = self.block.column(*column);
                if let ColumnCompression::Double(values) = &column.compression {
                    matches.retain(|&pos| {
                        let v = values[pos as usize];
                        v >= *lo && v <= *hi
                    });
                } else {
                    matches.retain(|&pos| {
                        column
                            .get(pos as usize)
                            .as_double()
                            .map(|v| v >= *lo && v <= *hi)
                            .unwrap_or(false)
                    });
                }
            }
            Step::ScalarCmp { column, op, value } => {
                let block_column = self.block.column(*column);
                matches.retain(|&pos| {
                    block_column
                        .get(pos as usize)
                        .sql_cmp(value)
                        .map(|ord| op.eval_ordering(ord))
                        .unwrap_or(false)
                });
            }
            Step::KeepNull { column } => {
                let block_column = self.block.column(*column);
                matches.retain(|&pos| block_column.is_null(pos as usize));
            }
            Step::KeepNotNull { column } => {
                let block_column = self.block.column(*column);
                matches.retain(|&pos| !block_column.is_null(pos as usize));
            }
        }
    }
}

/// Run a complete scan and collect every matching position (convenience for tests,
/// OLTP-style scans without an index, and the benchmark harness).
pub fn scan_collect(
    block: &DataBlock,
    restrictions: &[Restriction],
    options: ScanOptions,
) -> Vec<u32> {
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    scan_collect_into(block, restrictions, options, &mut scratch, &mut out);
    out
}

/// Run a complete scan, appending every matching position to `out`.
///
/// `scratch` is the per-vector match buffer; both buffers are cleared of nothing and
/// only ever *appended to* (`scratch` is overwritten per window), so a caller scanning
/// many blocks — the morsel-driven parallel scan workers, or an index-less point
/// lookup walking a relation — reuses the same two allocations for the whole run
/// instead of paying one `Vec` growth curve per block.
pub fn scan_collect_into(
    block: &DataBlock,
    restrictions: &[Restriction],
    options: ScanOptions,
    scratch: &mut Vec<u32>,
    out: &mut Vec<u32>,
) {
    let mut scan = BlockScan::new(block, restrictions, options);
    while scan.next_matches(scratch).is_some() {
        out.extend_from_slice(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{freeze, int_column, str_column};
    use crate::column::Column;
    use crate::value::DataType;

    /// Straight-line reference implementation evaluating restrictions row by row.
    fn reference_scan(block: &DataBlock, restrictions: &[Restriction]) -> Vec<u32> {
        (0..block.tuple_count())
            .filter(|&row| !block.is_deleted(row as usize))
            .filter(|&row| {
                restrictions.iter().all(|r| {
                    let v = block.get(row as usize, r.column());
                    r.matches_value(&v)
                })
            })
            .collect()
    }

    fn check_against_reference(
        block: &DataBlock,
        restrictions: &[Restriction],
        options: ScanOptions,
    ) {
        let got = scan_collect(block, restrictions, options);
        let expected = reference_scan(block, restrictions);
        assert_eq!(got, expected, "restrictions {restrictions:?}");
    }

    fn test_block() -> DataBlock {
        // quantity: dense small ints; status: low-cardinality strings; price: doubles;
        // date: clustered-ish int values
        let n = 20_000usize;
        let quantity = int_column((0..n as i64).map(|i| i % 50).collect());
        let status = str_column((0..n).map(|i| format!("S{}", i % 3)).collect());
        let price = crate::builder::double_column((0..n).map(|i| (i % 997) as f64 * 1.5).collect());
        let date = int_column((0..n as i64).map(|i| 10_000 + i / 100).collect());
        freeze(&[quantity, status, price, date])
    }

    #[test]
    fn scan_without_restrictions_returns_every_row() {
        let block = test_block();
        let all = scan_collect(&block, &[], ScanOptions::default());
        assert_eq!(all.len(), block.tuple_count() as usize);
        assert_eq!(all[0], 0);
        assert_eq!(*all.last().unwrap(), block.tuple_count() - 1);
    }

    #[test]
    fn single_int_range_restriction() {
        let block = test_block();
        let restrictions = vec![Restriction::between(0, 10i64, 19i64)];
        check_against_reference(&block, &restrictions, ScanOptions::default());
        check_against_reference(&block, &restrictions, ScanOptions::plain());
    }

    #[test]
    fn all_comparison_operators_match_reference() {
        let block = test_block();
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let restrictions = vec![Restriction::cmp(0, op, 25i64)];
            check_against_reference(&block, &restrictions, ScanOptions::default());
        }
    }

    #[test]
    fn string_equality_and_range() {
        let block = test_block();
        check_against_reference(&block, &[Restriction::eq(1, "S1")], ScanOptions::default());
        check_against_reference(
            &block,
            &[Restriction::between(1, "S0", "S1")],
            ScanOptions::default(),
        );
        check_against_reference(
            &block,
            &[Restriction::cmp(1, CmpOp::Ge, "S2")],
            ScanOptions::default(),
        );
        // string absent from the dictionary rules the block out
        let gone = scan_collect(&block, &[Restriction::eq(1, "ZZZ")], ScanOptions::default());
        assert!(gone.is_empty());
    }

    #[test]
    fn double_restrictions_fall_back_to_scalar() {
        let block = test_block();
        check_against_reference(
            &block,
            &[Restriction::between(2, 10.0, 200.0)],
            ScanOptions::default(),
        );
        check_against_reference(
            &block,
            &[Restriction::cmp(2, CmpOp::Lt, 3.0)],
            ScanOptions::default(),
        );
    }

    #[test]
    fn conjunction_of_restrictions() {
        let block = test_block();
        let restrictions = vec![
            Restriction::between(0, 5i64, 30i64),
            Restriction::eq(1, "S2"),
            Restriction::cmp(3, CmpOp::Ge, 10_050i64),
        ];
        check_against_reference(&block, &restrictions, ScanOptions::default());
        check_against_reference(&block, &restrictions, ScanOptions::plain());
    }

    #[test]
    fn sma_rules_out_disjoint_range() {
        let block = test_block();
        // quantity domain is [0, 49]
        let plan = plan_scan(
            &block,
            &[Restriction::cmp(0, CmpOp::Gt, 100i64)],
            &ScanOptions::default(),
        );
        assert!(plan.is_ruled_out());
        let matches = scan_collect(
            &block,
            &[Restriction::cmp(0, CmpOp::Gt, 100i64)],
            ScanOptions::default(),
        );
        assert!(matches.is_empty());
    }

    #[test]
    fn psma_narrows_scan_range_on_clustered_data() {
        // Clustered values: PSMA should narrow the range to roughly the cluster.
        let values: Vec<i64> = (0..65_536i64).map(|i| i / 256).collect();
        let block = freeze(&[int_column(values)]);
        let with_psma = plan_scan(
            &block,
            &[Restriction::eq(0, 100i64)],
            &ScanOptions::default(),
        );
        let without_psma = plan_scan(
            &block,
            &[Restriction::eq(0, 100i64)],
            &ScanOptions {
                use_psma: false,
                ..ScanOptions::default()
            },
        );
        assert!(with_psma.scan_range().len() < without_psma.scan_range().len());
        assert!(with_psma.scan_range().len() <= 512);
        // And the result is still correct.
        check_against_reference(
            &block,
            &[Restriction::eq(0, 100i64)],
            ScanOptions::default(),
        );
    }

    #[test]
    fn nulls_are_never_matched_by_value_predicates() {
        let mut col = Column::new(DataType::Int);
        for i in 0..1000i64 {
            if i % 7 == 0 {
                col.push(Value::Null);
            } else {
                col.push(Value::Int(i % 20));
            }
        }
        let block = freeze(&[col]);
        check_against_reference(
            &block,
            &[Restriction::between(0, 0i64, 5i64)],
            ScanOptions::default(),
        );
        check_against_reference(
            &block,
            &[Restriction::IsNull { column: 0 }],
            ScanOptions::default(),
        );
        check_against_reference(
            &block,
            &[Restriction::IsNotNull { column: 0 }],
            ScanOptions::default(),
        );
    }

    #[test]
    fn deleted_rows_are_filtered() {
        let mut block = freeze(&[int_column((0..100).collect())]);
        block.delete(10);
        block.delete(11);
        let all = scan_collect(&block, &[], ScanOptions::default());
        assert_eq!(all.len(), 98);
        assert!(!all.contains(&10));
        let filtered = scan_collect(
            &block,
            &[Restriction::between(0, 5i64, 15i64)],
            ScanOptions::default(),
        );
        assert_eq!(filtered, vec![5, 6, 7, 8, 9, 12, 13, 14, 15]);
    }

    #[test]
    fn single_value_column_restrictions() {
        let constant = int_column(vec![42; 500]);
        let other = int_column((0..500).collect());
        let block = freeze(&[constant, other]);
        // matching constant: every row qualifies
        let hit = scan_collect(&block, &[Restriction::eq(0, 42i64)], ScanOptions::default());
        assert_eq!(hit.len(), 500);
        // non-matching constant: block ruled out
        let miss = scan_collect(&block, &[Restriction::eq(0, 41i64)], ScanOptions::default());
        assert!(miss.is_empty());
    }

    #[test]
    fn vector_size_does_not_change_results() {
        let block = test_block();
        let restrictions = vec![
            Restriction::between(0, 3i64, 40i64),
            Restriction::eq(1, "S0"),
        ];
        let reference = reference_scan(&block, &restrictions);
        for vector_size in [64, 1000, 8192, 1 << 20] {
            let options = ScanOptions {
                vector_size,
                ..ScanOptions::default()
            };
            assert_eq!(scan_collect(&block, &restrictions, options), reference);
        }
    }

    #[test]
    fn every_isa_level_gives_identical_results() {
        let block = test_block();
        let restrictions = vec![
            Restriction::between(3, 10_020i64, 10_120i64),
            Restriction::cmp(0, CmpOp::Le, 30i64),
        ];
        let reference = reference_scan(&block, &restrictions);
        for isa in IsaLevel::available() {
            let options = ScanOptions {
                isa,
                ..ScanOptions::default()
            };
            assert_eq!(
                scan_collect(&block, &restrictions, options),
                reference,
                "isa {isa}"
            );
        }
    }
}
