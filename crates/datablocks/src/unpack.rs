//! Unpacking matches: materialising the attribute values of the matching record
//! positions into uncompressed output vectors that are pushed to the consuming
//! operator tuple at a time (Section 3.4 / Figure 6).
//!
//! Because Data Blocks are byte-addressable, unpacking a *sparse* set of positions is
//! cheap — this is the property Section 5.4 contrasts against bit-packed storage,
//! where sparse decompression dominates the scan cost.

use crate::block::DataBlock;
use crate::column::{Column, ColumnData};
use crate::compression::ColumnCompression;
use crate::value::Value;

/// Append the values of attribute `col` at the given positions to `out`.
///
/// `out` must have the attribute's logical type; NULL rows append `Value::Null`
/// (tracked in the output column's validity bitmap).
pub fn unpack_column(block: &DataBlock, col: usize, positions: &[u32], out: &mut Column) {
    let column = block.column(col);
    match &column.compression {
        // Fast paths that avoid per-row Value boxing.
        ColumnCompression::Truncated { min, codes } => {
            if let (ColumnData::Int(dst), None) = (&mut out.data, &column.validity) {
                dst.reserve(positions.len());
                for &pos in positions {
                    dst.push(min + codes.get(pos as usize) as i64);
                }
                sync_validity(out, positions.len());
                return;
            }
        }
        ColumnCompression::DictInt { dict, codes } => {
            if let (ColumnData::Int(dst), None) = (&mut out.data, &column.validity) {
                dst.reserve(positions.len());
                for &pos in positions {
                    dst.push(dict[codes.get(pos as usize) as usize]);
                }
                sync_validity(out, positions.len());
                return;
            }
        }
        ColumnCompression::DictStr { dict, codes } => {
            if let (ColumnData::Str(dst), None) = (&mut out.data, &column.validity) {
                dst.reserve(positions.len());
                for &pos in positions {
                    dst.push(dict[codes.get(pos as usize) as usize].clone());
                }
                sync_validity(out, positions.len());
                return;
            }
        }
        ColumnCompression::Double(values) => {
            if let (ColumnData::Double(dst), None) = (&mut out.data, &column.validity) {
                dst.reserve(positions.len());
                for &pos in positions {
                    dst.push(values[pos as usize]);
                }
                sync_validity(out, positions.len());
                return;
            }
        }
        ColumnCompression::SingleValue(_) => {}
    }
    // General path: per-row Value extraction (nullable columns, single-value columns,
    // or a type-widening output column).
    for &pos in positions {
        out.push(column.get(pos as usize));
    }
}

/// Keep a pre-existing validity bitmap consistent when a fast path appended
/// `appended` definitely-valid rows directly to the data vector.
fn sync_validity(out: &mut Column, appended: usize) {
    if let Some(validity) = &mut out.validity {
        validity.extend(std::iter::repeat_n(true, appended));
    }
}

/// Unpack several attributes at once, appending to one output column per requested
/// attribute. This is the operation a vectorized Data Block scan performs per match
/// vector before handing tuples to the JIT-compiled pipeline.
pub fn unpack_columns(block: &DataBlock, cols: &[usize], positions: &[u32], out: &mut [Column]) {
    assert_eq!(
        cols.len(),
        out.len(),
        "one output column per requested attribute"
    );
    for (slot, &col) in cols.iter().enumerate() {
        unpack_column(block, col, positions, &mut out[slot]);
    }
}

/// Unpack a single record (point access) across the requested attributes.
pub fn unpack_point(block: &DataBlock, row: usize, cols: &[usize]) -> Vec<Value> {
    cols.iter().map(|&col| block.get(row, col)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{double_column, freeze, int_column, str_column};
    use crate::column::Column;
    use crate::value::DataType;

    fn block() -> DataBlock {
        let a = int_column((0..1000).map(|i| i * 2).collect());
        let b = str_column((0..1000).map(|i| format!("g{}", i % 7)).collect());
        let c = double_column((0..1000).map(|i| i as f64 / 4.0).collect());
        freeze(&[a, b, c])
    }

    #[test]
    fn unpack_int_fast_path() {
        let block = block();
        let mut out = Column::new(DataType::Int);
        unpack_column(&block, 0, &[1, 5, 999], &mut out);
        assert_eq!(out.data.as_int().unwrap(), &[2, 10, 1998]);
    }

    #[test]
    fn unpack_str_and_double() {
        let block = block();
        let mut s = Column::new(DataType::Str);
        let mut d = Column::new(DataType::Double);
        unpack_columns(&block, &[1, 2], &[0, 7, 13], &mut [s.clone(), d.clone()]);
        // unpack_columns works on a slice; redo with proper borrows to inspect
        let mut out = [Column::new(DataType::Str), Column::new(DataType::Double)];
        unpack_columns(&block, &[1, 2], &[0, 7, 13], &mut out);
        s = out[0].clone();
        d = out[1].clone();
        assert_eq!(
            s.data.as_str().unwrap(),
            &["g0".to_string(), "g0".to_string(), "g6".to_string()]
        );
        assert_eq!(d.data.as_double().unwrap(), &[0.0, 1.75, 3.25]);
    }

    #[test]
    fn unpack_appends_to_existing_output() {
        let block = block();
        let mut out = Column::new(DataType::Int);
        unpack_column(&block, 0, &[1], &mut out);
        unpack_column(&block, 0, &[2], &mut out);
        assert_eq!(out.data.as_int().unwrap(), &[2, 4]);
    }

    #[test]
    fn unpack_nullable_column_preserves_nulls() {
        let mut col = Column::new(DataType::Int);
        for i in 0..100i64 {
            if i % 3 == 0 {
                col.push(Value::Null);
            } else {
                col.push(Value::Int(i));
            }
        }
        let block = freeze(&[col]);
        let mut out = Column::new(DataType::Int);
        unpack_column(&block, 0, &[0, 1, 2, 3, 4], &mut out);
        assert_eq!(out.get(0), Value::Null);
        assert_eq!(out.get(1), Value::Int(1));
        assert_eq!(out.get(3), Value::Null);
        assert_eq!(out.null_count(), 2);
    }

    #[test]
    fn unpack_single_value_column() {
        let block = freeze(&[int_column(vec![9; 50]), int_column((0..50).collect())]);
        let mut out = Column::new(DataType::Int);
        unpack_column(&block, 0, &[3, 4, 5], &mut out);
        assert_eq!(out.data.as_int().unwrap(), &[9, 9, 9]);
    }

    #[test]
    fn unpack_point_access() {
        let block = block();
        let row = unpack_point(&block, 10, &[0, 1, 2]);
        assert_eq!(
            row,
            vec![Value::Int(20), Value::Str("g3".into()), Value::Double(2.5)]
        );
    }

    #[test]
    fn mixed_validity_output_column_stays_consistent() {
        // First unpack from a nullable column (creates a validity bitmap in `out`),
        // then from a non-nullable one (fast path must keep the bitmap in sync).
        let mut nullable = Column::new(DataType::Int);
        nullable.push(Value::Null);
        nullable.push(Value::Int(5));
        let block_a = freeze(&[nullable]);
        let block_b = freeze(&[int_column(vec![7, 8])]);
        let mut out = Column::new(DataType::Int);
        unpack_column(&block_a, 0, &[0, 1], &mut out);
        unpack_column(&block_b, 0, &[0, 1], &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out.get(0), Value::Null);
        assert_eq!(out.get(2), Value::Int(7));
        assert_eq!(out.null_count(), 1);
    }
}
