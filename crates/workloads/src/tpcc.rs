//! TPC-C style OLTP workload (Section 5.3).
//!
//! The paper uses TPC-C with 5 warehouses to show that (a) freezing *old* neworder
//! records into Data Blocks costs almost no transaction throughput, and (b) even a
//! database stored entirely in Data Blocks only loses ~9 % on the read-only
//! transactions. This module implements the relations and the three transactions the
//! paper exercises — `new_order` (write-heavy), `order_status` and `stock_level`
//! (read-only) — against the hybrid storage layer.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use datablocks::{DataType, Value};
use storage::{ColumnDef, Database, RowId, Schema};

/// Number of districts per warehouse (per the TPC-C specification).
pub const DISTRICTS_PER_WAREHOUSE: i64 = 10;
/// Customers per district (scaled down from the spec's 3000 to keep generation fast;
/// the access pattern is unchanged).
pub const CUSTOMERS_PER_DISTRICT: i64 = 300;
/// Items in the catalogue (scaled down from 100 000).
pub const ITEMS: i64 = 10_000;
/// Stock rows per warehouse equals the item count.
pub const STOCK_PER_WAREHOUSE: i64 = ITEMS;

/// A TPC-C database plus the running order-id counters.
pub struct TpccDb {
    /// The relational data.
    pub db: Database,
    next_order_id: Vec<i64>,
    warehouses: i64,
    rng: StdRng,
}

fn composite_district_key(warehouse: i64, district: i64) -> i64 {
    warehouse * 100 + district
}

fn composite_customer_key(warehouse: i64, district: i64, customer: i64) -> i64 {
    (warehouse * 100 + district) * 100_000 + customer
}

fn composite_order_key(warehouse: i64, district: i64, order: i64) -> i64 {
    (warehouse * 100 + district) * 10_000_000 + order
}

fn composite_stock_key(warehouse: i64, item: i64) -> i64 {
    warehouse * 1_000_000 + item
}

impl TpccDb {
    /// Generate a database with the given number of warehouses (the paper uses 5).
    pub fn generate(warehouses: i64) -> TpccDb {
        let mut rng = StdRng::seed_from_u64(0x7CC0_1234_5678_u64);
        let mut db = Database::new();

        // item
        let item_schema = Schema::new(vec![
            ColumnDef::new("i_id", DataType::Int),
            ColumnDef::new("i_name", DataType::Str),
            ColumnDef::new("i_price", DataType::Int),
        ])
        .with_primary_key("i_id");
        let item = db.create_relation("item", item_schema);
        for i in 1..=ITEMS {
            item.insert(vec![
                Value::Int(i),
                Value::Str(format!("item-{i}")),
                Value::Int(rng.gen_range(100..10_000)),
            ]);
        }

        // warehouse / district
        let warehouse_schema = Schema::new(vec![
            ColumnDef::new("w_id", DataType::Int),
            ColumnDef::new("w_name", DataType::Str),
            ColumnDef::new("w_ytd", DataType::Int),
        ])
        .with_primary_key("w_id");
        let warehouse_rel = db.create_relation("warehouse", warehouse_schema);
        for w in 1..=warehouses {
            warehouse_rel.insert(vec![
                Value::Int(w),
                Value::Str(format!("wh-{w}")),
                Value::Int(0),
            ]);
        }
        let district_schema = Schema::new(vec![
            ColumnDef::new("d_key", DataType::Int),
            ColumnDef::new("d_w_id", DataType::Int),
            ColumnDef::new("d_id", DataType::Int),
            ColumnDef::new("d_next_o_id", DataType::Int),
        ])
        .with_primary_key("d_key");
        let district = db.create_relation("district", district_schema);
        for w in 1..=warehouses {
            for d in 1..=DISTRICTS_PER_WAREHOUSE {
                district.insert(vec![
                    Value::Int(composite_district_key(w, d)),
                    Value::Int(w),
                    Value::Int(d),
                    Value::Int(1),
                ]);
            }
        }

        // customer
        let customer_schema = Schema::new(vec![
            ColumnDef::new("c_key", DataType::Int),
            ColumnDef::new("c_w_id", DataType::Int),
            ColumnDef::new("c_d_id", DataType::Int),
            ColumnDef::new("c_id", DataType::Int),
            ColumnDef::new("c_name", DataType::Str),
            ColumnDef::new("c_balance", DataType::Int),
        ])
        .with_primary_key("c_key");
        let customer = db.create_relation("customer_tpcc", customer_schema);
        for w in 1..=warehouses {
            for d in 1..=DISTRICTS_PER_WAREHOUSE {
                for c in 1..=CUSTOMERS_PER_DISTRICT {
                    customer.insert(vec![
                        Value::Int(composite_customer_key(w, d, c)),
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(c),
                        Value::Str(format!("customer-{w}-{d}-{c}")),
                        Value::Int(-1000),
                    ]);
                }
            }
        }

        // stock
        let stock_schema = Schema::new(vec![
            ColumnDef::new("s_key", DataType::Int),
            ColumnDef::new("s_w_id", DataType::Int),
            ColumnDef::new("s_i_id", DataType::Int),
            ColumnDef::new("s_quantity", DataType::Int),
        ])
        .with_primary_key("s_key");
        let stock = db.create_relation("stock", stock_schema);
        for w in 1..=warehouses {
            for i in 1..=STOCK_PER_WAREHOUSE {
                stock.insert(vec![
                    Value::Int(composite_stock_key(w, i)),
                    Value::Int(w),
                    Value::Int(i),
                    Value::Int(rng.gen_range(10..100)),
                ]);
            }
        }

        // neworder / orderline (start empty; new_order transactions fill them)
        let neworder_schema = Schema::new(vec![
            ColumnDef::new("no_key", DataType::Int),
            ColumnDef::new("no_w_id", DataType::Int),
            ColumnDef::new("no_d_id", DataType::Int),
            ColumnDef::new("no_o_id", DataType::Int),
            ColumnDef::new("no_c_id", DataType::Int),
            ColumnDef::new("no_entry_d", DataType::Int),
            ColumnDef::new("no_ol_cnt", DataType::Int),
        ])
        .with_primary_key("no_key");
        db.create_relation("neworder", neworder_schema);
        let orderline_schema = Schema::new(vec![
            ColumnDef::new("ol_o_key", DataType::Int),
            ColumnDef::new("ol_number", DataType::Int),
            ColumnDef::new("ol_i_id", DataType::Int),
            ColumnDef::new("ol_quantity", DataType::Int),
            ColumnDef::new("ol_amount", DataType::Int),
        ]);
        db.create_relation("orderline", orderline_schema);

        let districts = (warehouses * DISTRICTS_PER_WAREHOUSE) as usize;
        TpccDb {
            db,
            next_order_id: vec![1; districts],
            warehouses,
            rng,
        }
    }

    /// Number of warehouses.
    pub fn warehouses(&self) -> i64 {
        self.warehouses
    }

    fn district_slot(&self, warehouse: i64, district: i64) -> usize {
        ((warehouse - 1) * DISTRICTS_PER_WAREHOUSE + (district - 1)) as usize
    }

    /// The TPC-C *new order* transaction: allocate an order id, insert the neworder
    /// record and 5–15 order lines, and decrement the stock of the ordered items.
    pub fn new_order(&mut self) -> RowId {
        let warehouse = self.rng.gen_range(1..=self.warehouses);
        let district = self.rng.gen_range(1..=DISTRICTS_PER_WAREHOUSE);
        let customer = self.rng.gen_range(1..=CUSTOMERS_PER_DISTRICT);
        let slot = self.district_slot(warehouse, district);
        let order_id = self.next_order_id[slot];
        self.next_order_id[slot] += 1;

        let line_count = self.rng.gen_range(5..=15i64);
        let order_key = composite_order_key(warehouse, district, order_id);
        let lines: Vec<(i64, i64)> = (0..line_count)
            .map(|_| (self.rng.gen_range(1..=ITEMS), self.rng.gen_range(1..=10i64)))
            .collect();

        // insert order lines and adjust stock
        for (number, (item, quantity)) in lines.iter().enumerate() {
            let amount = quantity * 100;
            self.db.relation_mut("orderline").insert(vec![
                Value::Int(order_key),
                Value::Int(number as i64 + 1),
                Value::Int(*item),
                Value::Int(*quantity),
                Value::Int(amount),
            ]);
            let stock = self.db.relation_mut("stock");
            if let Some(id) = stock.lookup_pk(composite_stock_key(warehouse, *item)) {
                let current = stock.get(id, 3).as_int().unwrap_or(0);
                let new_quantity = if current > *quantity {
                    current - quantity
                } else {
                    current + 91 - quantity
                };
                let mut row = stock.get_row(id);
                row[3] = Value::Int(new_quantity);
                stock.update(id, row);
            }
        }

        self.db.relation_mut("neworder").insert(vec![
            Value::Int(order_key),
            Value::Int(warehouse),
            Value::Int(district),
            Value::Int(order_id),
            Value::Int(composite_customer_key(warehouse, district, customer)),
            Value::Int(order_id), // entry date surrogate
            Value::Int(line_count),
        ])
    }

    /// The read-only *order status* transaction: look up a customer and the lines of
    /// that district's most recent order.
    pub fn order_status(&mut self) -> usize {
        let warehouse = self.rng.gen_range(1..=self.warehouses);
        let district = self.rng.gen_range(1..=DISTRICTS_PER_WAREHOUSE);
        let customer = self.rng.gen_range(1..=CUSTOMERS_PER_DISTRICT);
        let mut touched = 0;
        if let Some(id) = self
            .db
            .relation("customer_tpcc")
            .lookup_pk(composite_customer_key(warehouse, district, customer))
        {
            let _balance = self.db.relation("customer_tpcc").get(id, 5);
            touched += 1;
        }
        let slot = self.district_slot(warehouse, district);
        let last_order = self.next_order_id[slot] - 1;
        if last_order >= 1 {
            let order_key = composite_order_key(warehouse, district, last_order);
            if let Some(id) = self.db.relation("neworder").lookup_pk(order_key) {
                let line_count = self
                    .db
                    .relation("neworder")
                    .get(id, 6)
                    .as_int()
                    .unwrap_or(0);
                touched += line_count as usize;
            }
        }
        touched
    }

    /// The read-only *stock level* transaction: count the stock rows of one warehouse
    /// whose quantity is below a threshold.
    pub fn stock_level(&mut self) -> usize {
        let warehouse = self.rng.gen_range(1..=self.warehouses);
        let threshold = self.rng.gen_range(10..=20i64);
        let stock = self.db.relation("stock");
        let schema = stock.schema();
        let restrictions = vec![
            datablocks::Restriction::eq(schema.idx("s_w_id"), warehouse),
            datablocks::Restriction::cmp(
                schema.idx("s_quantity"),
                datablocks::CmpOp::Lt,
                threshold,
            ),
        ];
        let mut scanner = exec::RelationScanner::new(
            stock,
            vec![schema.idx("s_i_id")],
            restrictions,
            exec::ScanConfig::default(),
        );
        scanner.collect_all().len()
    }

    /// Freeze the *old half* of the neworder relation into Data Blocks — the paper's
    /// first experiment (cold history frozen, recent data hot). Also freezes every
    /// full chunk of orderline.
    pub fn freeze_old_neworders(&mut self) {
        self.db.relation_mut("neworder").freeze_full_chunks();
        self.db.relation_mut("orderline").freeze_full_chunks();
    }

    /// Freeze the complete database into Data Blocks (the paper's second experiment:
    /// read-only transactions over a fully frozen database).
    pub fn freeze_everything(&mut self) {
        self.db.freeze_all();
    }
}

/// Throughput measurement helper: run `transactions` calls of the given closure and
/// return transactions per second.
pub fn measure_throughput<F: FnMut()>(transactions: usize, mut body: F) -> f64 {
    let start = std::time::Instant::now();
    for _ in 0..transactions {
        body();
    }
    transactions as f64 / start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_populates_relations() {
        let db = TpccDb::generate(2);
        assert_eq!(db.db.relation("warehouse").row_count(), 2);
        assert_eq!(db.db.relation("district").row_count(), 20);
        assert_eq!(
            db.db.relation("customer_tpcc").row_count() as i64,
            2 * DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT
        );
        assert_eq!(
            db.db.relation("stock").row_count() as i64,
            2 * STOCK_PER_WAREHOUSE
        );
        assert_eq!(db.db.relation("neworder").row_count(), 0);
    }

    #[test]
    fn new_order_inserts_rows_and_updates_stock() {
        let mut db = TpccDb::generate(1);
        for _ in 0..50 {
            db.new_order();
        }
        assert_eq!(db.db.relation("neworder").row_count(), 50);
        let lines = db.db.relation("orderline").row_count();
        assert!((250..=750).contains(&lines), "order lines {lines}");
    }

    #[test]
    fn read_only_transactions_work_on_hot_and_frozen_data() {
        let mut db = TpccDb::generate(1);
        for _ in 0..100 {
            db.new_order();
        }
        let hot_status = db.order_status();
        let hot_stock = db.stock_level();
        db.freeze_everything();
        let frozen_status = db.order_status();
        let frozen_stock = db.stock_level();
        // Values are workload-dependent, but the transactions must succeed and touch
        // a plausible number of records in both storage states.
        assert!(hot_status >= 1 && frozen_status >= 1);
        assert!(hot_stock <= ITEMS as usize && frozen_stock <= ITEMS as usize);
    }

    #[test]
    fn freezing_old_neworders_keeps_transactions_running() {
        let mut db = TpccDb::generate(1);
        for _ in 0..60 {
            db.new_order();
        }
        db.freeze_old_neworders();
        // new orders keep flowing after the history is frozen
        for _ in 0..20 {
            db.new_order();
        }
        assert_eq!(db.db.relation("neworder").row_count(), 80);
        assert!(db.order_status() >= 1);
    }

    #[test]
    fn throughput_helper_reports_positive_rate() {
        let mut counter = 0u64;
        let tps = measure_throughput(1000, || counter += 1);
        assert_eq!(counter, 1000);
        assert!(tps > 0.0);
    }
}
