//! TPC-H data generator and reference queries.
//!
//! The generator is a dbgen-equivalent: it produces the TPC-H relations with the
//! value domains, distributions and insertion order of the specification (uniform
//! dates over 1992–1998, primary-key order, 25 nations, the standard dictionaries
//! for flags, priorities, segments and ship modes). Monetary values are generated as
//! *scaled integers* (cents / basis points) — the same decision real systems make for
//! DECIMAL columns — which keeps SARGable predicates on them integer-typed so they
//! can be evaluated on compressed Data Blocks with SIMD.
//!
//! The scale factor is continuous: `sf = 1.0` corresponds to 6 M lineitem rows. The
//! evaluation of the paper uses SF 100; this reproduction defaults to much smaller
//! factors and reports relative behaviour (see EXPERIMENTS.md).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use datablocks::scan::Restriction;
use datablocks::{date_to_days, CmpOp, DataType, Value};
use exec::prelude::*;
use query::Connect;
use storage::{ColumnDef, Database, Relation, Schema};

/// Fixed seed so every run generates the same database.
const SEED: u64 = 0x5EED_DA7A_B10C;

/// Names of the TPC-H relations this generator produces.
pub const RELATIONS: &[&str] = &[
    "lineitem", "orders", "customer", "part", "supplier", "nation", "region",
];

const REGIONS: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const NATIONS: &[(&str, i64)] = &[
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIP_MODES: &[&str] = &["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const SHIP_INSTRUCT: &[&str] = &[
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const CONTAINERS: &[&str] = &[
    "SM CASE",
    "SM BOX",
    "SM PACK",
    "SM PKG",
    "MED BAG",
    "MED BOX",
    "MED PKG",
    "MED PACK",
    "LG CASE",
    "LG BOX",
    "LG PACK",
    "LG PKG",
    "JUMBO BAG",
    "JUMBO BOX",
    "JUMBO PACK",
    "JUMBO PKG",
];
const TYPES_SYLL1: &[&str] = &["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPES_SYLL2: &[&str] = &["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPES_SYLL3: &[&str] = &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const BRANDS: usize = 25;

/// Cardinalities (per unit scale factor) of the TPC-H relations.
pub fn cardinality(relation: &str, sf: f64) -> usize {
    let scale = |n: f64| (n * sf).round().max(1.0) as usize;
    match relation {
        "lineitem" => scale(6_000_000.0),
        "orders" => scale(1_500_000.0),
        "customer" => scale(150_000.0),
        "part" => scale(200_000.0),
        "supplier" => scale(10_000.0),
        "nation" => 25,
        "region" => 5,
        other => panic!("unknown TPC-H relation {other:?}"),
    }
}

/// Column index helper bundling the generated database with its scale factor.
pub struct TpchDb {
    /// The populated database (relations hot until [`TpchDb::freeze`] is called).
    pub db: Database,
    /// The scale factor used for generation.
    pub scale_factor: f64,
}

impl TpchDb {
    /// Generate a TPC-H database at the given scale factor with the default chunk
    /// capacity (2^16 records per Data Block).
    pub fn generate(scale_factor: f64) -> TpchDb {
        Self::generate_with_chunk(scale_factor, datablocks::DEFAULT_BLOCK_CAPACITY)
    }

    /// Generate with a specific chunk/block capacity (used by the Figure 10 sweep).
    pub fn generate_with_chunk(scale_factor: f64, chunk_capacity: usize) -> TpchDb {
        let mut rng = StdRng::seed_from_u64(SEED);
        let mut db = Database::new();
        db.add_relation(gen_region(chunk_capacity));
        db.add_relation(gen_nation(chunk_capacity));
        db.add_relation(gen_supplier(&mut rng, scale_factor, chunk_capacity));
        db.add_relation(gen_part(&mut rng, scale_factor, chunk_capacity));
        db.add_relation(gen_customer(&mut rng, scale_factor, chunk_capacity));
        let (orders, lineitem) = gen_orders_lineitem(&mut rng, scale_factor, chunk_capacity);
        db.add_relation(orders);
        db.add_relation(lineitem);
        TpchDb { db, scale_factor }
    }

    /// Freeze every relation into Data Blocks (insertion order preserved, as the
    /// paper does for its TPC-H experiments).
    pub fn freeze(&mut self) {
        self.db.freeze_all();
    }

    /// Freeze every relation, but sort each lineitem block by `l_shipdate` first
    /// (the Figure 11 configuration).
    pub fn freeze_lineitem_sorted_by_shipdate(&mut self) {
        for name in RELATIONS {
            let relation = self.db.relation_mut(name);
            if *name == "lineitem" {
                let col = relation.schema().idx("l_shipdate");
                relation.freeze_all_sorted_by(col);
            } else {
                relation.freeze_all();
            }
        }
    }

    /// Borrow a relation.
    pub fn relation(&self, name: &str) -> &Relation {
        self.db.relation(name)
    }
}

fn money(rng: &mut StdRng, lo: f64, hi: f64) -> i64 {
    // monetary amounts in cents
    (rng.gen_range(lo..hi) * 100.0).round() as i64
}

fn date_range() -> (i64, i64) {
    (date_to_days(1992, 1, 1), date_to_days(1998, 12, 31))
}

fn gen_region(chunk: usize) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("r_regionkey", DataType::Int),
        ColumnDef::new("r_name", DataType::Str),
        ColumnDef::new("r_comment", DataType::Str),
    ])
    .with_primary_key("r_regionkey");
    let mut rel = Relation::with_chunk_capacity("region", schema, chunk);
    for (i, name) in REGIONS.iter().enumerate() {
        rel.insert(vec![
            Value::Int(i as i64),
            Value::Str(name.to_string()),
            Value::Str(format!("region comment {i}")),
        ]);
    }
    rel
}

fn gen_nation(chunk: usize) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("n_nationkey", DataType::Int),
        ColumnDef::new("n_name", DataType::Str),
        ColumnDef::new("n_regionkey", DataType::Int),
        ColumnDef::new("n_comment", DataType::Str),
    ])
    .with_primary_key("n_nationkey");
    let mut rel = Relation::with_chunk_capacity("nation", schema, chunk);
    for (i, (name, region)) in NATIONS.iter().enumerate() {
        rel.insert(vec![
            Value::Int(i as i64),
            Value::Str(name.to_string()),
            Value::Int(*region),
            Value::Str(format!("nation comment {i}")),
        ]);
    }
    rel
}

fn gen_supplier(rng: &mut StdRng, sf: f64, chunk: usize) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("s_suppkey", DataType::Int),
        ColumnDef::new("s_name", DataType::Str),
        ColumnDef::new("s_nationkey", DataType::Int),
        ColumnDef::new("s_acctbal", DataType::Int),
    ])
    .with_primary_key("s_suppkey");
    let mut rel = Relation::with_chunk_capacity("supplier", schema, chunk);
    for key in 1..=cardinality("supplier", sf) as i64 {
        rel.insert(vec![
            Value::Int(key),
            Value::Str(format!("Supplier#{key:09}")),
            Value::Int(rng.gen_range(0..25)),
            Value::Int(money(rng, -999.99, 9999.99)),
        ]);
    }
    rel
}

fn gen_part(rng: &mut StdRng, sf: f64, chunk: usize) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("p_partkey", DataType::Int),
        ColumnDef::new("p_name", DataType::Str),
        ColumnDef::new("p_brand", DataType::Str),
        ColumnDef::new("p_type", DataType::Str),
        ColumnDef::new("p_size", DataType::Int),
        ColumnDef::new("p_container", DataType::Str),
        ColumnDef::new("p_retailprice", DataType::Int),
    ])
    .with_primary_key("p_partkey");
    let mut rel = Relation::with_chunk_capacity("part", schema, chunk);
    for key in 1..=cardinality("part", sf) as i64 {
        let brand = rng.gen_range(1..=BRANDS);
        let p_type = format!(
            "{} {} {}",
            TYPES_SYLL1[rng.gen_range(0..TYPES_SYLL1.len())],
            TYPES_SYLL2[rng.gen_range(0..TYPES_SYLL2.len())],
            TYPES_SYLL3[rng.gen_range(0..TYPES_SYLL3.len())]
        );
        rel.insert(vec![
            Value::Int(key),
            Value::Str(format!("part {key} lavender blush")),
            Value::Str(format!("Brand#{brand:02}")),
            Value::Str(p_type),
            Value::Int(rng.gen_range(1..=50)),
            Value::Str(CONTAINERS[rng.gen_range(0..CONTAINERS.len())].to_string()),
            Value::Int(90_000 + (key % 200_000) * 10),
        ]);
    }
    rel
}

fn gen_customer(rng: &mut StdRng, sf: f64, chunk: usize) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("c_custkey", DataType::Int),
        ColumnDef::new("c_name", DataType::Str),
        ColumnDef::new("c_address", DataType::Str),
        ColumnDef::new("c_nationkey", DataType::Int),
        ColumnDef::new("c_phone", DataType::Str),
        ColumnDef::new("c_acctbal", DataType::Int),
        ColumnDef::new("c_mktsegment", DataType::Str),
        ColumnDef::new("c_comment", DataType::Str),
    ])
    .with_primary_key("c_custkey");
    let mut rel = Relation::with_chunk_capacity("customer", schema, chunk);
    for key in 1..=cardinality("customer", sf) as i64 {
        let nation = rng.gen_range(0..25i64);
        rel.insert(vec![
            Value::Int(key),
            Value::Str(format!("Customer#{key:09}")),
            Value::Str(format!("address-{}", rng.gen_range(0..1_000_000))),
            Value::Int(nation),
            Value::Str(format!(
                "{}-{:03}-{:03}-{:04}",
                10 + nation,
                key % 1000,
                (key * 7) % 1000,
                (key * 13) % 10_000
            )),
            Value::Int(money(rng, -999.99, 9999.99)),
            Value::Str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string()),
            Value::Str(format!("customer comment {}", key % 50)),
        ]);
    }
    rel
}

fn gen_orders_lineitem(rng: &mut StdRng, sf: f64, chunk: usize) -> (Relation, Relation) {
    let orders_schema = Schema::new(vec![
        ColumnDef::new("o_orderkey", DataType::Int),
        ColumnDef::new("o_custkey", DataType::Int),
        ColumnDef::new("o_orderstatus", DataType::Str),
        ColumnDef::new("o_totalprice", DataType::Int),
        ColumnDef::new("o_orderdate", DataType::Int),
        ColumnDef::new("o_orderpriority", DataType::Str),
        ColumnDef::new("o_shippriority", DataType::Int),
    ])
    .with_primary_key("o_orderkey");
    let lineitem_schema = Schema::new(vec![
        ColumnDef::new("l_orderkey", DataType::Int),
        ColumnDef::new("l_partkey", DataType::Int),
        ColumnDef::new("l_suppkey", DataType::Int),
        ColumnDef::new("l_linenumber", DataType::Int),
        ColumnDef::new("l_quantity", DataType::Int),
        ColumnDef::new("l_extendedprice", DataType::Int),
        ColumnDef::new("l_discount", DataType::Int),
        ColumnDef::new("l_tax", DataType::Int),
        ColumnDef::new("l_returnflag", DataType::Str),
        ColumnDef::new("l_linestatus", DataType::Str),
        ColumnDef::new("l_shipdate", DataType::Int),
        ColumnDef::new("l_commitdate", DataType::Int),
        ColumnDef::new("l_receiptdate", DataType::Int),
        ColumnDef::new("l_shipinstruct", DataType::Str),
        ColumnDef::new("l_shipmode", DataType::Str),
    ]);
    let mut orders = Relation::with_chunk_capacity("orders", orders_schema, chunk);
    let mut lineitem = Relation::with_chunk_capacity("lineitem", lineitem_schema, chunk);

    let n_orders = cardinality("orders", sf) as i64;
    let n_customers = cardinality("customer", sf) as i64;
    let n_parts = cardinality("part", sf) as i64;
    let n_suppliers = cardinality("supplier", sf) as i64;
    let (date_lo, date_hi) = date_range();
    // The last ~151 days hold no new orders (dates must leave room for ship dates).
    let order_date_hi = date_hi - 151;

    for orderkey in 1..=n_orders {
        let orderdate = rng.gen_range(date_lo..=order_date_hi);
        let custkey = rng.gen_range(1..=n_customers);
        let lines = rng.gen_range(1..=7i64);
        let mut total = 0i64;
        let mut any_open = false;
        let mut all_fulfilled = true;
        for line in 1..=lines {
            let quantity = rng.gen_range(1..=50i64);
            let partkey = rng.gen_range(1..=n_parts);
            let extendedprice = quantity * (90_000 + (partkey % 200_000) * 10) / 100;
            let discount = rng.gen_range(0..=10i64); // hundredths: 0.00 – 0.10
            let tax = rng.gen_range(0..=8i64);
            let shipdate = orderdate + rng.gen_range(1..=121);
            let commitdate = orderdate + rng.gen_range(30..=90);
            let receiptdate = shipdate + rng.gen_range(1..=30);
            let today = date_to_days(1995, 6, 17);
            let (returnflag, linestatus) = if receiptdate <= today {
                (if rng.gen_bool(0.5) { "R" } else { "A" }, "F")
            } else {
                ("N", "O")
            };
            if linestatus == "O" {
                any_open = true;
                all_fulfilled = false;
            }
            total += extendedprice;
            lineitem.insert(vec![
                Value::Int(orderkey),
                Value::Int(partkey),
                Value::Int(rng.gen_range(1..=n_suppliers)),
                Value::Int(line),
                Value::Int(quantity),
                Value::Int(extendedprice),
                Value::Int(discount),
                Value::Int(tax),
                Value::Str(returnflag.to_string()),
                Value::Str(linestatus.to_string()),
                Value::Int(shipdate),
                Value::Int(commitdate),
                Value::Int(receiptdate),
                Value::Str(SHIP_INSTRUCT[rng.gen_range(0..SHIP_INSTRUCT.len())].to_string()),
                Value::Str(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())].to_string()),
            ]);
        }
        let status = if all_fulfilled {
            "F"
        } else if any_open && rng.gen_bool(0.5) {
            "O"
        } else {
            "P"
        };
        orders.insert(vec![
            Value::Int(orderkey),
            Value::Int(custkey),
            Value::Str(status.to_string()),
            Value::Int(total),
            Value::Int(orderdate),
            Value::Str(PRIORITIES[rng.gen_range(0..PRIORITIES.len())].to_string()),
            Value::Int(0),
        ]);
    }
    (orders, lineitem)
}

// ======================================================================== queries

/// Result of running a reference query: the output batch plus the scan statistics of
/// the driving table scan.
pub struct QueryResult {
    /// Query output.
    pub batch: Batch,
    /// Statistics of the largest (driving) scan.
    pub scan_stats: ScanStats,
}

/// Run a single-table aggregation either serially (one worker) or morsel-parallel
/// ([`ParallelHashAggregateOp`]: workers aggregate radix-partitioned state over
/// their morsels, the merge phase combines partitions in parallel). The shared
/// dispatch of the scan-dominated aggregation queries (Q1, Q6).
fn scan_aggregation(
    relation: &Relation,
    projection: Vec<usize>,
    restrictions: Vec<Restriction>,
    config: ScanConfig,
    group_exprs: Vec<Expr>,
    group_types: Vec<DataType>,
    aggregates: Vec<AggSpec>,
) -> QueryResult {
    if exec::morsel::effective_threads(config.threads) != 1 {
        let spec = PipelineSpec::scan(projection, restrictions, config);
        let mut agg = ParallelHashAggregateOp::over_relation(
            relation,
            spec,
            group_exprs,
            group_types,
            aggregates,
        );
        let batch = agg.collect_all();
        return QueryResult {
            batch,
            scan_stats: agg.scan_stats(),
        };
    }
    let scanner = RelationScanner::new(relation, projection, restrictions, config);
    let mut scan_op = ScanOp::new(scanner);
    let mut agg = HashAggregateOp::new(
        Box::new(TakeStats::new(&mut scan_op)),
        group_exprs,
        group_types,
        aggregates,
    );
    let batch = agg.collect_all();
    drop(agg);
    QueryResult {
        batch,
        scan_stats: scan_op.stats(),
    }
}

/// TPC-H Q1: scan-heavy aggregation over almost all of lineitem. With
/// `config.threads != 1` the aggregation itself runs morsel-parallel
/// ([`ParallelHashAggregateOp`]).
pub fn q1(db: &TpchDb, config: ScanConfig) -> QueryResult {
    let lineitem = db.relation("lineitem");
    let s = lineitem.schema();
    let cutoff = date_to_days(1998, 12, 1) - 90;
    let projection = vec![
        s.idx("l_returnflag"),
        s.idx("l_linestatus"),
        s.idx("l_quantity"),
        s.idx("l_extendedprice"),
        s.idx("l_discount"),
        s.idx("l_tax"),
    ];
    let restrictions = vec![Restriction::cmp(s.idx("l_shipdate"), CmpOp::Le, cutoff)];
    // After projection by the scan: 0 flag, 1 status, 2 qty, 3 price, 4 disc, 5 tax
    let disc_price = Expr::col(3).mul(Expr::lit(1.0).sub(Expr::col(4).div(Expr::lit(100i64))));
    let charge = disc_price
        .clone()
        .mul(Expr::lit(1.0).add(Expr::col(5).div(Expr::lit(100i64))));
    let group_exprs = vec![Expr::col(0), Expr::col(1)];
    let group_types = vec![DataType::Str, DataType::Str];
    let aggregates = vec![
        AggSpec::new(AggFunc::Sum, Expr::col(2), DataType::Int),
        AggSpec::new(AggFunc::Sum, Expr::col(3), DataType::Int),
        AggSpec::new(AggFunc::Sum, disc_price, DataType::Double),
        AggSpec::new(AggFunc::Sum, charge, DataType::Double),
        AggSpec::new(AggFunc::Avg, Expr::col(2), DataType::Double),
        AggSpec::new(AggFunc::Avg, Expr::col(3), DataType::Double),
        AggSpec::new(AggFunc::Avg, Expr::col(4), DataType::Double),
        AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
    ];
    scan_aggregation(
        lineitem,
        projection,
        restrictions,
        config,
        group_exprs,
        group_types,
        aggregates,
    )
}

/// TPC-H Q6: the forecasting revenue change query — highly selective SARGable
/// restrictions on lineitem, the paper's showcase for SARG/SMA/PSMA push-down.
pub fn q6(db: &TpchDb, config: ScanConfig) -> QueryResult {
    let lineitem = db.relation("lineitem");
    let s = lineitem.schema();
    let year_lo = date_to_days(1994, 1, 1);
    let year_hi = date_to_days(1995, 1, 1) - 1;
    let projection = vec![s.idx("l_extendedprice"), s.idx("l_discount")];
    let restrictions = vec![
        Restriction::between(s.idx("l_shipdate"), year_lo, year_hi),
        Restriction::between(s.idx("l_discount"), 5i64, 7i64),
        Restriction::cmp(s.idx("l_quantity"), CmpOp::Lt, 24i64),
    ];
    let revenue = Expr::col(0).mul(Expr::col(1)).div(Expr::lit(100i64));
    let aggregates = vec![AggSpec::new(AggFunc::Sum, revenue, DataType::Double)];
    scan_aggregation(
        lineitem,
        projection,
        restrictions,
        config,
        vec![],
        vec![],
        aggregates,
    )
}

/// TPC-H Q3 (shipping priority): customer ⋈ orders ⋈ lineitem with restrictions on
/// all three tables, top-10 by revenue.
pub fn q3(db: &TpchDb, config: ScanConfig) -> QueryResult {
    let cutoff = date_to_days(1995, 3, 15);
    // customer: keys of the BUILDING segment
    let customer = db.relation("customer");
    let cs = customer.schema();
    let cust_scan = RelationScanner::new(
        customer,
        vec![cs.idx("c_custkey")],
        vec![Restriction::eq(cs.idx("c_mktsegment"), "BUILDING")],
        config,
    );
    // orders before the cutoff
    let orders = db.relation("orders");
    let os = orders.schema();
    let orders_scan = RelationScanner::new(
        orders,
        vec![
            os.idx("o_orderkey"),
            os.idx("o_custkey"),
            os.idx("o_orderdate"),
            os.idx("o_shippriority"),
        ],
        vec![Restriction::cmp(os.idx("o_orderdate"), CmpOp::Lt, cutoff)],
        config,
    );
    // join customers with orders (semi: keep order columns); the build side
    // partitions in parallel when the scan configuration asks for threads
    let cust_orders = HashJoinOp::new(
        Box::new(ScanOp::new(cust_scan)),
        Box::new(ScanOp::new(orders_scan)),
        vec![0],
        vec![1], // o_custkey
        JoinType::ProbeSemi,
    )
    .with_parallel_build(config.threads);
    // lineitem after the cutoff — the driving scan
    let lineitem = db.relation("lineitem");
    let ls = lineitem.schema();
    let lineitem_scan = RelationScanner::new(
        lineitem,
        vec![
            ls.idx("l_orderkey"),
            ls.idx("l_extendedprice"),
            ls.idx("l_discount"),
        ],
        vec![Restriction::cmp(ls.idx("l_shipdate"), CmpOp::Gt, cutoff)],
        config,
    );
    let mut lineitem_op = ScanOp::new(lineitem_scan);
    // join: build on qualified orders (an intermediate result — its batches become
    // the build morsels), probe with lineitem
    let join = HashJoinOp::new(
        Box::new(cust_orders),
        Box::new(TakeStats::new(&mut lineitem_op)),
        vec![0], // o_orderkey
        vec![0], // l_orderkey
        JoinType::Inner,
    )
    .with_parallel_build(config.threads);
    // output of inner join: [o_orderkey, o_custkey, o_orderdate, o_shippriority,
    //                        l_orderkey, l_extendedprice, l_discount]
    let revenue = Expr::col(5).mul(Expr::lit(1.0).sub(Expr::col(6).div(Expr::lit(100i64))));
    let agg = HashAggregateOp::new(
        Box::new(join),
        vec![Expr::col(0), Expr::col(2), Expr::col(3)],
        vec![DataType::Int, DataType::Int, DataType::Int],
        vec![AggSpec::new(AggFunc::Sum, revenue, DataType::Double)],
    );
    let mut sort = SortOp::new(
        Box::new(agg),
        vec![SortKey::desc(3), SortKey::asc(1)],
        Some(10),
    );
    let batch = sort.collect_all();
    drop(sort);
    QueryResult {
        batch,
        scan_stats: lineitem_op.stats(),
    }
}

/// TPC-H Q12 (shipping modes and order priority): lineitem ⋈ orders with range
/// restrictions on receipt/commit/ship dates and an IN-list on ship mode.
pub fn q12(db: &TpchDb, config: ScanConfig) -> QueryResult {
    let year_lo = date_to_days(1994, 1, 1);
    let year_hi = date_to_days(1995, 1, 1) - 1;
    let lineitem = db.relation("lineitem");
    let ls = lineitem.schema();
    let lineitem_scan = RelationScanner::new(
        lineitem,
        vec![
            ls.idx("l_orderkey"),
            ls.idx("l_shipmode"),
            ls.idx("l_commitdate"),
            ls.idx("l_shipdate"),
            ls.idx("l_receiptdate"),
        ],
        vec![Restriction::between(
            ls.idx("l_receiptdate"),
            year_lo,
            year_hi,
        )],
        config,
    );
    let mut lineitem_op = ScanOp::new(lineitem_scan);
    // residual: l_shipmode in ('MAIL','SHIP') and l_commitdate < l_receiptdate and
    //           l_shipdate < l_commitdate
    let residual = Expr::col(1)
        .cmp(CmpOp::Eq, Expr::lit("MAIL"))
        .or(Expr::col(1).cmp(CmpOp::Eq, Expr::lit("SHIP")))
        .and(Expr::col(2).cmp(CmpOp::Lt, Expr::col(4)))
        .and(Expr::col(3).cmp(CmpOp::Lt, Expr::col(2)));
    let filtered = FilterOp::new(Box::new(TakeStats::new(&mut lineitem_op)), residual);

    let orders = db.relation("orders");
    let os = orders.schema();
    let orders_scan = RelationScanner::new(
        orders,
        vec![os.idx("o_orderkey"), os.idx("o_orderpriority")],
        vec![],
        config,
    );
    let join = HashJoinOp::new(
        Box::new(ScanOp::new(orders_scan)),
        Box::new(filtered),
        vec![0],
        vec![0],
        JoinType::Inner,
    )
    .with_parallel_build(config.threads);
    // join output: [o_orderkey, o_orderpriority, l_orderkey, l_shipmode, ...]
    let high = Expr::col(1)
        .cmp(CmpOp::Eq, Expr::lit("1-URGENT"))
        .or(Expr::col(1).cmp(CmpOp::Eq, Expr::lit("2-HIGH")));
    let high_line = Expr::Case(
        Box::new(high.clone()),
        Box::new(Expr::lit(1i64)),
        Box::new(Expr::lit(0i64)),
    );
    let low_line = Expr::Case(
        Box::new(high),
        Box::new(Expr::lit(0i64)),
        Box::new(Expr::lit(1i64)),
    );
    let agg = HashAggregateOp::new(
        Box::new(join),
        vec![Expr::col(3)],
        vec![DataType::Str],
        vec![
            AggSpec::new(AggFunc::Sum, high_line, DataType::Int),
            AggSpec::new(AggFunc::Sum, low_line, DataType::Int),
        ],
    );
    let mut sort = SortOp::new(Box::new(agg), vec![SortKey::asc(0)], None);
    let batch = sort.collect_all();
    drop(sort);
    QueryResult {
        batch,
        scan_stats: lineitem_op.stats(),
    }
}

/// TPC-H Q14 (promotion effect): lineitem ⋈ part over one month of ship dates.
pub fn q14(db: &TpchDb, config: ScanConfig) -> QueryResult {
    let month_lo = date_to_days(1995, 9, 1);
    let month_hi = date_to_days(1995, 10, 1) - 1;
    let lineitem = db.relation("lineitem");
    let ls = lineitem.schema();
    let lineitem_scan = RelationScanner::new(
        lineitem,
        vec![
            ls.idx("l_partkey"),
            ls.idx("l_extendedprice"),
            ls.idx("l_discount"),
        ],
        vec![Restriction::between(
            ls.idx("l_shipdate"),
            month_lo,
            month_hi,
        )],
        config,
    );
    let mut lineitem_op = ScanOp::new(lineitem_scan);
    let part = db.relation("part");
    let ps = part.schema();
    let part_scan = RelationScanner::new(
        part,
        vec![ps.idx("p_partkey"), ps.idx("p_type")],
        vec![],
        config,
    );
    let join = HashJoinOp::new(
        Box::new(ScanOp::new(part_scan)),
        Box::new(TakeStats::new(&mut lineitem_op)),
        vec![0],
        vec![0],
        JoinType::Inner,
    )
    .with_parallel_build(config.threads);
    // join output: [p_partkey, p_type, l_partkey, l_extendedprice, l_discount]
    let disc_price = Expr::col(3).mul(Expr::lit(1.0).sub(Expr::col(4).div(Expr::lit(100i64))));
    let is_promo = Expr::col(1)
        .cmp(CmpOp::Ge, Expr::lit("PROMO"))
        .and(Expr::col(1).cmp(CmpOp::Lt, Expr::lit("PROMP")));
    let promo_revenue = Expr::Case(
        Box::new(is_promo),
        Box::new(disc_price.clone()),
        Box::new(Expr::lit(0.0)),
    );
    let mut agg = HashAggregateOp::new(
        Box::new(join),
        vec![],
        vec![],
        vec![
            AggSpec::new(AggFunc::Sum, promo_revenue, DataType::Double),
            AggSpec::new(AggFunc::Sum, disc_price, DataType::Double),
        ],
    );
    let batch = agg.collect_all();
    drop(agg);
    QueryResult {
        batch,
        scan_stats: lineitem_op.stats(),
    }
}

/// The query subset reproduced by the Table 2 / Table 4 harness.
pub const QUERY_SUBSET: &[&str] = &["Q1", "Q3", "Q6", "Q12", "Q14"];

/// Run a query of [`QUERY_SUBSET`] by name.
pub fn run_query(db: &TpchDb, name: &str, config: ScanConfig) -> QueryResult {
    match name {
        "Q1" => q1(db, config),
        "Q3" => q3(db, config),
        "Q6" => q6(db, config),
        "Q12" => q12(db, config),
        "Q14" => q14(db, config),
        other => panic!("query {other:?} is not part of the reproduced subset"),
    }
}

/// The checked-in JSON IR document of a [`QUERY_SUBSET`] query — the same plan
/// expressed through the `query` crate's IR (see `crates/query/README.md`)
/// instead of a hand-assembled operator tree.
pub fn query_ir(name: &str) -> &'static str {
    match name {
        "Q1" => include_str!("../queries/q1.json"),
        "Q3" => include_str!("../queries/q3.json"),
        "Q6" => include_str!("../queries/q6.json"),
        "Q12" => include_str!("../queries/q12.json"),
        "Q14" => include_str!("../queries/q14.json"),
        other => panic!("query {other:?} is not part of the reproduced subset"),
    }
}

/// The checked-in SQL text of a [`QUERY_SUBSET`] query. Lowering it with
/// `query::parse_sql` produces byte-for-byte the IR document [`query_ir`]
/// returns (`plan_dump --check` and the golden tests pin that equality), so
/// SQL, JSON IR and the hand-built operator trees are all the same plan.
pub fn query_sql(name: &str) -> &'static str {
    match name {
        "Q1" => include_str!("../queries/sql/q1.sql"),
        "Q3" => include_str!("../queries/sql/q3.sql"),
        "Q6" => include_str!("../queries/sql/q6.sql"),
        "Q12" => include_str!("../queries/sql/q12.sql"),
        "Q14" => include_str!("../queries/sql/q14.sql"),
        other => panic!("query {other:?} is not part of the reproduced subset"),
    }
}

/// Run a [`QUERY_SUBSET`] query from its checked-in IR file through the query
/// service ([`query::Session`]) instead of the hand-built operator tree. The
/// differential suite (`tests/ir_differential.rs`) pins both paths
/// byte-identical across thread counts and cache regimes.
pub fn run_query_ir(db: &TpchDb, name: &str, config: ScanConfig) -> Batch {
    db.db
        .connect()
        .with_config(config)
        .query_ir(query_ir(name))
        .and_then(|stream| stream.collect())
        .unwrap_or_else(|err| panic!("running {name}: {err}"))
}

/// Run a [`QUERY_SUBSET`] query from its checked-in SQL text through the query
/// service. Identical results to [`run_query_ir`] because the SQL lowers to
/// the same IR document.
pub fn run_query_sql(db: &TpchDb, name: &str, config: ScanConfig) -> Batch {
    db.db
        .connect()
        .with_config(config)
        .sql(query_sql(name))
        .and_then(|stream| stream.collect())
        .unwrap_or_else(|err| panic!("running {name}: {err}"))
}

/// Adapter passing batches through while leaving ownership of the wrapped operator
/// with the caller, so scan statistics remain accessible after the pipeline ran.
struct TakeStats<'a, 'b> {
    inner: &'b mut ScanOp<'a>,
}

impl<'a, 'b> TakeStats<'a, 'b> {
    fn new(inner: &'b mut ScanOp<'a>) -> Self {
        TakeStats { inner }
    }
}

impl<'a, 'b> Operator for TakeStats<'a, 'b> {
    fn next_batch(&mut self) -> Option<Batch> {
        self.inner.next_batch()
    }
    fn output_types(&self) -> Vec<DataType> {
        self.inner.output_types()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db(frozen: bool) -> TpchDb {
        let mut db = TpchDb::generate_with_chunk(0.001, 1024);
        if frozen {
            db.freeze();
        }
        db
    }

    #[test]
    fn generator_cardinalities_scale() {
        assert_eq!(cardinality("lineitem", 1.0), 6_000_000);
        assert_eq!(cardinality("orders", 0.01), 15_000);
        assert_eq!(cardinality("nation", 0.01), 25);
        let db = tiny_db(false);
        assert_eq!(db.relation("nation").row_count(), 25);
        assert_eq!(db.relation("region").row_count(), 5);
        assert_eq!(db.relation("orders").row_count(), 1_500);
        let li = db.relation("lineitem").row_count();
        assert!((4_500..=10_500).contains(&li), "lineitem rows {li}");
    }

    #[test]
    fn generated_domains_are_plausible() {
        let db = tiny_db(false);
        let lineitem = db.relation("lineitem");
        let s = lineitem.schema();
        let chunk = &lineitem.hot_chunks()[0];
        for row in (0..chunk.len()).step_by(113) {
            let qty = chunk.get(row, s.idx("l_quantity")).as_int().unwrap();
            assert!((1..=50).contains(&qty));
            let disc = chunk.get(row, s.idx("l_discount")).as_int().unwrap();
            assert!((0..=10).contains(&disc));
            let ship = chunk.get(row, s.idx("l_shipdate")).as_int().unwrap();
            assert!(ship >= date_to_days(1992, 1, 1) && ship <= date_to_days(1998, 12, 31) + 130);
            let flag = chunk.get(row, s.idx("l_returnflag"));
            assert!(matches!(flag.as_str(), Some("A" | "N" | "R")));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpchDb::generate_with_chunk(0.0005, 512);
        let b = TpchDb::generate_with_chunk(0.0005, 512);
        let ra = a.relation("lineitem");
        let rb = b.relation("lineitem");
        assert_eq!(ra.row_count(), rb.row_count());
        let s = ra.schema();
        let ca = &ra.hot_chunks()[0];
        let cb = &rb.hot_chunks()[0];
        for row in (0..ca.len()).step_by(37) {
            assert_eq!(
                ca.get(row, s.idx("l_extendedprice")),
                cb.get(row, s.idx("l_extendedprice"))
            );
        }
    }

    #[test]
    fn q1_and_q6_results_are_identical_across_scan_configs() {
        let mut db = tiny_db(false);
        db.freeze();
        let configs = [
            "jit",
            "vectorized",
            "vectorized+sarg",
            "datablocks+sarg",
            "datablocks+psma",
        ];
        let q1_results: Vec<Batch> = configs
            .iter()
            .map(|c| q1(&db, ScanConfig::named(c)).batch)
            .collect();
        let q6_results: Vec<Batch> = configs
            .iter()
            .map(|c| q6(&db, ScanConfig::named(c)).batch)
            .collect();
        for other in &q1_results[1..] {
            assert_eq!(other.len(), q1_results[0].len());
            for row in 0..other.len() {
                assert_eq!(other.row(row), q1_results[0].row(row));
            }
        }
        for other in &q6_results[1..] {
            assert_eq!(other.len(), q6_results[0].len());
            for row in 0..other.len() {
                assert_eq!(other.row(row), q6_results[0].row(row));
            }
        }
        // Q1 groups by (returnflag, linestatus): at most 6 combinations exist
        assert!(q1_results[0].len() <= 6 && q1_results[0].len() >= 3);
        // Q6 yields a single revenue number
        assert_eq!(q6_results[0].len(), 1);
        assert!(q6_results[0].value(0, 0).as_double().unwrap() > 0.0);
    }

    #[test]
    fn join_queries_run_and_agree_across_configs() {
        let mut db = tiny_db(false);
        db.freeze();
        for name in ["Q3", "Q12", "Q14"] {
            let reference = run_query(&db, name, ScanConfig::named("jit")).batch;
            let with_datablocks = run_query(&db, name, ScanConfig::named("datablocks+psma")).batch;
            assert_eq!(reference.len(), with_datablocks.len(), "{name}");
            for row in 0..reference.len() {
                assert_eq!(
                    reference.row(row),
                    with_datablocks.row(row),
                    "{name} row {row}"
                );
            }
        }
    }

    #[test]
    fn q6_scan_skips_blocks_when_lineitem_sorted_by_shipdate() {
        let mut sorted = tiny_db(false);
        sorted.freeze_lineitem_sorted_by_shipdate();
        let mut unsorted = tiny_db(false);
        unsorted.freeze();
        let sorted_stats = q6(&sorted, ScanConfig::named("datablocks+psma")).scan_stats;
        let unsorted_stats = q6(&unsorted, ScanConfig::named("datablocks+psma")).scan_stats;
        // With block-wise sorting the PSMA narrows ranges, so fewer rows are scanned.
        assert!(
            sorted_stats.rows_scanned <= unsorted_stats.rows_scanned,
            "sorted {sorted_stats:?} vs unsorted {unsorted_stats:?}"
        );
        // And the result is identical (up to floating-point summation order, which
        // legitimately differs when block contents are re-ordered).
        let a = q6(&sorted, ScanConfig::named("datablocks+psma"))
            .batch
            .value(0, 0);
        let b = q6(&unsorted, ScanConfig::named("datablocks+psma"))
            .batch
            .value(0, 0);
        let (a, b) = (a.as_double().unwrap(), b.as_double().unwrap());
        assert!((a - b).abs() / b.abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn queries_agree_between_serial_and_parallel_execution() {
        let mut db = tiny_db(false);
        db.freeze();
        for name in QUERY_SUBSET {
            let serial = run_query(&db, name, ScanConfig::default()).batch;
            for threads in [2usize, 4] {
                let config = ScanConfig::default().with_threads(threads);
                let parallel = run_query(&db, name, config).batch;
                assert_eq!(serial.len(), parallel.len(), "{name} threads {threads}");
                for row in 0..serial.len() {
                    for col in 0..serial.column_count() {
                        let (a, b) = (serial.value(row, col), parallel.value(row, col));
                        match (&a, &b) {
                            // Parallel aggregation reassociates double sums; every
                            // other value (keys, counts, integer sums, join output)
                            // must be byte-identical.
                            (Value::Double(x), Value::Double(y)) => {
                                let scale = x.abs().max(y.abs()).max(1.0);
                                assert!(
                                    (x - y).abs() / scale < 1e-9,
                                    "{name} threads {threads} row {row} col {col}: {x} vs {y}"
                                );
                            }
                            _ => assert_eq!(a, b, "{name} threads {threads} row {row} col {col}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not part of the reproduced subset")]
    fn unknown_query_panics() {
        let db = tiny_db(true);
        run_query(&db, "Q99", ScanConfig::default());
    }
}
