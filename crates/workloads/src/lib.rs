//! # workloads — data generators and reference queries for the evaluation
//!
//! Every data set and query workload the paper's evaluation uses, rebuilt as
//! deterministic generators:
//!
//! * [`tpch`] — a dbgen-equivalent TPC-H generator (continuous scale factor, scaled
//!   integer decimals) plus the reproduced query subset (Q1, Q3, Q6, Q12, Q14).
//! * [`tpcc`] — a TPC-C style OLTP workload (new-order, order-status, stock-level)
//!   for the Section 5.3 throughput experiments.
//! * [`imdb`] — a synthetic stand-in for the IMDB `cast_info` relation.
//! * [`flights`] — a synthetic US on-time-performance data set, naturally ordered by
//!   date, plus the Appendix D query.
//!
//! All generators take explicit sizes/scale factors and fixed seeds, so experiments
//! are reproducible run to run.

#![warn(missing_docs)]

pub mod flights;
pub mod imdb;
pub mod tpcc;
pub mod tpch;

pub use tpcc::TpccDb;
pub use tpch::TpchDb;
