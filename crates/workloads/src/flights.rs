//! Synthetic flight on-time-performance data set (Table 1, Section 5.2, Appendix D).
//!
//! The paper uses the US DOT on-time performance records (all commercial flights
//! October 1987 – April 2008, ~120 M rows). The generator reproduces the properties
//! the experiments depend on: the relation is **naturally ordered by date** (so SMAs
//! skip most blocks for date-restricted queries), carriers and airports are
//! low-cardinality strings, and arrival delays are small integers centred near zero.
//! The Appendix D query — average arrival delay per carrier into SFO for 1998–2008 —
//! is provided as a ready-made plan.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use datablocks::scan::Restriction;
use datablocks::{DataType, Value};
use exec::prelude::*;
use storage::{ColumnDef, Relation, Schema};

const CARRIERS: &[&str] = &[
    "AA", "AS", "B6", "CO", "DL", "EV", "F9", "FL", "HA", "MQ", "NW", "OO", "UA", "US", "WN", "XE",
    "YV", "9E", "OH", "TZ",
];

const AIRPORTS: &[&str] = &[
    "ATL", "ORD", "DFW", "DEN", "LAX", "PHX", "IAH", "LAS", "DTW", "SFO", "SLC", "MSP", "MCO",
    "EWR", "CLT", "SEA", "BOS", "LGA", "JFK", "BWI", "MIA", "SAN", "OAK", "PDX", "SMF", "STL",
    "TPA", "MDW", "HOU", "RDU",
];

/// Generate `rows` flight records covering October 1987 through April 2008 in date
/// order.
pub fn generate(rows: usize, chunk_capacity: usize) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("year", DataType::Int),
        ColumnDef::new("month", DataType::Int),
        ColumnDef::new("dayofmonth", DataType::Int),
        ColumnDef::new("dayofweek", DataType::Int),
        ColumnDef::new("uniquecarrier", DataType::Str),
        ColumnDef::new("origin", DataType::Str),
        ColumnDef::new("dest", DataType::Str),
        ColumnDef::new("depdelay", DataType::Int),
        ColumnDef::new("arrdelay", DataType::Int),
        ColumnDef::new("distance", DataType::Int),
    ]);
    let mut rel = Relation::with_chunk_capacity("flights", schema, chunk_capacity);
    let mut rng = StdRng::seed_from_u64(0xF11_6475);

    // 247 months from 1987-10 to 2008-04, visited in order so the data is naturally
    // date-clustered like the real data set.
    let total_months = (2008 - 1987) * 12 + (4 - 10) + 1; // 247
    for i in 0..rows {
        let month_index = (i * total_months as usize) / rows;
        let year = 1987 + (month_index + 9) / 12;
        let month = (month_index + 9) % 12 + 1;
        let dayofmonth = rng.gen_range(1..=28i64);
        let dayofweek = rng.gen_range(1..=7i64);
        let carrier = CARRIERS[rng.gen_range(0..CARRIERS.len())];
        let origin = AIRPORTS[rng.gen_range(0..AIRPORTS.len())];
        let mut dest = AIRPORTS[rng.gen_range(0..AIRPORTS.len())];
        if dest == origin {
            dest = AIRPORTS[(rng.gen_range(0..AIRPORTS.len() - 1) + 1) % AIRPORTS.len()];
        }
        let depdelay = rng.gen_range(-10..=120i64);
        // arrival delay correlates with departure delay, carriers differ slightly
        let carrier_bias = (carrier.as_bytes()[0] % 7) as i64 - 3;
        let arrdelay = depdelay + rng.gen_range(-15..=15) + carrier_bias;
        rel.insert(vec![
            Value::Int(year as i64),
            Value::Int(month as i64),
            Value::Int(dayofmonth),
            Value::Int(dayofweek),
            Value::Str(carrier.to_string()),
            Value::Str(origin.to_string()),
            Value::Str(dest.to_string()),
            Value::Int(depdelay),
            Value::Int(arrdelay),
            Value::Int(rng.gen_range(100..=2_500)),
        ]);
    }
    rel
}

/// The Appendix D query: carriers and their average arrival delay into SFO for the
/// years 1998–2008, most delayed first.
pub fn sfo_delay_query(flights: &Relation, config: ScanConfig) -> (Batch, ScanStats) {
    let s = flights.schema();
    let scanner = RelationScanner::new(
        flights,
        vec![s.idx("uniquecarrier"), s.idx("arrdelay")],
        vec![
            Restriction::between(s.idx("year"), 1998i64, 2008i64),
            Restriction::eq(s.idx("dest"), "SFO"),
        ],
        config,
    );
    let mut scan = ScanOp::new(scanner);
    let agg = HashAggregateOp::new(
        Box::new(PassThrough(&mut scan)),
        vec![Expr::col(0)],
        vec![DataType::Str],
        vec![AggSpec::new(AggFunc::Avg, Expr::col(1), DataType::Double)],
    );
    let mut sort = SortOp::new(Box::new(agg), vec![SortKey::desc(1)], None);
    let batch = sort.collect_all();
    drop(sort);
    (batch, scan.stats())
}

struct PassThrough<'a, 'b>(&'b mut ScanOp<'a>);

impl<'a, 'b> Operator for PassThrough<'a, 'b> {
    fn next_batch(&mut self) -> Option<Batch> {
        self.0.next_batch()
    }
    fn output_types(&self) -> Vec<DataType> {
        self.0.output_types()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_is_date_ordered_and_plausible() {
        let rel = generate(10_000, 2_048);
        let s = rel.schema();
        let mut prev = 0i64;
        for (chunk_idx, chunk) in rel.hot_chunks().iter().enumerate() {
            for row in 0..chunk.len() {
                let year = chunk.get(row, s.idx("year")).as_int().unwrap();
                let month = chunk.get(row, s.idx("month")).as_int().unwrap();
                let stamp = year * 12 + month;
                assert!(
                    stamp >= prev,
                    "date order violated at chunk {chunk_idx} row {row}"
                );
                prev = stamp;
                assert!((1987..=2008).contains(&year));
                assert!((1..=12).contains(&month));
            }
        }
    }

    #[test]
    fn sfo_query_agrees_across_scan_configs_and_skips_blocks() {
        let mut rel = generate(30_000, 2_048);
        rel.freeze_all();
        let (jit_result, _) = sfo_delay_query(&rel, ScanConfig::named("jit"));
        let (db_result, stats) = sfo_delay_query(&rel, ScanConfig::named("datablocks+psma"));
        assert_eq!(jit_result.len(), db_result.len());
        for row in 0..jit_result.len() {
            assert_eq!(jit_result.row(row), db_result.row(row));
        }
        // The relation is date-ordered, so the year restriction lets SMAs skip the
        // pre-1998 blocks entirely.
        assert!(stats.blocks_skipped > 0, "stats {stats:?}");
        // Result is sorted by average delay, descending.
        for row in 1..db_result.len() {
            let prev = db_result.value(row - 1, 1).as_double().unwrap();
            let this = db_result.value(row, 1).as_double().unwrap();
            assert!(prev >= this);
        }
    }
}
