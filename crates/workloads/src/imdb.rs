//! Synthetic IMDB `cast_info` relation (Table 1 / Figure 10 data set).
//!
//! The paper uses the largest relation of the Internet Movie Database — `cast_info`,
//! which records which person appears in which movie in which role — as a real-world
//! compression target. The real dump is not redistributable, so this generator
//! produces a synthetic equivalent with the same schema and the properties that
//! matter for compression: a dense ascending primary key, foreign keys with large
//! skewed domains, a tiny `role_id` domain (11 values), a mostly-NULL low-cardinality
//! `note` column and a mostly-NULL `nr_order` column.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use datablocks::{DataType, Value};
use storage::{ColumnDef, Relation, Schema};

/// Number of rows of the real cast_info relation (≈ 36 M in the 2016 snapshot); the
/// generator scales this down with a row-count parameter.
pub const FULL_SIZE: usize = 36_000_000;

const NOTES: &[&str] = &[
    "(voice)",
    "(uncredited)",
    "(archive footage)",
    "(as himself)",
    "(singing voice)",
    "(credit only)",
];

/// Generate a synthetic `cast_info` relation with `rows` records.
pub fn generate(rows: usize, chunk_capacity: usize) -> Relation {
    let schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int),
        ColumnDef::new("person_id", DataType::Int),
        ColumnDef::new("movie_id", DataType::Int),
        ColumnDef::nullable("person_role_id", DataType::Int),
        ColumnDef::nullable("note", DataType::Str),
        ColumnDef::nullable("nr_order", DataType::Int),
        ColumnDef::new("role_id", DataType::Int),
    ])
    .with_primary_key("id");
    let mut rel = Relation::with_chunk_capacity("cast_info", schema, chunk_capacity);
    let mut rng = StdRng::seed_from_u64(0x1DB_CA57);

    // domain sizes proportional to the requested scale
    let persons = (rows / 9).max(100) as i64;
    let movies = (rows / 15).max(50) as i64;
    let roles = (rows / 30).max(30) as i64;

    for id in 1..=rows as i64 {
        // person/movie ids are skewed: prolific actors and long-running shows
        let person = skewed(&mut rng, persons);
        let movie = skewed(&mut rng, movies);
        let person_role = if rng.gen_bool(0.45) {
            Value::Int(skewed(&mut rng, roles))
        } else {
            Value::Null
        };
        let note = if rng.gen_bool(0.18) {
            Value::Str(NOTES[rng.gen_range(0..NOTES.len())].to_string())
        } else {
            Value::Null
        };
        let nr_order = if rng.gen_bool(0.30) {
            Value::Int(rng.gen_range(1..=60))
        } else {
            Value::Null
        };
        rel.insert(vec![
            Value::Int(id),
            Value::Int(person),
            Value::Int(movie),
            person_role,
            note,
            nr_order,
            Value::Int(rng.gen_range(1..=11)),
        ]);
    }
    rel
}

fn skewed(rng: &mut StdRng, domain: i64) -> i64 {
    // square a uniform draw to concentrate mass on small ids (Zipf-ish skew)
    let u: f64 = rng.gen_range(0.0..1.0);
    ((u * u * (domain - 1) as f64) as i64) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_relation_matches_schema_and_domains() {
        let rel = generate(5_000, 1024);
        assert_eq!(rel.row_count(), 5_000);
        let schema = rel.schema();
        assert_eq!(schema.column_count(), 7);
        let chunk = &rel.hot_chunks()[0];
        let mut note_nulls = 0;
        for row in 0..chunk.len() {
            let role = chunk.get(row, schema.idx("role_id")).as_int().unwrap();
            assert!((1..=11).contains(&role));
            if chunk.get(row, schema.idx("note")).is_null() {
                note_nulls += 1;
            }
        }
        // note is mostly NULL
        assert!(note_nulls > chunk.len() / 2);
    }

    #[test]
    fn cast_info_compresses_well_when_frozen() {
        let mut rel = generate(20_000, 4_096);
        let uncompressed: usize = rel.hot_chunks().iter().map(|c| c.byte_size()).sum();
        rel.freeze_all();
        let stats = rel.storage_stats();
        assert!(
            stats.cold_bytes * 2 < uncompressed,
            "{} vs {}",
            stats.cold_bytes,
            uncompressed
        );
        assert!(stats.compression_ratio() > 2.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(1_000, 512);
        let b = generate(1_000, 512);
        let s = a.schema();
        for row in (0..1_000).step_by(53) {
            assert_eq!(
                a.hot_chunks()[row / 512].get(row % 512, s.idx("person_id")),
                b.hot_chunks()[row / 512].get(row % 512, s.idx("person_id"))
            );
        }
    }
}
