-- TPC-H Q14: promotion effect. The PROMO prefix test is spelled as a string
-- range ('PROMO' <= p_type < 'PROMP') because the engine has no LIKE.
SELECT sum(CASE WHEN p_type >= 'PROMO' AND p_type < 'PROMP'
                THEN l_extendedprice * (1.0 - l_discount / 100)
                ELSE 0.0 END),
       sum(l_extendedprice * (1.0 - l_discount / 100))
FROM part
JOIN lineitem ON p_partkey = l_partkey
WHERE l_shipdate BETWEEN 9374 AND 9403
