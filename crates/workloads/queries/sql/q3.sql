-- TPC-H Q3: shipping priority. customer SEMI JOIN orders keeps orders rows
-- with a BUILDING customer (the customer columns are not needed afterwards),
-- then the inner join picks up the lineitems.
SELECT l_orderkey,
       o_orderdate,
       o_shippriority,
       sum(l_extendedprice * (1.0 - l_discount / 100)) AS revenue
FROM customer
SEMI JOIN orders ON c_custkey = o_custkey
JOIN lineitem ON o_orderkey = l_orderkey
WHERE c_mktsegment = 'BUILDING'
  AND o_orderdate < 9204
  AND l_shipdate > 9204
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
