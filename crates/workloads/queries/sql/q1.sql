-- TPC-H Q1: pricing summary report.
-- Dates are day numbers since 1900-01-01; money columns are integer cents;
-- l_discount / l_tax are integer percents, hence the / 100 rescaling.
SELECT l_returnflag,
       l_linestatus,
       sum(l_quantity),
       sum(l_extendedprice),
       sum(l_extendedprice * (1.0 - l_discount / 100)),
       sum(l_extendedprice * (1.0 - l_discount / 100) * (1.0 + l_tax / 100)),
       avg(l_quantity),
       avg(l_extendedprice),
       avg(l_discount),
       count(*)
FROM lineitem
WHERE l_shipdate <= 10471
GROUP BY l_returnflag, l_linestatus
