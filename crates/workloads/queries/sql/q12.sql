-- TPC-H Q12: shipping modes and order priority. The CASE sums count urgent
-- vs. non-urgent orders per ship mode.
SELECT l_shipmode,
       sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 1 ELSE 0 END),
       sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                THEN 0 ELSE 1 END)
FROM orders
JOIN lineitem ON o_orderkey = l_orderkey
WHERE (l_shipmode = 'MAIL' OR l_shipmode = 'SHIP')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate BETWEEN 8766 AND 9130
GROUP BY l_shipmode
ORDER BY l_shipmode
