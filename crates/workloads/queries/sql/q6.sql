-- TPC-H Q6: forecasting revenue change. All three conjuncts are sargable and
-- push into the scan (BETWEEN + BETWEEN + one-sided range).
SELECT sum(l_extendedprice * l_discount / 100)
FROM lineitem
WHERE l_shipdate BETWEEN 8766 AND 9130
  AND l_discount BETWEEN 5 AND 7
  AND l_quantity < 24
