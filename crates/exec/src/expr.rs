//! Scalar expressions evaluated inside query pipelines (projections, aggregate
//! inputs, residual predicates).
//!
//! The expression language is deliberately small — column references, constants,
//! arithmetic, and comparisons/boolean connectives — which is all the reproduced
//! queries need. SARGable base-table restrictions do **not** go through this module;
//! they are pushed into the scan as [`datablocks::Restriction`]s where they can be
//! evaluated on compressed data with SIMD.

use datablocks::scan::CmpOpOrderingExt;
use datablocks::{CmpOp, Value};

use crate::batch::Batch;

/// An arithmetic operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (NULL on division by zero, like SQL).
    Div,
}

/// A scalar expression over the columns of a batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to column `n` of the input batch.
    Col(usize),
    /// A literal constant.
    Const(Value),
    /// Arithmetic between two sub-expressions.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Comparison between two sub-expressions (yields `Int(1)` / `Int(0)` / NULL).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND of two boolean sub-expressions.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR of two boolean sub-expressions.
    Or(Box<Expr>, Box<Expr>),
    /// `CASE WHEN cond THEN a ELSE b END`.
    Case(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Column reference.
    pub fn col(idx: usize) -> Expr {
        Expr::Col(idx)
    }

    /// Literal constant.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Const(value.into())
    }

    /// `self + other`
    #[allow(clippy::should_implement_trait)] // builder API, deliberately not std::ops
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(other))
    }

    /// `self / other`
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(other))
    }

    /// `self <op> other` as a boolean (0/1) expression.
    pub fn cmp(self, op: CmpOp, other: Expr) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(other))
    }

    /// Logical AND.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Logical OR.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// Evaluate the expression for one tuple of a batch.
    pub fn eval(&self, batch: &Batch, row: usize) -> Value {
        match self {
            Expr::Col(idx) => batch.value(row, *idx),
            Expr::Const(v) => v.clone(),
            Expr::Arith(op, lhs, rhs) => arith(*op, &lhs.eval(batch, row), &rhs.eval(batch, row)),
            Expr::Cmp(op, lhs, rhs) => {
                let l = lhs.eval(batch, row);
                let r = rhs.eval(batch, row);
                match l.sql_cmp(&r) {
                    Some(ord) => Value::Int(op.eval_ordering(ord) as i64),
                    None => Value::Null,
                }
            }
            Expr::And(lhs, rhs) => {
                match (truthy(&lhs.eval(batch, row)), truthy(&rhs.eval(batch, row))) {
                    (Some(false), _) | (_, Some(false)) => Value::Int(0),
                    (Some(true), Some(true)) => Value::Int(1),
                    _ => Value::Null,
                }
            }
            Expr::Or(lhs, rhs) => {
                match (truthy(&lhs.eval(batch, row)), truthy(&rhs.eval(batch, row))) {
                    (Some(true), _) | (_, Some(true)) => Value::Int(1),
                    (Some(false), Some(false)) => Value::Int(0),
                    _ => Value::Null,
                }
            }
            Expr::Case(cond, then, otherwise) => {
                if truthy(&cond.eval(batch, row)).unwrap_or(false) {
                    then.eval(batch, row)
                } else {
                    otherwise.eval(batch, row)
                }
            }
        }
    }

    /// Evaluate the expression as a boolean filter for one tuple (NULL → false).
    pub fn eval_bool(&self, batch: &Batch, row: usize) -> bool {
        truthy(&self.eval(batch, row)).unwrap_or(false)
    }
}

/// SQL-ish truthiness: integers/doubles are true when non-zero, NULL is unknown.
fn truthy(value: &Value) -> Option<bool> {
    match value {
        Value::Null => None,
        Value::Int(v) => Some(*v != 0),
        Value::Double(v) => Some(*v != 0.0),
        Value::Str(s) => Some(!s.is_empty()),
    }
}

/// Numeric arithmetic with SQL NULL propagation. Integer op integer stays integer
/// (except division, which widens to double to avoid silent truncation); any double
/// operand widens the result to double.
pub fn arith(op: ArithOp, lhs: &Value, rhs: &Value) -> Value {
    match (lhs, rhs) {
        (Value::Null, _) | (_, Value::Null) => Value::Null,
        (Value::Int(a), Value::Int(b)) => match op {
            ArithOp::Add => Value::Int(a + b),
            ArithOp::Sub => Value::Int(a - b),
            ArithOp::Mul => Value::Int(a * b),
            ArithOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Double(*a as f64 / *b as f64)
                }
            }
        },
        _ => {
            let a = lhs.as_double();
            let b = rhs.as_double();
            match (a, b) {
                (Some(a), Some(b)) => match op {
                    ArithOp::Add => Value::Double(a + b),
                    ArithOp::Sub => Value::Double(a - b),
                    ArithOp::Mul => Value::Double(a * b),
                    ArithOp::Div => {
                        if b == 0.0 {
                            Value::Null
                        } else {
                            Value::Double(a / b)
                        }
                    }
                },
                _ => Value::Null,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablocks::DataType;

    fn batch() -> Batch {
        Batch::from_rows(
            &[DataType::Int, DataType::Double, DataType::Str],
            &[
                vec![Value::Int(10), Value::Double(0.5), Value::Str("x".into())],
                vec![Value::Int(20), Value::Double(0.25), Value::Str("".into())],
                vec![Value::Null, Value::Double(1.0), Value::Str("z".into())],
            ],
        )
    }

    #[test]
    fn column_and_const() {
        let b = batch();
        assert_eq!(Expr::col(0).eval(&b, 1), Value::Int(20));
        assert_eq!(Expr::lit(7i64).eval(&b, 0), Value::Int(7));
    }

    #[test]
    fn arithmetic_int_and_double() {
        let b = batch();
        // price * (1 - discount), the Q1/Q6 shape
        let e = Expr::col(0).mul(Expr::lit(1.0).sub(Expr::col(1)));
        assert_eq!(e.eval(&b, 0), Value::Double(5.0));
        assert_eq!(e.eval(&b, 1), Value::Double(15.0));
        // integer arithmetic stays integral
        assert_eq!(
            Expr::col(0).add(Expr::lit(5i64)).eval(&b, 0),
            Value::Int(15)
        );
        assert_eq!(
            Expr::col(0).sub(Expr::lit(5i64)).eval(&b, 1),
            Value::Int(15)
        );
    }

    #[test]
    fn division_by_zero_is_null() {
        let b = batch();
        assert_eq!(Expr::col(0).div(Expr::lit(0i64)).eval(&b, 0), Value::Null);
        assert_eq!(Expr::col(1).div(Expr::lit(0.0)).eval(&b, 0), Value::Null);
        assert_eq!(
            Expr::col(0).div(Expr::lit(4i64)).eval(&b, 0),
            Value::Double(2.5)
        );
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let b = batch();
        assert_eq!(Expr::col(0).add(Expr::lit(1i64)).eval(&b, 2), Value::Null);
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        let b = batch();
        let gt = Expr::col(0).cmp(CmpOp::Gt, Expr::lit(15i64));
        assert_eq!(gt.eval(&b, 0), Value::Int(0));
        assert_eq!(gt.eval(&b, 1), Value::Int(1));
        assert_eq!(gt.eval(&b, 2), Value::Null);
        assert!(!gt.eval_bool(&b, 2), "NULL comparison filters out the row");

        let and = Expr::col(0)
            .cmp(CmpOp::Ge, Expr::lit(10i64))
            .and(Expr::col(1).cmp(CmpOp::Lt, Expr::lit(0.4)));
        assert!(!and.eval_bool(&b, 0));
        assert!(and.eval_bool(&b, 1));

        let or = Expr::col(0)
            .cmp(CmpOp::Eq, Expr::lit(10i64))
            .or(Expr::col(2).cmp(CmpOp::Eq, Expr::lit("z")));
        assert!(or.eval_bool(&b, 0));
        assert!(or.eval_bool(&b, 2));
        assert!(!or.eval_bool(&b, 1));
    }

    #[test]
    fn case_expression() {
        let b = batch();
        let e = Expr::Case(
            Box::new(Expr::col(0).cmp(CmpOp::Ge, Expr::lit(15i64))),
            Box::new(Expr::lit("big")),
            Box::new(Expr::lit("small")),
        );
        assert_eq!(e.eval(&b, 0), Value::Str("small".into()));
        assert_eq!(e.eval(&b, 1), Value::Str("big".into()));
        // NULL condition falls through to the ELSE branch
        assert_eq!(e.eval(&b, 2), Value::Str("small".into()));
    }

    #[test]
    fn string_truthiness_in_boolean_context() {
        let b = batch();
        let e = Expr::col(2).and(Expr::lit(1i64));
        assert!(e.eval_bool(&b, 0));
        assert!(!e.eval_bool(&b, 1), "empty string is falsy");
    }
}
