//! Query-compilation cost model (Figure 5).
//!
//! HyPer compiles every query pipeline to native code through LLVM. With chunk-wise
//! compression, the scan of a relation no longer has a single storage layout: every
//! distinct combination of per-attribute compression schemes needs its own generated
//! code path, and the number of combinations grows exponentially with the attribute
//! count (`p^n` for `p` schemes and `n` attributes). The paper's Figure 5 shows the
//! consequence: JIT compile time grows from ~10 ms to ~10 s as the layout
//! combinations grow from 1 to 4096, while a *pre-compiled interpreted vectorized
//! scan* keeps compile time flat.
//!
//! We do not embed LLVM. Instead this module provides
//!
//! * a **cost model** calibrated against the constants reported in the paper (a few
//!   milliseconds of base compile time per pipeline plus a per-code-path cost), and
//! * a **measured specialisation** routine that really does generate one closure-based
//!   scan path per layout combination, so the *growth behaviour* (linear in the number
//!   of paths, exponential in the attribute count when unrolled) is measured, not
//!   assumed; the absolute numbers are then scaled by the model.
//!
//! DESIGN.md records this substitution (LLVM JIT → specialisation + cost model).

use std::time::{Duration, Instant};

use datablocks::SchemeKind;

/// Which scan implementation a query pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanCodegen {
    /// Tuple-at-a-time JIT scan: one generated code path per storage-layout
    /// combination of the scanned relation.
    JitPerLayout,
    /// Interpreted vectorized scan: pre-compiled once, independent of layouts.
    VectorizedInterpreted,
}

/// Calibrated compile-time cost model.
///
/// Defaults reproduce the magnitudes of Figure 5: a `select *` over 8 attributes
/// compiles in roughly 10 ms with one storage layout and roughly 10 s with 4096
/// layouts, while the vectorized-scan variant stays at a flat ~8 ms (and the paper's
/// Table 4 shows overall query compile times roughly halving with vectorized scans).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitCostModel {
    /// Fixed cost of compiling the non-scan parts of the pipeline, in microseconds.
    pub base_us: f64,
    /// Cost of generating and optimising one scan code path for one attribute, in
    /// microseconds.
    pub per_path_per_attr_us: f64,
    /// Cost of emitting the pre-compiled vectorized-scan glue call, in microseconds.
    pub vectorized_glue_us: f64,
}

impl Default for JitCostModel {
    fn default() -> Self {
        // 8 attributes: base 8 ms + 4096 paths × 8 × 305 us ≈ 10.0 s, matching the
        // top-right point of Figure 5; one path ≈ 10.4 ms matches the bottom-left.
        JitCostModel {
            base_us: 8_000.0,
            per_path_per_attr_us: 305.0,
            vectorized_glue_us: 400.0,
        }
    }
}

impl JitCostModel {
    /// Predicted compile time of a query pipeline scanning `attributes` attributes of
    /// a relation with `layout_combinations` distinct storage layouts.
    pub fn compile_time(
        &self,
        codegen: ScanCodegen,
        layout_combinations: usize,
        attributes: usize,
    ) -> Duration {
        let us = match codegen {
            ScanCodegen::JitPerLayout => {
                self.base_us
                    + self.per_path_per_attr_us * layout_combinations as f64 * attributes as f64
            }
            ScanCodegen::VectorizedInterpreted => self.base_us + self.vectorized_glue_us,
        };
        Duration::from_nanos((us * 1_000.0) as u64)
    }
}

/// Number of *potential* storage-layout combinations for `attributes` attributes when
/// each may be stored in `schemes_per_attribute` different ways — the `p^n` blow-up of
/// Section 4 (saturating at `usize::MAX`).
pub fn potential_layout_combinations(schemes_per_attribute: usize, attributes: usize) -> usize {
    let mut total: usize = 1;
    for _ in 0..attributes {
        total = total.saturating_mul(schemes_per_attribute);
    }
    total
}

/// A generated (interpreted stand-in for compiled) scan code path: given a row index
/// it extracts all attributes under one fixed storage-layout combination.
pub type ScanCodePath = Box<dyn Fn(usize) -> u64 + Send>;

/// Outcome of specialising scan code for a set of layout combinations.
pub struct SpecializedScan {
    /// One entry per layout combination, indexable by layout id (the "computed goto"
    /// table of Section 4).
    pub paths: Vec<ScanCodePath>,
    /// Wall-clock time spent generating the paths.
    pub generation_time: Duration,
}

/// Generate one specialised scan path per layout combination over `attributes`
/// attributes. Each path is a chain of per-attribute extraction closures, mirroring
/// how the unrolled JIT code has one fixed decompression routine per attribute; the
/// work per path is therefore proportional to the attribute count, and total work is
/// proportional to `layouts × attributes` — the same asymptotics as real code
/// generation.
pub fn specialize_scan_paths(layouts: &[Vec<SchemeKind>]) -> SpecializedScan {
    let start = Instant::now();
    let mut paths: Vec<ScanCodePath> = Vec::with_capacity(layouts.len());
    for layout in layouts {
        // Build one extraction closure per attribute for this layout…
        let extractors: Vec<Box<dyn Fn(usize) -> u64 + Send>> = layout
            .iter()
            .map(|&scheme| {
                let weight = scheme_weight(scheme);
                let f: Box<dyn Fn(usize) -> u64 + Send> =
                    Box::new(move |row| (row as u64).wrapping_mul(weight) ^ weight);
                f
            })
            .collect();
        // …and fuse them into the per-layout scan path ("unrolled" inner loop body).
        paths.push(Box::new(move |row| {
            let mut acc = 0u64;
            for extract in &extractors {
                acc = acc.wrapping_add(extract(row));
            }
            acc
        }));
    }
    SpecializedScan {
        paths,
        generation_time: start.elapsed(),
    }
}

fn scheme_weight(scheme: SchemeKind) -> u64 {
    match scheme {
        SchemeKind::SingleValue => 1,
        SchemeKind::Truncated(w) => 10 + w as u64,
        SchemeKind::DictInt(w) => 20 + w as u64,
        SchemeKind::DictStr(w) => 30 + w as u64,
        SchemeKind::Double => 40,
    }
}

/// Enumerate `n` synthetic layout combinations over `attributes` attributes, cycling
/// through the available schemes — the workload for the Figure 5 sweep.
pub fn synthetic_layouts(n: usize, attributes: usize) -> Vec<Vec<SchemeKind>> {
    let schemes = [
        SchemeKind::SingleValue,
        SchemeKind::Truncated(1),
        SchemeKind::Truncated(2),
        SchemeKind::Truncated(4),
        SchemeKind::DictInt(2),
        SchemeKind::DictStr(2),
    ];
    (0..n)
        .map(|i| {
            (0..attributes)
                .map(|a| {
                    // mixed-radix digit so every combination is distinct until the
                    // space is exhausted
                    let digit = (i / schemes.len().pow(a as u32 % 8)) + a;
                    schemes[digit % schemes.len()]
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_matches_figure5_magnitudes() {
        let model = JitCostModel::default();
        let one = model.compile_time(ScanCodegen::JitPerLayout, 1, 8);
        let many = model.compile_time(ScanCodegen::JitPerLayout, 4096, 8);
        assert!(
            one >= Duration::from_millis(9) && one <= Duration::from_millis(15),
            "{one:?}"
        );
        assert!(
            many >= Duration::from_secs(9) && many <= Duration::from_secs(11),
            "{many:?}"
        );
        // vectorized scan compile time is flat and small
        let vec_one = model.compile_time(ScanCodegen::VectorizedInterpreted, 1, 8);
        let vec_many = model.compile_time(ScanCodegen::VectorizedInterpreted, 4096, 8);
        assert_eq!(vec_one, vec_many);
        assert!(vec_one < Duration::from_millis(10));
    }

    #[test]
    fn compile_time_grows_linearly_with_layouts() {
        let model = JitCostModel::default();
        let t64 = model
            .compile_time(ScanCodegen::JitPerLayout, 64, 8)
            .as_secs_f64();
        let t128 = model
            .compile_time(ScanCodegen::JitPerLayout, 128, 8)
            .as_secs_f64();
        let t256 = model
            .compile_time(ScanCodegen::JitPerLayout, 256, 8)
            .as_secs_f64();
        assert!((t128 - t64) > 0.0);
        let slope1 = t128 - t64;
        let slope2 = t256 - t128;
        assert!(
            (slope2 / slope1 - 2.0).abs() < 0.2,
            "linear growth in paths"
        );
    }

    #[test]
    fn potential_combinations_explode() {
        assert_eq!(potential_layout_combinations(6, 2), 36);
        assert_eq!(potential_layout_combinations(6, 1), 6);
        assert_eq!(potential_layout_combinations(1, 8), 1);
        // saturates rather than overflowing
        assert_eq!(potential_layout_combinations(usize::MAX, 3), usize::MAX);
    }

    #[test]
    fn synthetic_layouts_are_distinct_and_sized() {
        let layouts = synthetic_layouts(64, 8);
        assert_eq!(layouts.len(), 64);
        assert!(layouts.iter().all(|l| l.len() == 8));
        let mut dedup = layouts.clone();
        dedup.sort();
        dedup.dedup();
        assert!(
            dedup.len() > 32,
            "most synthetic layouts should be distinct"
        );
    }

    #[test]
    fn specialization_produces_callable_paths() {
        let layouts = synthetic_layouts(16, 4);
        let specialized = specialize_scan_paths(&layouts);
        assert_eq!(specialized.paths.len(), 16);
        // every path is callable and deterministic
        for path in &specialized.paths {
            assert_eq!(path(42), path(42));
        }
        // generating more paths takes (weakly) longer
        let bigger = specialize_scan_paths(&synthetic_layouts(1024, 4));
        assert!(bigger.paths.len() > specialized.paths.len());
    }
}
