//! Morsel-driven parallel execution (the paper's evaluation setting: 64-thread scans
//! of compressed Data Blocks, after Leis et al., "Morsel-Driven Parallelism") — both
//! the parallel *scan* ([`scan_relation_parallel`]) and the generic parallel
//! *pipeline driver* ([`drive_pipeline`]) that runs scan→filter→project→build chains
//! inside the workers and feeds radix-partitioned pipeline-breaker state.
//!
//! # The morsel protocol
//!
//! A relation scan decomposes into an ordered list of [`Morsel`]s:
//!
//! * one morsel per **frozen Data Block** — blocks are immutable, carry their own
//!   SMAs/PSMAs and are the natural unit of SMA skipping, so they are never split;
//! * the **hot tail chunks** are split into fixed-size row ranges of
//!   [`ScanConfig::morsel_rows`] records each.
//!
//! Work distribution is a single `fetch_add` on an [`AtomicUsize`] cursor over that
//! list: each worker claims the next unclaimed morsel index, scans it to completion,
//! and claims again until the list is exhausted. There are no locks anywhere on the
//! scan path — frozen blocks and hot chunks are only ever read (`&`-borrowed), the
//! cursor is the only shared mutable state, and every worker owns its output
//! buffers. Workers keep one [`RelationScanner`] for their whole lifetime, so the
//! match-position vector and its growth are paid once per worker, not once per morsel
//! or per vector (the "allocation-free hot path" the paper's throughput numbers
//! assume).
//!
//! # The bounded streaming pipeline
//!
//! A parallel scan does **not** materialise its result. [`drive_streaming`] runs
//! the workers on plain (non-scoped) threads over an owned
//! [`storage::ScanSnapshot`] and connects them to the consumer through a
//! capacity-bounded **reorder channel** (std-only: a `Mutex<VecDeque>` per morsel
//! plus two `Condvar`s):
//!
//! * **Backpressure.** A worker that finishes a batch while the channel holds
//!   [`ScanConfig::channel_cap`] batches *suspends* on a condition variable instead
//!   of buffering — a stalled consumer stops the workers, it does not grow the
//!   resident set. Peak buffering is `O(channel_cap × batch)` plus the single batch
//!   each worker is currently producing, instead of `O(relation)`.
//! * **Ordering.** The reorder stage releases batches to the consumer in
//!   (morsel index, emission order) — exactly the order a serial scan visits them —
//!   so the stream is **byte-identical to the serial scan** for every thread count,
//!   morsel size and channel capacity.
//! * **Deadlock freedom.** One channel slot is reserved for the *head-of-line*
//!   morsel (the one the consumer must receive next): its owner may push one batch
//!   past the shared budget whenever the consumer is starved, so the consumer can
//!   always be fed no matter how the other workers filled the channel. The
//!   in-flight count still never exceeds `channel_cap`
//!   ([`ScanStream::max_in_flight`] exposes the high-water mark, and the
//!   backpressure tests assert the bound).
//! * **Pin lifetime.** A worker resolves a cold block via
//!   [`storage::ScanSource::cold_block`] when it claims the morsel and drops the
//!   returned [`storage::BlockRef`] (the pin guard) as soon as the morsel's last
//!   batch has been handed to the channel — so at most one pin per worker is live,
//!   even while a worker is suspended on backpressure.
//!
//! [`RelationScanner`] pulls from this stream when `config.threads != 1`;
//! [`scan_relation_parallel`] drains it for callers that do want the materialised
//! result.
//!
//! # Determinism guarantee
//!
//! Batches reach the consumer in (morsel index, emission order) — which is exactly
//! the order a serial scan visits them. A parallel scan therefore produces
//! **byte-identical output to the serial scan** for every thread count and morsel
//! size; only wall-clock time changes. The differential test
//! `tests/parallel_scan.rs` (and `parallel_scan_agrees_with_serial_in_every_mode` in
//! `scan.rs`) pin this property down.
//!
//! # Pipeline breakers
//!
//! Pipeline breakers (hash aggregation, the hash-join build) parallelise with the
//! same cursor protocol: each worker runs the whole non-breaking operator chain of a
//! [`PipelineSpec`] over its morsels and accumulates into a private
//! [`RADIX_PARTITIONS`]-way partitioned [`MorselSink`]. At the pipeline barrier the
//! per-worker partitions are combined **partition-wise** by
//! [`merge_partitionwise`] — partition `p` of every worker merges into one final
//! partition `p`, independently of all other partitions, so the merge itself runs in
//! parallel. The partition of a key is a pure function of its value (leading bits of
//! its hash, see [`crate::ops::radix_partition`]), never of the thread count or the
//! morsel schedule. Distinct partitions hold disjoint key sets, so the
//! [`RADIX_PARTITIONS`] merges are independent and are themselves spread over the
//! workers — this is what keeps the merge phase from re-serialising the pipeline on
//! many-core machines. The probe/emit tail then runs single-threaded on the merged
//! state.
//!
//! Built on the driver:
//!
//! * [`crate::ops::ParallelHashAggregateOp`] — partitioned parallel hash aggregation
//!   (`over_relation` for pipelines, `over_batches` for intermediates). Output is
//!   sorted by group key, like the serial operator. Counts, min/max and integer sums
//!   are byte-identical to serial for every thread count; double sums are a parallel
//!   FP reduction (equal up to reassociation).
//! * [`crate::ops::HashJoinOp::with_parallel_build`] — parallel partitioned join
//!   build. Build rows are tagged with their global stream position and re-sorted
//!   per key at the merge, so join output is **byte-identical** to the serial build
//!   for every thread count.
//!
//! # Adding a parallel operator
//!
//! A new pipeline breaker needs three pieces:
//!
//! 1. **A sink** implementing [`MorselSink`] — own the per-worker state, keep it
//!    partitioned by [`crate::ops::radix_partition`] of whatever key the operator
//!    groups on, and fold each incoming batch in `consume(morsel_idx, &batch)`. If
//!    the operator's result depends on input *order* (like join build rows), tag
//!    entries with `(morsel_idx, position)` so the merge can restore serial order;
//!    if it is order-insensitive (like aggregation), ignore `morsel_idx`.
//! 2. **A merge** — a function folding one partition from every worker (worker
//!    order is deterministic) into the final partition, passed to
//!    [`merge_partitionwise`].
//! 3. **A serial tail** — emit from the merged partitions in a deterministic order
//!    (sort by key, or preserve restored stream order).
//!
//! Then drive it: `let (sinks, stats) = drive_pipeline(relation, &spec, make_sink)?`
//! followed by `merge_partitionwise(sinks, threads, merge)`. Differential tests
//! against the serial operator for threads ∈ {1, 2, 4, 8} — including skewed keys,
//! NULL keys and inputs that leave partitions empty — are the contract
//! (`tests/parallel_agg.rs` is the template).
//!
//! # Invariants to keep
//!
//! * Pipeline workers only ever share `&Relation` and the atomic cursor; streaming
//!   scan workers share one `Arc` holding the owned snapshot, the cursor and the
//!   reorder channel — in both cases all per-worker state lives in the sink or the
//!   worker's scanner (the compile-time `Send + Sync` assertions below enforce the
//!   sharing part). Spilled blocks add one more shared object — the block store —
//!   whose cache index is internally synchronised; a worker holds one pin per
//!   *claimed* cold morsel (released when the morsel's batches are handed off), so
//!   a block never vanishes mid-scan and pins never accumulate across a scan.
//! * The reorder channel's in-flight batch count never exceeds
//!   [`ScanConfig::channel_cap`]; a worker that cannot push suspends (it must not
//!   buffer locally), and the head-of-line morsel's owner must always be admitted
//!   when the consumer is starved — that pair of rules is what makes the bound
//!   safe *and* deadlock-free.
//! * `threads == 1` must take the same code path and produce the same bytes as the
//!   dedicated serial operator — thread count may change wall-clock time and
//!   double-sum ulps only.
//! * Operators resolve `output_types()` once at construction;
//!   [`crate::ops::collect_operator`] debug-asserts every emitted batch against the
//!   declaration.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use datablocks::scan::Restriction;
use datablocks::{DataBlock, DataType};
use storage::{ColdReadError, Relation, ScanSnapshot, ScanSource};

use crate::batch::Batch;
use crate::cancel::{self, CancelToken};
use crate::expr::Expr;
use crate::ops::{filter_batch, project_batch};
use crate::scan::{RelationScanner, ScanConfig, ScanStats};

/// One unit of scan work handed out by the morsel cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Morsel {
    /// One whole frozen Data Block (resolved through [`Relation::cold_block`],
    /// which pins spilled blocks for the duration of the morsel).
    ColdBlock(usize),
    /// A row range `[from, to)` of one hot chunk (index into
    /// [`Relation::hot_chunks`]).
    HotRange {
        /// Hot chunk index.
        chunk: usize,
        /// First row of the range.
        from: usize,
        /// One past the last row of the range.
        to: usize,
    },
}

// The scan path shares `&Relation` (and through it `&DataBlock` / hot chunks) across
// worker threads. All payloads are plain owned data (`Vec`, `String`, `HashMap`), so
// the auto traits hold; this assertion turns any future regression — say, an
// `Rc`/`Cell` sneaking into a block column — into a compile error here instead of an
// obscure one inside `std::thread::scope`.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<Relation>();
    assert_shareable::<ScanSnapshot>();
    assert_shareable::<DataBlock>();
    assert_shareable::<Restriction>();
    assert_shareable::<ScanConfig>();
    assert_shareable::<Expr>();
    assert_shareable::<PipelineSpec>();
};

/// Decompose a scan source into morsels, in serial scan order: every cold block
/// first (whole blocks), then every hot chunk split into `morsel_rows`-sized ranges.
/// `morsel_rows == 0` falls back to [`crate::DEFAULT_MORSEL_ROWS`], matching the
/// [`ScanConfig::morsel_rows`] contract.
pub fn decompose<S: ScanSource>(source: &S, morsel_rows: usize) -> Vec<Morsel> {
    let morsel_rows = if morsel_rows == 0 {
        crate::DEFAULT_MORSEL_ROWS
    } else {
        morsel_rows
    };
    let mut morsels = Vec::with_capacity(source.cold_block_count() + source.hot_chunks().len());
    for block_idx in 0..source.cold_block_count() {
        morsels.push(Morsel::ColdBlock(block_idx));
    }
    for (chunk_idx, chunk) in source.hot_chunks().iter().enumerate() {
        let mut from = 0;
        while from < chunk.len() {
            let to = (from + morsel_rows).min(chunk.len());
            morsels.push(Morsel::HotRange {
                chunk: chunk_idx,
                from,
                to,
            });
            from = to;
        }
    }
    morsels
}

/// Issue the cold-scan read-ahead for the morsel at `current`: queue the next
/// [`ScanConfig::readahead`] cold blocks of the scan order — skipping blocks the
/// SMA gate would prune, exactly as the scan itself will — for the source's
/// prefetch worker ([`storage::ScanSource::prefetch_cold_blocks`]). Pruning is
/// only consulted in the SARG-pushdown mode, mirroring
/// `RelationScanner::prune_cold_block`: the other modes scan every block, so
/// they prefetch every block. A no-op when read-ahead is off or the source has
/// no spill store.
pub(crate) fn prefetch_lookahead<S: ScanSource>(
    source: &S,
    morsels: &[Morsel],
    current: usize,
    restrictions: &[Restriction],
    config: &ScanConfig,
) {
    if config.readahead == 0 {
        return;
    }
    let prune = matches!(
        config.mode,
        crate::scan::ScanMode::Vectorized { sarg: true }
    );
    let mut ahead = Vec::with_capacity(config.readahead);
    for morsel in morsels.iter().skip(current + 1) {
        if ahead.len() == config.readahead {
            break;
        }
        if let Morsel::ColdBlock(block_idx) = morsel {
            if prune && !source.cold_block_may_match(*block_idx, restrictions, &config.options) {
                continue;
            }
            ahead.push(*block_idx);
        }
    }
    if !ahead.is_empty() {
        source.prefetch_cold_blocks(&ahead);
    }
}

/// Resolve a [`ScanConfig::threads`] request to an actual worker count: `0` means
/// "all hardware threads".
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Scan `relation` with `config.threads` workers and return all result batches in
/// deterministic (serial-scan) order, plus the merged scan statistics.
///
/// A convenience wrapper draining [`drive_streaming`] — for callers that want the
/// fully materialised result rather than the bounded stream [`RelationScanner`]
/// pulls from.
pub fn scan_relation_parallel(
    relation: &Relation,
    projection: &[usize],
    restrictions: &[Restriction],
    config: ScanConfig,
) -> (Vec<Batch>, ScanStats) {
    let mut stream = drive_streaming(
        relation.scan_snapshot(),
        projection.to_vec(),
        restrictions.to_vec(),
        config,
    );
    let mut batches = Vec::new();
    while let Some(batch) = stream.next_batch() {
        batches.push(batch);
    }
    (batches, stream.stats())
}

// ----------------------------------------------------------- streaming pipeline

/// Everything the streaming workers and the consumer share. Workers hold it through
/// an `Arc`, so the stream is sound even if the consumer leaks the handle — nothing
/// in here borrows from the caller.
struct StreamShared {
    snapshot: ScanSnapshot,
    morsels: Vec<Morsel>,
    projection: Vec<usize>,
    restrictions: Vec<Restriction>,
    config: ScanConfig,
    /// The morsel cursor: each worker claims the next unclaimed index.
    cursor: AtomicUsize,
    /// Channel capacity in batches (≥ 1). One slot is implicitly reserved for the
    /// head-of-line morsel: ordinary pushes stop at `cap - 1` in-flight batches,
    /// and the head morsel's owner may push the `cap`-th whenever the consumer is
    /// starved — that keeps the reorder stage deadlock-free while `in_flight`
    /// never exceeds `cap`.
    cap: usize,
    /// The consumer's cooperative cancel token, captured from the driving
    /// thread when the stream started (see [`crate::cancel`]). Raising it has
    /// the same effect as dropping the stream: workers stop at their next
    /// push or claim.
    cancel_token: Option<CancelToken>,
    state: Mutex<StreamState>,
    /// Workers wait here for channel space (or for their morsel to become the
    /// starved head-of-line).
    space: Condvar,
    /// The consumer waits here for the next in-order batch.
    ready: Condvar,
}

/// The reorder stage: per-morsel batch queues released in morsel order.
struct StreamState {
    /// Batches buffered per morsel, in emission order.
    queues: Vec<VecDeque<Batch>>,
    /// Has the owning worker finished scanning this morsel?
    finished: Vec<bool>,
    /// The morsel whose batches the consumer receives next.
    next_morsel: usize,
    /// Batches currently buffered across all queues.
    in_flight: usize,
    /// High-water mark of `in_flight` (asserted ≤ `cap` by the backpressure tests).
    max_in_flight: usize,
    /// Consumer gone: workers drop their output and exit.
    cancelled: bool,
    /// A worker panicked: the consumer must not wait for its morsels.
    failed: bool,
    /// A worker hit an unreadable cold block: the typed error it carried out
    /// (first one wins — the stream is cancelled the moment it is set, so later
    /// workers stop instead of stacking errors).
    error: Option<ColdReadError>,
    /// Scan statistics merged in by exiting workers.
    stats: ScanStats,
}

impl StreamShared {
    /// Poison-tolerant lock: worker panics are reported through `failed`, not
    /// through mutex poisoning, so a panicked worker must not wedge the consumer
    /// (or the other workers) on a poisoned lock.
    fn lock_state(&self) -> MutexGuard<'_, StreamState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Hand one batch of `morsel_idx` to the reorder stage, suspending while the
    /// channel is at capacity (backpressure). Returns `false` when the stream was
    /// cancelled and the worker should stop scanning.
    fn push(&self, morsel_idx: usize, batch: Batch) -> bool {
        let mut state = self.lock_state();
        loop {
            if state.cancelled || self.token_cancelled() {
                return false;
            }
            // The consumer is starved on exactly this morsel: it must be fed even
            // if the rest of the channel is full, or reordering could deadlock
            // (the consumer can only release the head-of-line morsel's batches).
            let head_starved =
                morsel_idx == state.next_morsel && state.queues[morsel_idx].is_empty();
            if head_starved || state.in_flight + 1 < self.cap {
                break;
            }
            state = self
                .space
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        state.queues[morsel_idx].push_back(batch);
        state.in_flight += 1;
        state.max_in_flight = state.max_in_flight.max(state.in_flight);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Mark `morsel_idx` fully scanned, letting the consumer advance past it.
    fn finish_morsel(&self, morsel_idx: usize) {
        self.lock_state().finished[morsel_idx] = true;
        self.ready.notify_one();
    }

    /// Has the consumer cancelled the stream? Workers that emit nothing for long
    /// stretches (SMA-pruned or zero-match morsels) check this between morsel
    /// claims, so a dropped stream never keeps scanning — and paging in — the
    /// rest of the relation.
    fn is_cancelled(&self) -> bool {
        self.token_cancelled() || self.lock_state().cancelled
    }

    /// Has the consumer's cooperative [`CancelToken`] been raised?
    fn token_cancelled(&self) -> bool {
        self.cancel_token
            .as_ref()
            .map(CancelToken::is_cancelled)
            .unwrap_or(false)
    }

    /// A worker is exiting (normally): fold its statistics in.
    fn worker_exit(&self, stats: ScanStats) {
        let mut state = self.lock_state();
        state.stats.merge(&stats);
        drop(state);
        self.ready.notify_all();
    }

    /// A worker hit an unreadable cold block: record the typed error (first one
    /// wins) and cancel the stream so every other worker stops at its next push
    /// or claim instead of scanning on towards the same bad disk.
    fn fail(&self, err: ColdReadError) {
        let mut state = self.lock_state();
        if state.error.is_none() {
            state.error = Some(err);
        }
        state.cancelled = true;
        drop(state);
        self.ready.notify_all();
        self.space.notify_all();
    }

    /// The consumer side: the next batch in (morsel, emission) order, `Ok(None)`
    /// when every morsel is finished and drained, or the first [`ColdReadError`]
    /// a worker carried out.
    fn pop(&self) -> Result<Option<Batch>, ColdReadError> {
        let total = self.morsels.len();
        let mut state = self.lock_state();
        loop {
            if let Some(err) = &state.error {
                return Err(err.clone());
            }
            let mut advanced = false;
            while state.next_morsel < total
                && state.finished[state.next_morsel]
                && state.queues[state.next_morsel].is_empty()
            {
                state.next_morsel += 1;
                advanced = true;
            }
            if advanced {
                // The head-of-line morsel changed: its owner may be waiting for
                // the starvation slot.
                self.space.notify_all();
            }
            assert!(!state.failed, "streaming scan worker panicked");
            if state.next_morsel >= total {
                return Ok(None);
            }
            let head = state.next_morsel;
            if let Some(batch) = state.queues[head].pop_front() {
                state.in_flight -= 1;
                drop(state);
                self.space.notify_all();
                return Ok(Some(batch));
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Marks the stream failed if the worker unwinds before disarming (a panic in scan
/// code), so the consumer errors out instead of waiting forever.
struct WorkerGuard {
    shared: Arc<StreamShared>,
    armed: bool,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.shared.lock_state().failed = true;
        self.shared.ready.notify_all();
        self.shared.space.notify_all();
    }
}

/// One streaming worker's life: claim morsels off the shared cursor and stream each
/// one's batches into the reorder channel with a single reused scanner.
fn stream_worker(shared: &StreamShared) -> ScanStats {
    let mut scanner = RelationScanner::for_worker(
        &shared.snapshot,
        &shared.projection,
        &shared.restrictions,
        shared.config,
    );
    loop {
        // `push` observes cancellation too, but a run of morsels that emit no
        // batches (pruned or match-free blocks) would never call it — this check
        // keeps a dropped stream from scanning (and paging in) the whole tail.
        if shared.is_cancelled() {
            break;
        }
        let morsel_idx = shared.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(&morsel) = shared.morsels.get(morsel_idx) else {
            break;
        };
        if matches!(morsel, Morsel::ColdBlock(_)) {
            // Read-ahead: stage the cold blocks after this one for whichever
            // worker claims them (the cache is shared, so prefetching a morsel
            // another worker scans is exactly as useful).
            prefetch_lookahead(
                &shared.snapshot,
                &shared.morsels,
                morsel_idx,
                &shared.restrictions,
                &shared.config,
            );
        }
        let keep_going =
            match scanner.stream_morsel(morsel, &mut |batch| shared.push(morsel_idx, batch)) {
                Ok(keep_going) => keep_going,
                Err(err) => {
                    // An unreadable cold block: hand the typed error to the
                    // stream (which cancels the other workers) and exit cleanly
                    // — the consumer joins us and returns the error.
                    shared.fail(err);
                    false
                }
            };
        shared.finish_morsel(morsel_idx);
        if !keep_going {
            break; // cancelled or failed
        }
    }
    scanner.stats()
}

/// A bounded, in-order stream of scan batches produced by morsel workers (see the
/// module docs for the channel design). Obtained from [`drive_streaming`];
/// [`RelationScanner`] wraps one when `config.threads != 1`.
///
/// Dropping the stream before exhaustion cancels the workers (they observe the
/// flag at their next push and exit); the drop joins them, so no worker outlives
/// the handle.
pub struct ScanStream {
    shared: Arc<StreamShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stats: ScanStats,
    done: bool,
}

impl ScanStream {
    /// The next batch in serial-scan order, or `None` once the scan is exhausted
    /// (at which point the workers have been joined and [`ScanStream::stats`] is
    /// final).
    ///
    /// # Panics
    ///
    /// Panics if a scan worker panicked, or if one carried out a
    /// [`ColdReadError`] (an unreadable cold block) — fault-aware consumers use
    /// [`ScanStream::try_next_batch`].
    pub fn next_batch(&mut self) -> Option<Batch> {
        self.try_next_batch().unwrap_or_else(|err| panic!("{err}"))
    }

    /// Fallible variant of [`ScanStream::next_batch`]: an unreadable cold block
    /// surfaces as the typed [`ColdReadError`] the failing worker carried out.
    /// Before the error is returned the stream is cancelled and **every worker
    /// joined** — no worker outlives the failure, and a subsequent call reports
    /// the stream exhausted.
    pub fn try_next_batch(&mut self) -> Result<Option<Batch>, ColdReadError> {
        if self.done {
            return Ok(None);
        }
        match self.shared.pop() {
            Ok(Some(batch)) => Ok(Some(batch)),
            Ok(None) => {
                self.finish();
                Ok(None)
            }
            Err(err) => {
                // `fail` already cancelled the stream; join the workers so the
                // error comes back to a caller with no threads left running.
                self.finish();
                Err(err)
            }
        }
    }

    /// Merged scan statistics — complete once [`ScanStream::next_batch`] returned
    /// `None`; a snapshot of the workers' progress before that.
    pub fn stats(&self) -> ScanStats {
        if self.done {
            self.stats
        } else {
            self.shared.lock_state().stats
        }
    }

    /// High-water mark of batches buffered in the reorder channel — never exceeds
    /// the configured [`ScanConfig::channel_cap`] (the backpressure tests assert
    /// this).
    pub fn max_in_flight(&self) -> usize {
        self.shared.lock_state().max_in_flight
    }

    /// Join all workers and capture the final statistics.
    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        let mut panicked = false;
        for handle in self.workers.drain(..) {
            panicked |= handle.join().is_err();
        }
        self.stats = self.shared.lock_state().stats;
        assert!(!panicked, "streaming scan worker panicked");
    }
}

impl Drop for ScanStream {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        self.shared.lock_state().cancelled = true;
        self.shared.space.notify_all();
        self.shared.ready.notify_all();
        for handle in self.workers.drain(..) {
            // Worker panics were either already surfaced by `pop` (failed flag) or
            // the caller is unwinding — don't double-panic in drop.
            let _ = handle.join();
        }
        self.done = true;
    }
}

/// Start a bounded streaming parallel scan over an owned snapshot: `config.threads`
/// workers claim morsels off a shared cursor and stream their batches through a
/// `config.channel_cap`-bounded reorder channel; the returned [`ScanStream`] yields
/// them in serial-scan order. Peak buffering is the channel capacity — a stalled
/// consumer suspends the workers instead of growing the resident set.
pub fn drive_streaming(
    snapshot: ScanSnapshot,
    projection: Vec<usize>,
    restrictions: Vec<Restriction>,
    config: ScanConfig,
) -> ScanStream {
    let morsels = decompose(&snapshot, config.morsel_rows);
    let workers = effective_threads(config.threads).min(morsels.len());
    let cap = if config.channel_cap == 0 {
        workers * 2 + 2
    } else {
        config.channel_cap.max(1)
    };
    let total = morsels.len();
    let shared = Arc::new(StreamShared {
        snapshot,
        morsels,
        projection,
        restrictions,
        config,
        cursor: AtomicUsize::new(0),
        cap,
        cancel_token: cancel::current(),
        state: Mutex::new(StreamState {
            queues: (0..total).map(|_| VecDeque::new()).collect(),
            finished: vec![false; total],
            next_morsel: 0,
            in_flight: 0,
            max_in_flight: 0,
            cancelled: false,
            failed: false,
            error: None,
            stats: ScanStats::default(),
        }),
        space: Condvar::new(),
        ready: Condvar::new(),
    });
    let handles = (0..workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut guard = WorkerGuard {
                    shared,
                    armed: true,
                };
                let stats = stream_worker(&guard.shared);
                guard.armed = false;
                guard.shared.worker_exit(stats);
            })
        })
        .collect();
    ScanStream {
        shared,
        workers: handles,
        stats: ScanStats::default(),
        done: false,
    }
}

// --------------------------------------------------------------- pipeline driver

/// Number of radix partitions every pipeline-breaker sink maintains. A fixed power
/// of two: small enough that per-worker partition arrays stay cheap, large enough
/// that the partition-wise merge phase exposes real parallelism on many-core boxes.
pub const RADIX_PARTITIONS: usize = 64;

/// Leading key-hash bits that select a radix partition (`2^RADIX_BITS ==`
/// [`RADIX_PARTITIONS`]).
pub const RADIX_BITS: u32 = RADIX_PARTITIONS.trailing_zeros();

const _: () = assert!(1usize << RADIX_BITS == RADIX_PARTITIONS);

/// One non-breaking operator applied to every batch *inside* the morsel workers,
/// before the batch reaches the worker's pipeline-breaker sink.
#[derive(Debug, Clone)]
pub enum PipelineStep {
    /// Keep only rows satisfying a residual (non-SARGable) predicate.
    Filter(Expr),
    /// Row-wise projection to a new column set.
    Project {
        /// Projected expressions.
        exprs: Vec<Expr>,
        /// Declared output type of each expression.
        types: Vec<DataType>,
    },
}

impl PipelineStep {
    fn apply(&self, batch: Batch) -> Batch {
        match self {
            PipelineStep::Filter(predicate) => filter_batch(&batch, predicate),
            PipelineStep::Project { exprs, types } => project_batch(&batch, exprs, types),
        }
    }

    fn output_types(&self, input: Vec<DataType>) -> Vec<DataType> {
        match self {
            PipelineStep::Filter(_) => input,
            PipelineStep::Project { types, .. } => types.clone(),
        }
    }
}

/// Description of the per-morsel operator chain of one parallel pipeline: the scan
/// parameters (projection, SARGable restrictions, [`ScanConfig`]) plus the ordered
/// non-breaking [`PipelineStep`]s every worker applies locally. The pipeline breaker
/// at the top is *not* part of the spec — it is the [`MorselSink`] handed to
/// [`drive_pipeline`].
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    /// Attributes the scan materialises.
    pub projection: Vec<usize>,
    /// SARGable restrictions pushed into the scan.
    pub restrictions: Vec<Restriction>,
    /// Scan flavour, worker count and morsel size.
    pub config: ScanConfig,
    /// Non-breaking steps applied to every scanned batch, in order.
    pub steps: Vec<PipelineStep>,
}

impl PipelineSpec {
    /// A pipeline that is just a scan (no residual filter, no projection step).
    pub fn scan(
        projection: Vec<usize>,
        restrictions: Vec<Restriction>,
        config: ScanConfig,
    ) -> PipelineSpec {
        PipelineSpec {
            projection,
            restrictions,
            config,
            steps: Vec::new(),
        }
    }

    /// Append a residual filter step.
    pub fn then_filter(mut self, predicate: Expr) -> PipelineSpec {
        self.steps.push(PipelineStep::Filter(predicate));
        self
    }

    /// Append a projection step (`types` declares the output column types).
    pub fn then_project(mut self, exprs: Vec<Expr>, types: Vec<DataType>) -> PipelineSpec {
        assert_eq!(exprs.len(), types.len());
        self.steps.push(PipelineStep::Project { exprs, types });
        self
    }

    /// The column types of the batches the workers feed their sinks.
    pub fn output_types<S: ScanSource>(&self, source: &S) -> Vec<DataType> {
        let mut types: Vec<DataType> = self
            .projection
            .iter()
            .map(|&col| source.column_type(col))
            .collect();
        for step in &self.steps {
            types = step.output_types(types);
        }
        types
    }

    fn apply_steps(&self, mut batch: Batch) -> Batch {
        for step in &self.steps {
            if batch.is_empty() {
                break;
            }
            batch = step.apply(batch);
        }
        batch
    }
}

/// Per-worker pipeline-breaker state fed by the morsel workers (a partitioned hash
/// aggregate, a partitioned join build, ...). One sink is created per worker, lives
/// on that worker's thread for the whole pipeline, and is handed back to the caller
/// at the barrier for the partition-wise merge.
pub trait MorselSink: Send {
    /// Consume one batch produced by morsel `morsel_idx`. Batches of one morsel
    /// arrive in order on a single worker; `morsel_idx` values are unique per
    /// pipeline run, so `(morsel_idx, arrival order)` reconstructs the serial scan
    /// order when a sink needs it.
    fn consume(&mut self, morsel_idx: usize, batch: &Batch);
}

/// Run a morsel-parallel pipeline over `relation`: every worker claims morsels off a
/// shared cursor, runs the scan and the non-breaking steps of `spec` locally, and
/// feeds its private sink (built by `make_sink`). Returns the per-worker sinks in
/// worker order plus the merged scan statistics — merging the sinks partition-wise
/// (see [`merge_partitionwise`]) is the caller's barrier phase.
///
/// An unreadable cold block surfaces as a [`ColdReadError`]: the failing worker
/// raises a shared abort flag, every other worker stops at its next morsel
/// claim, all of them are joined, and the first error is returned — no worker
/// outlives the failure.
pub fn drive_pipeline<S, F>(
    relation: &Relation,
    spec: &PipelineSpec,
    make_sink: F,
) -> Result<(Vec<S>, ScanStats), ColdReadError>
where
    S: MorselSink,
    F: Fn() -> S + Sync,
{
    let morsels = decompose(relation, spec.config.morsel_rows);
    let workers = effective_threads(spec.config.threads)
        .min(morsels.len())
        .max(1);
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let cancel_token = cancel::current();
    let run = |sink: &mut S| -> Result<ScanStats, ColdReadError> {
        let mut scanner = RelationScanner::for_worker(
            relation,
            &spec.projection,
            &spec.restrictions,
            spec.config,
        );
        loop {
            if abort.load(Ordering::Relaxed) {
                break; // another worker hit an unreadable block
            }
            if let Some(token) = &cancel_token {
                if token.is_cancelled() {
                    break; // the consumer cancelled the query
                }
            }
            let morsel_idx = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&morsel) = morsels.get(morsel_idx) else {
                break;
            };
            if matches!(morsel, Morsel::ColdBlock(_)) {
                prefetch_lookahead(
                    relation,
                    &morsels,
                    morsel_idx,
                    &spec.restrictions,
                    &spec.config,
                );
            }
            // Batches flow scan → steps → sink inside the worker, one at a time —
            // a cold morsel is never materialised, and its pin is released when
            // the last batch left the scanner.
            let result = scanner.stream_morsel(morsel, &mut |batch| {
                let batch = spec.apply_steps(batch);
                if !batch.is_empty() {
                    sink.consume(morsel_idx, &batch);
                }
                true
            });
            if let Err(err) = result {
                abort.store(true, Ordering::Relaxed);
                return Err(err);
            }
        }
        Ok(scanner.stats())
    };

    let results: Vec<(S, Result<ScanStats, ColdReadError>)> = if workers == 1 {
        let mut sink = make_sink();
        let stats = run(&mut sink);
        vec![(sink, stats)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut sink = make_sink();
                        let stats = run(&mut sink);
                        (sink, stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("pipeline worker panicked"))
                .collect()
        })
    };

    let mut stats = ScanStats::default();
    let mut sinks = Vec::with_capacity(results.len());
    let mut first_err = None;
    for (sink, worker_result) in results {
        match worker_result {
            Ok(worker_stats) => stats.merge(&worker_stats),
            Err(err) if first_err.is_none() => first_err = Some(err),
            Err(_) => {}
        }
        sinks.push(sink);
    }
    // Every worker is joined at this point. A raised cancel token surfaces
    // like an unreadable block does on this path: as a panic the session
    // boundary turns back into a typed error (`query::Error::Cancelled`).
    if cancel_token
        .map(|token| token.is_cancelled())
        .unwrap_or(false)
    {
        panic!("{}", cancel::CANCEL_MESSAGE);
    }
    match first_err {
        Some(err) => Err(err),
        None => Ok((sinks, stats)),
    }
}

/// Run a parallel build over already-materialised batches: each batch is one morsel
/// (its index is the `morsel_idx` passed to the sink). This is how pipeline breakers
/// parallelise over *intermediate* results — e.g. a join whose build side is itself
/// the output of another operator.
pub fn drive_batches<S, F>(batches: &[Batch], threads: usize, make_sink: F) -> Vec<S>
where
    S: MorselSink,
    F: Fn() -> S + Sync,
{
    let workers = effective_threads(threads).min(batches.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let run = |sink: &mut S| loop {
        let idx = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(batch) = batches.get(idx) else {
            break;
        };
        if !batch.is_empty() {
            sink.consume(idx, batch);
        }
    };
    if workers == 1 {
        let mut sink = make_sink();
        run(&mut sink);
        vec![sink]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut sink = make_sink();
                        run(&mut sink);
                        sink
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("build worker panicked"))
                .collect()
        })
    }
}

/// The barrier phase of a parallel pipeline breaker: combine the partitioned state
/// of every worker **partition-wise**. `per_worker[w]` is worker `w`'s partition
/// vector (all workers must agree on the partition count); `merge` receives, for one
/// partition index, that partition from every worker *in worker order* and folds
/// them into the final partition. Distinct partitions hold disjoint key sets, so
/// they merge independently — the work is spread over `threads` workers with a
/// static stride (partition `i` is merged by worker `i % workers`), and the result
/// vector is in partition order whatever the parallelism.
pub fn merge_partitionwise<P, T, F>(per_worker: Vec<Vec<P>>, threads: usize, merge: F) -> Vec<T>
where
    P: Send,
    T: Send,
    F: Fn(usize, Vec<P>) -> T + Sync,
{
    let parts = per_worker.first().map(|w| w.len()).unwrap_or(0);
    assert!(
        per_worker.iter().all(|w| w.len() == parts),
        "every worker must produce the same partition count"
    );
    // Transpose to partition-major, preserving worker order within each partition.
    let mut by_partition: Vec<Vec<P>> = (0..parts)
        .map(|_| Vec::with_capacity(per_worker.len()))
        .collect();
    for worker_parts in per_worker {
        for (idx, part) in worker_parts.into_iter().enumerate() {
            by_partition[idx].push(part);
        }
    }
    let workers = effective_threads(threads).min(parts).max(1);
    if workers == 1 {
        return by_partition
            .into_iter()
            .enumerate()
            .map(|(idx, parts)| merge(idx, parts))
            .collect();
    }
    let mut buckets: Vec<Vec<(usize, Vec<P>)>> = (0..workers).map(|_| Vec::new()).collect();
    for (idx, part) in by_partition.into_iter().enumerate() {
        buckets[idx % workers].push((idx, part));
    }
    let merged: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let merge = &merge;
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(idx, parts)| (idx, merge(idx, parts)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("merge worker panicked"))
            .collect()
    });
    let mut out: Vec<Option<T>> = (0..parts).map(|_| None).collect();
    for chunk in merged {
        for (idx, value) in chunk {
            out[idx] = Some(value);
        }
    }
    out.into_iter()
        .map(|value| value.expect("every partition merged exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablocks::{DataType, Value};
    use storage::{ColumnDef, Schema};

    fn relation(rows: i64, chunk_capacity: usize, freeze_full: bool) -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("val", DataType::Int),
        ]);
        let mut rel = Relation::with_chunk_capacity("m", schema, chunk_capacity);
        for i in 0..rows {
            rel.insert(vec![Value::Int(i), Value::Int(i % 7)]);
        }
        if freeze_full {
            rel.freeze_full_chunks();
        }
        rel
    }

    #[test]
    fn decompose_covers_every_row_exactly_once() {
        let rel = relation(2_500, 1000, true); // 2 cold blocks, 1 hot chunk of 500
        let morsels = decompose(&rel, 128);
        let cold = morsels
            .iter()
            .filter(|m| matches!(m, Morsel::ColdBlock(_)))
            .count();
        assert_eq!(cold, 2);
        let hot_rows: usize = morsels
            .iter()
            .filter_map(|m| match m {
                Morsel::HotRange { from, to, .. } => Some(to - from),
                _ => None,
            })
            .sum();
        assert_eq!(hot_rows, 500);
        // Hot ranges are contiguous, ordered and non-overlapping.
        let mut expected_from = 0;
        for m in &morsels {
            if let Morsel::HotRange { from, to, .. } = m {
                assert_eq!(*from, expected_from);
                assert!(to > from);
                expected_from = *to;
            }
        }
    }

    #[test]
    fn decompose_zero_morsel_rows_falls_back_to_default() {
        let rel = relation(10, 100, false);
        let morsels = decompose(&rel, 0); // 0 = DEFAULT_MORSEL_ROWS, not 1-row morsels
        assert_eq!(morsels.len(), 1);
        assert_eq!(
            morsels[0],
            Morsel::HotRange {
                chunk: 0,
                from: 0,
                to: 10
            }
        );
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn parallel_matches_serial_on_mixed_storage() {
        let rel = relation(3_210, 1000, true);
        let restrictions = vec![Restriction::between(1, 2i64, 4i64)];
        let serial = RelationScanner::new(
            &rel,
            vec![0, 1],
            restrictions.clone(),
            ScanConfig::default(),
        )
        .collect_all();
        for threads in [2usize, 5] {
            let config = ScanConfig::default()
                .with_threads(threads)
                .with_morsel_rows(100);
            let (batches, stats) = scan_relation_parallel(&rel, &[0, 1], &restrictions, config);
            let mut merged = Batch::new(&[DataType::Int, DataType::Int]);
            for batch in &batches {
                merged.append(batch);
            }
            assert_eq!(merged.len(), serial.len());
            for row in 0..serial.len() {
                assert_eq!(
                    merged.row(row),
                    serial.row(row),
                    "threads {threads} row {row}"
                );
            }
            assert_eq!(stats.rows_matched, serial.len());
        }
    }

    #[test]
    fn drive_streaming_cap_one_fully_serialises_the_reorder_stage() {
        // The tightest legal channel: only the head-of-line morsel's starvation
        // slot ever admits a batch, so the stream degenerates to a rendezvous —
        // order and content must still match the serial scan exactly.
        let rel = relation(3_210, 1000, true);
        let serial =
            RelationScanner::new(&rel, vec![0, 1], vec![], ScanConfig::default()).collect_all();
        for threads in [1usize, 4] {
            let config = ScanConfig::default()
                .with_threads(threads)
                .with_morsel_rows(100)
                .with_channel_cap(1);
            let mut stream = drive_streaming(rel.scan_snapshot(), vec![0, 1], vec![], config);
            let mut merged = Batch::new(&[DataType::Int, DataType::Int]);
            while let Some(batch) = stream.next_batch() {
                merged.append(&batch);
            }
            assert_eq!(merged.len(), serial.len(), "threads {threads}");
            for row in 0..serial.len() {
                assert_eq!(merged.row(row), serial.row(row), "threads {threads}");
            }
            assert_eq!(stream.max_in_flight(), 1, "threads {threads}");
            assert_eq!(stream.stats().rows_matched, serial.len());
        }
    }

    #[test]
    fn drive_streaming_stats_match_before_and_after_completion() {
        let rel = relation(2_000, 500, true);
        let config = ScanConfig::default().with_threads(2);
        let mut stream = drive_streaming(rel.scan_snapshot(), vec![0], vec![], config);
        // Partial stats are a snapshot (just don't panic); final stats are exact.
        let _ = stream.stats();
        let mut rows = 0usize;
        while let Some(batch) = stream.next_batch() {
            rows += batch.len();
        }
        assert_eq!(rows, 2_000);
        assert_eq!(stream.stats().rows_matched, 2_000);
        assert_eq!(stream.stats().blocks_total, 4);
        // Exhausted stream keeps answering None.
        assert!(stream.next_batch().is_none());
    }

    #[test]
    fn empty_relation_yields_no_batches() {
        let rel = relation(0, 100, false);
        let (batches, stats) =
            scan_relation_parallel(&rel, &[0], &[], ScanConfig::default().with_threads(4));
        assert!(batches.is_empty());
        assert_eq!(stats.rows_matched, 0);
    }

    /// A sink that counts rows and records which morsels fed it.
    struct CountSink {
        rows: usize,
        morsels: Vec<usize>,
    }

    impl MorselSink for CountSink {
        fn consume(&mut self, morsel_idx: usize, batch: &Batch) {
            self.rows += batch.len();
            self.morsels.push(morsel_idx);
        }
    }

    #[test]
    fn drive_pipeline_covers_every_row_exactly_once() {
        let rel = relation(3_210, 1000, true); // 3 cold blocks + 1 hot tail
        for threads in [1usize, 2, 5] {
            let spec = PipelineSpec::scan(
                vec![0, 1],
                vec![],
                ScanConfig::default()
                    .with_threads(threads)
                    .with_morsel_rows(100),
            );
            let (sinks, stats) = drive_pipeline(&rel, &spec, || CountSink {
                rows: 0,
                morsels: Vec::new(),
            })
            .expect("pipeline scan");
            let total: usize = sinks.iter().map(|s| s.rows).sum();
            assert_eq!(total, 3_210, "threads {threads}");
            assert_eq!(stats.rows_matched, 3_210);
            // every morsel index was claimed by exactly one worker
            let mut all: Vec<usize> = sinks.iter().flat_map(|s| s.morsels.clone()).collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), decompose(&rel, 100).len());
        }
    }

    #[test]
    fn pipeline_steps_filter_and_project_inside_workers() {
        let rel = relation(2_000, 1000, true);
        let spec = PipelineSpec::scan(vec![0, 1], vec![], ScanConfig::default().with_threads(3))
            .then_filter(Expr::col(1).cmp(datablocks::CmpOp::Eq, Expr::lit(3i64)))
            .then_project(vec![Expr::col(0).mul(Expr::lit(2i64))], vec![DataType::Int]);
        assert_eq!(spec.output_types(&rel), vec![DataType::Int]);
        let (sinks, _) = drive_pipeline(&rel, &spec, || CountSink {
            rows: 0,
            morsels: Vec::new(),
        })
        .expect("pipeline scan");
        let total: usize = sinks.iter().map(|s| s.rows).sum();
        // val = i % 7 == 3 → ceil: rows 3, 10, 17, ... in 0..2000
        assert_eq!(total, (0..2_000).filter(|i| i % 7 == 3).count());
    }

    #[test]
    fn drive_batches_hands_each_batch_to_one_worker() {
        let types = [DataType::Int];
        let batches: Vec<Batch> = (0..10)
            .map(|i| {
                Batch::from_rows(
                    &types,
                    &(0..=i).map(|v| vec![Value::Int(v)]).collect::<Vec<_>>(),
                )
            })
            .collect();
        let expected_rows: usize = batches.iter().map(|b| b.len()).sum();
        for threads in [1usize, 4] {
            let sinks = drive_batches(&batches, threads, || CountSink {
                rows: 0,
                morsels: Vec::new(),
            });
            let total: usize = sinks.iter().map(|s| s.rows).sum();
            assert_eq!(total, expected_rows);
            let mut all: Vec<usize> = sinks.iter().flat_map(|s| s.morsels.clone()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn merge_partitionwise_preserves_partition_and_worker_order() {
        // 3 workers × 5 partitions of strings; merge concatenates in worker order.
        let per_worker: Vec<Vec<String>> = (0..3)
            .map(|w| (0..5).map(|p| format!("w{w}p{p} ")).collect())
            .collect();
        for threads in [1usize, 2, 8] {
            let merged = merge_partitionwise(per_worker.clone(), threads, |idx, parts| {
                (idx, parts.concat())
            });
            assert_eq!(merged.len(), 5);
            for (p, (idx, text)) in merged.iter().enumerate() {
                assert_eq!(*idx, p);
                assert_eq!(text, &format!("w0p{p} w1p{p} w2p{p} "), "threads {threads}");
            }
        }
    }

    #[test]
    fn merge_partitionwise_of_nothing_is_empty() {
        let merged: Vec<usize> =
            merge_partitionwise(Vec::<Vec<usize>>::new(), 4, |_, parts| parts.len());
        assert!(merged.is_empty());
    }
}
