//! Morsel-driven parallel scans (the paper's evaluation setting: 64-thread scans of
//! compressed Data Blocks, after Leis et al., "Morsel-Driven Parallelism").
//!
//! # The morsel protocol
//!
//! A relation scan decomposes into an ordered list of [`Morsel`]s:
//!
//! * one morsel per **frozen Data Block** — blocks are immutable, carry their own
//!   SMAs/PSMAs and are the natural unit of SMA skipping, so they are never split;
//! * the **hot tail chunks** are split into fixed-size row ranges of
//!   [`ScanConfig::morsel_rows`] records each.
//!
//! Work distribution is a single `fetch_add` on an [`AtomicUsize`] cursor over that
//! list: each worker claims the next unclaimed morsel index, scans it to completion,
//! and claims again until the list is exhausted. There are no locks anywhere on the
//! scan path — frozen blocks and hot chunks are only ever read (`&`-borrowed), the
//! cursor is the only shared mutable state, and every worker owns its output
//! buffers. Workers keep one [`RelationScanner`] for their whole lifetime, so the
//! match-position vector and its growth are paid once per worker, not once per morsel
//! or per vector (the "allocation-free hot path" the paper's throughput numbers
//! assume).
//!
//! # Determinism guarantee
//!
//! Each emitted batch is tagged with the index of the morsel that produced it.
//! After all workers join, batches are concatenated in (morsel index, emission
//! order) — which is exactly the order a serial scan visits them. A parallel scan
//! therefore produces **byte-identical output to the serial scan** for every thread
//! count and morsel size; only wall-clock time changes. The differential test
//! `tests/parallel_scan.rs` (and `parallel_scan_agrees_with_serial_in_every_mode` in
//! `scan.rs`) pin this property down.

use std::sync::atomic::{AtomicUsize, Ordering};

use datablocks::scan::Restriction;
use datablocks::DataBlock;
use storage::Relation;

use crate::batch::Batch;
use crate::scan::{RelationScanner, ScanConfig, ScanStats};

/// One unit of scan work handed out by the morsel cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Morsel {
    /// One whole frozen Data Block (index into [`Relation::cold_blocks`]).
    ColdBlock(usize),
    /// A row range `[from, to)` of one hot chunk (index into
    /// [`Relation::hot_chunks`]).
    HotRange {
        /// Hot chunk index.
        chunk: usize,
        /// First row of the range.
        from: usize,
        /// One past the last row of the range.
        to: usize,
    },
}

// The scan path shares `&Relation` (and through it `&DataBlock` / hot chunks) across
// worker threads. All payloads are plain owned data (`Vec`, `String`, `HashMap`), so
// the auto traits hold; this assertion turns any future regression — say, an
// `Rc`/`Cell` sneaking into a block column — into a compile error here instead of an
// obscure one inside `std::thread::scope`.
const _: () = {
    const fn assert_shareable<T: Send + Sync>() {}
    assert_shareable::<Relation>();
    assert_shareable::<DataBlock>();
    assert_shareable::<Restriction>();
    assert_shareable::<ScanConfig>();
};

/// Decompose a relation into scan morsels, in serial scan order: every cold block
/// first (whole blocks), then every hot chunk split into `morsel_rows`-sized ranges.
/// `morsel_rows == 0` falls back to [`crate::DEFAULT_MORSEL_ROWS`], matching the
/// [`ScanConfig::morsel_rows`] contract.
pub fn decompose(relation: &Relation, morsel_rows: usize) -> Vec<Morsel> {
    let morsel_rows = if morsel_rows == 0 {
        crate::DEFAULT_MORSEL_ROWS
    } else {
        morsel_rows
    };
    let mut morsels =
        Vec::with_capacity(relation.cold_blocks().len() + relation.hot_chunks().len());
    for block_idx in 0..relation.cold_blocks().len() {
        morsels.push(Morsel::ColdBlock(block_idx));
    }
    for (chunk_idx, chunk) in relation.hot_chunks().iter().enumerate() {
        let mut from = 0;
        while from < chunk.len() {
            let to = (from + morsel_rows).min(chunk.len());
            morsels.push(Morsel::HotRange {
                chunk: chunk_idx,
                from,
                to,
            });
            from = to;
        }
    }
    morsels
}

/// Resolve a [`ScanConfig::threads`] request to an actual worker count: `0` means
/// "all hardware threads".
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Scan `relation` with `config.threads` workers and return all result batches in
/// deterministic (serial-scan) order, plus the merged scan statistics.
///
/// This is the entry point [`RelationScanner`] delegates to when
/// `config.threads != 1`; it can also be called directly when a caller wants the
/// fully materialised result rather than a stream.
pub fn scan_relation_parallel(
    relation: &Relation,
    projection: &[usize],
    restrictions: &[Restriction],
    config: ScanConfig,
) -> (Vec<Batch>, ScanStats) {
    let morsels = decompose(relation, config.morsel_rows);
    let workers = effective_threads(config.threads).min(morsels.len()).max(1);
    let cursor = AtomicUsize::new(0);

    let worker_results: Vec<(Vec<(usize, Batch)>, ScanStats)> = if workers == 1 {
        vec![run_worker(
            relation,
            projection,
            restrictions,
            config,
            &morsels,
            &cursor,
        )]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        run_worker(
                            relation,
                            projection,
                            restrictions,
                            config,
                            &morsels,
                            &cursor,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("scan worker panicked"))
                .collect()
        })
    };

    // Deterministic merge: batches keyed by morsel index; each morsel was scanned by
    // exactly one worker, which emitted its batches in order.
    let mut per_morsel: Vec<Vec<Batch>> = (0..morsels.len()).map(|_| Vec::new()).collect();
    let mut stats = ScanStats::default();
    for (tagged_batches, worker_stats) in worker_results {
        stats.merge(&worker_stats);
        for (morsel_idx, batch) in tagged_batches {
            per_morsel[morsel_idx].push(batch);
        }
    }
    let batches = per_morsel.into_iter().flatten().collect();
    (batches, stats)
}

/// One worker's life: claim morsels off the shared cursor until none are left,
/// scanning each to completion with a single reused [`RelationScanner`].
fn run_worker(
    relation: &Relation,
    projection: &[usize],
    restrictions: &[Restriction],
    config: ScanConfig,
    morsels: &[Morsel],
    cursor: &AtomicUsize,
) -> (Vec<(usize, Batch)>, ScanStats) {
    let mut scanner = RelationScanner::for_worker(relation, projection, restrictions, config);
    let mut out = Vec::new();
    loop {
        let morsel_idx = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(&morsel) = morsels.get(morsel_idx) else {
            break;
        };
        scanner.reset_to_morsel(morsel);
        while let Some(batch) = scanner.next_batch() {
            out.push((morsel_idx, batch));
        }
    }
    (out, scanner.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablocks::{DataType, Value};
    use storage::{ColumnDef, Schema};

    fn relation(rows: i64, chunk_capacity: usize, freeze_full: bool) -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("val", DataType::Int),
        ]);
        let mut rel = Relation::with_chunk_capacity("m", schema, chunk_capacity);
        for i in 0..rows {
            rel.insert(vec![Value::Int(i), Value::Int(i % 7)]);
        }
        if freeze_full {
            rel.freeze_full_chunks();
        }
        rel
    }

    #[test]
    fn decompose_covers_every_row_exactly_once() {
        let rel = relation(2_500, 1000, true); // 2 cold blocks, 1 hot chunk of 500
        let morsels = decompose(&rel, 128);
        let cold = morsels
            .iter()
            .filter(|m| matches!(m, Morsel::ColdBlock(_)))
            .count();
        assert_eq!(cold, 2);
        let hot_rows: usize = morsels
            .iter()
            .filter_map(|m| match m {
                Morsel::HotRange { from, to, .. } => Some(to - from),
                _ => None,
            })
            .sum();
        assert_eq!(hot_rows, 500);
        // Hot ranges are contiguous, ordered and non-overlapping.
        let mut expected_from = 0;
        for m in &morsels {
            if let Morsel::HotRange { from, to, .. } = m {
                assert_eq!(*from, expected_from);
                assert!(to > from);
                expected_from = *to;
            }
        }
    }

    #[test]
    fn decompose_zero_morsel_rows_falls_back_to_default() {
        let rel = relation(10, 100, false);
        let morsels = decompose(&rel, 0); // 0 = DEFAULT_MORSEL_ROWS, not 1-row morsels
        assert_eq!(morsels.len(), 1);
        assert_eq!(
            morsels[0],
            Morsel::HotRange {
                chunk: 0,
                from: 0,
                to: 10
            }
        );
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn parallel_matches_serial_on_mixed_storage() {
        let rel = relation(3_210, 1000, true);
        let restrictions = vec![Restriction::between(1, 2i64, 4i64)];
        let serial = RelationScanner::new(
            &rel,
            vec![0, 1],
            restrictions.clone(),
            ScanConfig::default(),
        )
        .collect_all();
        for threads in [2usize, 5] {
            let config = ScanConfig::default()
                .with_threads(threads)
                .with_morsel_rows(100);
            let (batches, stats) = scan_relation_parallel(&rel, &[0, 1], &restrictions, config);
            let mut merged = Batch::new(&[DataType::Int, DataType::Int]);
            for batch in &batches {
                merged.append(batch);
            }
            assert_eq!(merged.len(), serial.len());
            for row in 0..serial.len() {
                assert_eq!(
                    merged.row(row),
                    serial.row(row),
                    "threads {threads} row {row}"
                );
            }
            assert_eq!(stats.rows_matched, serial.len());
        }
    }

    #[test]
    fn empty_relation_yields_no_batches() {
        let rel = relation(0, 100, false);
        let (batches, stats) =
            scan_relation_parallel(&rel, &[0], &[], ScanConfig::default().with_threads(4));
        assert!(batches.is_empty());
        assert_eq!(stats.rows_matched, 0);
    }
}
