//! The table-scan subsystem: one interface over hot uncompressed chunks and cold
//! compressed Data Blocks (Figure 6), with three execution flavours.
//!
//! * [`ScanMode::Jit`] models the original JIT-compiled tuple-at-a-time scan: records
//!   are read one at a time and the scan restrictions are evaluated per tuple inside
//!   the consuming loop (no match vectors, no SIMD). In the real HyPer this loop is
//!   generated LLVM code; here it is the equivalent interpreted loop, and the code
//!   *generation* cost is modelled separately by [`crate::jit`].
//! * [`ScanMode::Vectorized { sarg: false }`] is the interpreted vectorized scan
//!   without predicate push-down: the scan copies vectors of records into temporary
//!   storage and the restrictions are evaluated tuple at a time afterwards.
//! * [`ScanMode::Vectorized { sarg: true }`] pushes SARGable restrictions into the
//!   scan, where they are evaluated on whole vectors — on compressed Data Blocks this
//!   runs the SIMD kernels directly on the code words and benefits from SMA skipping
//!   and PSMA range narrowing.
//!
//! Whatever the mode, the scanner yields [`Batch`]es of the requested attributes for
//! records that satisfy all restrictions, so the pipeline above is oblivious to the
//! storage layout and to the scan flavour.
//!
//! Internally the scanner walks a list of [`Morsel`]s — one frozen block, or a row
//! range of a hot chunk. A serial scan ([`ScanConfig::threads`] `== 1`) walks all of
//! them on the calling thread; any other thread count starts the **bounded
//! streaming morsel pipeline** of [`crate::morsel::drive_streaming`] and pulls its
//! (deterministically ordered) batches off the reorder channel one at a time — peak
//! buffering is the configured [`ScanConfig::channel_cap`], never the whole
//! relation.
//!
//! The scanner is generic over [`ScanSource`]: a borrowed [`Relation`] for the
//! serial path and the scoped pipeline workers, or an owned
//! [`storage::ScanSnapshot`] inside the streaming workers.
//!
//! Cold blocks may live on secondary storage (`storage::blockstore`). The scanner
//! first consults the relation's in-memory block directory
//! ([`ScanSource::cold_block_may_match`]): an SMA-pruned cold block is counted as
//! skipped **without any disk I/O**, preserving the paper's scan-skipping for
//! evicted blocks. A block that cannot be pruned is resolved through
//! [`ScanSource::cold_block`], and the returned (possibly pinned) reference is held
//! exactly for the duration of the morsel — released as soon as the morsel's
//! batches have been handed off, so at most one pin per scan worker is ever live.
//! Scan results are byte-identical whatever tier a block occupies; only I/O
//! counters change.

use std::collections::VecDeque;

use datablocks::scan::Restriction;
use datablocks::unpack::unpack_column;
use datablocks::{Column, DataType, ScanOptions};
use storage::{ColdReadError, HotChunk, Relation, ScanSource};

use crate::batch::Batch;
use crate::morsel::{self, Morsel, ScanStream};

/// How the scan executes (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Tuple-at-a-time evaluation in the consuming loop (models the JIT-compiled
    /// scan of the original engine).
    Jit,
    /// Interpreted vectorized scan; `sarg` controls whether SARGable restrictions are
    /// pushed into the scan (vector-wise, SIMD on compressed data) or evaluated tuple
    /// at a time after the copy.
    Vectorized {
        /// Push SARGable restrictions into the scan.
        sarg: bool,
    },
}

/// Complete scan configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanConfig {
    /// Execution flavour.
    pub mode: ScanMode,
    /// Block-level options (ISA level, vector size, SMA/PSMA usage).
    pub options: ScanOptions,
    /// Worker threads for the morsel-driven parallel scan: `1` scans serially on the
    /// calling thread, `0` uses every hardware thread, any other value spawns exactly
    /// that many workers.
    pub threads: usize,
    /// Rows of a hot chunk per morsel (frozen blocks are always one morsel each;
    /// their size is fixed at freeze time). `0` falls back to the default.
    pub morsel_rows: usize,
    /// Capacity, in batches, of the streaming scan's reorder channel (the bound on
    /// batches buffered between the morsel workers and the consumer). One slot is
    /// reserved for the head-of-line morsel so the reorder stage can never
    /// deadlock; `0` picks a default of `2 × workers + 2`. Ignored by serial
    /// scans, which buffer at most one cold morsel's output.
    pub channel_cap: usize,
    /// Cold-scan read-ahead: when a scan enters a cold morsel, the next
    /// `readahead` cold blocks it will visit (skipping SMA-pruned ones) are
    /// queued for the spill store's prefetch thread, so a sequential cold scan
    /// finds them cached by the time it pins them. `0` (the default) disables
    /// read-ahead. Purely a hint: results are byte-identical either way, and the
    /// store's counters split the I/O into demand `block_reads` vs
    /// `prefetch_reads`. No effect on relations without a spill store.
    pub readahead: usize,
}

/// Default number of hot-chunk rows handed out per morsel (matches the Data Block
/// capacity, so hot and cold morsels describe similar amounts of work).
pub const DEFAULT_MORSEL_ROWS: usize = datablocks::DEFAULT_BLOCK_CAPACITY;

impl Default for ScanConfig {
    fn default() -> Self {
        ScanConfig {
            mode: ScanMode::Vectorized { sarg: true },
            options: ScanOptions::default(),
            threads: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            channel_cap: 0,
            readahead: 0,
        }
    }
}

impl ScanConfig {
    /// The paper's Table 2 / Table 4 configurations by name, for the bench harness:
    /// `"jit"`, `"vectorized"`, `"vectorized+sarg"`, `"datablocks"`,
    /// `"datablocks+sarg"`, `"datablocks+psma"`.
    pub fn named(name: &str) -> ScanConfig {
        let mut config = ScanConfig::default();
        match name {
            "jit" => config.mode = ScanMode::Jit,
            "vectorized" | "datablocks" => config.mode = ScanMode::Vectorized { sarg: false },
            "vectorized+sarg" | "datablocks+sarg" => {
                config.mode = ScanMode::Vectorized { sarg: true };
                config.options.use_psma = false;
            }
            "datablocks+psma" => {
                config.mode = ScanMode::Vectorized { sarg: true };
                config.options.use_psma = true;
            }
            other => panic!("unknown scan configuration {other:?}"),
        }
        config
    }

    /// The same configuration scanning with `threads` workers (see
    /// [`ScanConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> ScanConfig {
        self.threads = threads;
        self
    }

    /// The same configuration with a specific hot-chunk morsel size.
    pub fn with_morsel_rows(mut self, morsel_rows: usize) -> ScanConfig {
        self.morsel_rows = morsel_rows;
        self
    }

    /// The same configuration with a specific streaming-channel capacity (see
    /// [`ScanConfig::channel_cap`]).
    pub fn with_channel_cap(mut self, channel_cap: usize) -> ScanConfig {
        self.channel_cap = channel_cap;
        self
    }

    /// The same configuration with an `n`-block cold-scan read-ahead (see
    /// [`ScanConfig::readahead`]).
    pub fn with_readahead(mut self, readahead: usize) -> ScanConfig {
        self.readahead = readahead;
        self
    }
}

/// Counters describing what a scan actually did (block skipping, range narrowing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Cold blocks examined.
    pub blocks_total: usize,
    /// Cold blocks skipped entirely (SMA or dictionary probe).
    pub blocks_skipped: usize,
    /// Records within the narrowed scan ranges (what was actually scanned).
    pub rows_scanned: usize,
    /// Records that satisfied all restrictions.
    pub rows_matched: usize,
}

impl ScanStats {
    /// Fold another worker's counters into this one (used when merging the stats of
    /// parallel scan workers; every counter is a plain sum).
    pub fn merge(&mut self, other: &ScanStats) {
        self.blocks_total += other.blocks_total;
        self.blocks_skipped += other.blocks_skipped;
        self.rows_scanned += other.rows_scanned;
        self.rows_matched += other.rows_matched;
    }
}

/// Sentinel for "the scanner has not entered its current morsel yet".
const CURSOR_UNSET: usize = usize::MAX;

/// Resolve a projection to its output column types once, at scanner construction.
fn projection_types<S: ScanSource>(source: &S, projection: &[usize]) -> Vec<DataType> {
    projection
        .iter()
        .map(|&col| source.column_type(col))
        .collect()
}

/// A streaming scan over one relation (or an owned snapshot of one — see
/// [`ScanSource`]).
pub struct RelationScanner<'a, S: ScanSource = Relation> {
    source: &'a S,
    projection: Vec<usize>,
    /// Output column types of the projection — invariant for the scanner's lifetime,
    /// computed once so the per-window paths never walk the schema or allocate.
    output_types: Vec<DataType>,
    restrictions: Vec<Restriction>,
    config: ScanConfig,
    stats: ScanStats,
    /// The units of work this scanner walks, in emission order.
    morsels: Vec<Morsel>,
    morsel_idx: usize,
    row_cursor: usize,
    /// Batches of the current cold morsel on the serial path, produced while the
    /// block was pinned and streamed out afterwards (see
    /// [`Self::enter_cold_morsel`]). The streaming workers bypass this buffer and
    /// emit into the bounded channel while the pin is held.
    cold_pending: VecDeque<Batch>,
    /// Has the current cold morsel been processed into `cold_pending` yet?
    cold_entered: bool,
    match_buf: Vec<u32>,
    /// The bounded streaming pipeline, started on the first `next_batch` call when
    /// `config.threads != 1`. Owns its workers; joined when the stream ends (or on
    /// drop, cancelling the workers).
    stream: Option<ScanStream>,
}

impl<'a, S: ScanSource> RelationScanner<'a, S> {
    /// Start a scan of `source` producing the attributes in `projection` for every
    /// record satisfying all `restrictions`.
    pub fn new(
        source: &'a S,
        projection: Vec<usize>,
        restrictions: Vec<Restriction>,
        mut config: ScanConfig,
    ) -> Self {
        // Resolve `threads: 0` (= all hardware threads) up front: when that comes to
        // 1 — a single-core machine — the scan takes the serial path instead of
        // paying the streaming pipeline's thread and channel overhead for no
        // parallelism.
        config.threads = morsel::effective_threads(config.threads);
        // The streaming path never reads this list — the pipeline decomposes for
        // itself — so only the serial scan pays for it.
        let morsels = if config.threads == 1 {
            morsel::decompose(source, config.morsel_rows)
        } else {
            Vec::new()
        };
        Self::from_parts(source, projection, restrictions, config, morsels)
    }

    /// A scanner for a morsel worker: identical configuration but an initially empty
    /// work list (the worker feeds claimed morsels in via [`Self::stream_morsel`])
    /// and serial execution, whatever `config.threads` says. The worker's scratch
    /// buffers (match vector and its growth) live in this scanner and are reused
    /// across every morsel the worker processes.
    pub(crate) fn for_worker(
        source: &'a S,
        projection: &[usize],
        restrictions: &[Restriction],
        config: ScanConfig,
    ) -> Self {
        Self::from_parts(
            source,
            projection.to_vec(),
            restrictions.to_vec(),
            ScanConfig {
                threads: 1,
                ..config
            },
            Vec::new(),
        )
    }

    /// Shared field initialiser for [`Self::new`] and [`Self::for_worker`].
    fn from_parts(
        source: &'a S,
        projection: Vec<usize>,
        restrictions: Vec<Restriction>,
        config: ScanConfig,
        morsels: Vec<Morsel>,
    ) -> Self {
        RelationScanner {
            source,
            output_types: projection_types(source, &projection),
            projection,
            restrictions,
            config,
            stats: ScanStats::default(),
            morsels,
            morsel_idx: 0,
            row_cursor: CURSOR_UNSET,
            cold_pending: VecDeque::new(),
            cold_entered: false,
            match_buf: Vec::new(),
            stream: None,
        }
    }

    /// Scan statistics accumulated so far (complete once the scan returned `None`).
    /// While a streaming parallel scan is still in flight this is the workers'
    /// live snapshot, not zeros.
    pub fn stats(&self) -> ScanStats {
        match &self.stream {
            Some(stream) => stream.stats(),
            None => self.stats,
        }
    }

    /// The output column types of the batches this scanner produces.
    pub fn output_types(&self) -> Vec<DataType> {
        self.output_types.clone()
    }

    /// Produce the next non-empty batch, or `None` when the relation is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if a cold block cannot be paged in (I/O error or corrupt frame) —
    /// fault-aware callers use [`RelationScanner::try_next_batch`], which carries
    /// the typed [`ColdReadError`] out instead.
    pub fn next_batch(&mut self) -> Option<Batch> {
        self.try_next_batch().unwrap_or_else(|err| panic!("{err}"))
    }

    /// Fallible variant of [`RelationScanner::next_batch`]: a spilled block that
    /// cannot be paged in surfaces as a [`ColdReadError`] naming the block's
    /// on-disk position. On the parallel path the error cancels the stream and
    /// joins every worker before it is returned, so no worker outlives the
    /// failure.
    ///
    /// # Panics
    ///
    /// Panics with [`crate::cancel::CANCEL_MESSAGE`] when the calling thread's
    /// [`crate::cancel::CancelToken`] is raised — after cancelling and joining
    /// the streaming workers, so a cancelled scan leaves no thread behind. The
    /// session boundary turns the panic back into a typed error.
    pub fn try_next_batch(&mut self) -> Result<Option<Batch>, ColdReadError> {
        if crate::cancel::current_is_cancelled() {
            self.stream = None; // drop = cancel + join the streaming workers
            panic!("{}", crate::cancel::CANCEL_MESSAGE);
        }
        if self.config.threads != 1 {
            return self.next_streamed_batch();
        }
        loop {
            let Some(&morsel) = self.morsels.get(self.morsel_idx) else {
                return Ok(None);
            };
            let batch = match morsel {
                Morsel::ColdBlock(block_idx) => {
                    if !self.cold_entered {
                        self.cold_entered = true;
                        self.enter_cold_morsel(block_idx)?;
                    }
                    self.cold_pending.pop_front()
                }
                Morsel::HotRange { chunk, from, to } => {
                    let source = self.source;
                    let chunk = &source.hot_chunks()[chunk];
                    self.next_from_hot(chunk, from, to)
                }
            };
            match batch {
                Some(batch) if !batch.is_empty() => {
                    self.stats.rows_matched += batch.len();
                    return Ok(Some(batch));
                }
                Some(_) => continue, // empty vector, keep scanning
                None => {
                    // morsel exhausted, move on
                    self.morsel_idx += 1;
                    self.row_cursor = CURSOR_UNSET;
                    self.cold_entered = false;
                }
            }
        }
    }

    /// Start the bounded streaming pipeline on first use, then pull one batch per
    /// call off its reorder channel. Workers are joined (and the final statistics
    /// captured) when the stream reports exhaustion — or when a worker carries a
    /// [`ColdReadError`] out, in which case the joined error is returned.
    fn next_streamed_batch(&mut self) -> Result<Option<Batch>, ColdReadError> {
        if self.stream.is_none() {
            self.stream = Some(morsel::drive_streaming(
                self.source.snapshot(),
                self.projection.clone(),
                self.restrictions.clone(),
                self.config,
            ));
        }
        let stream = self.stream.as_mut().expect("started above");
        match stream.try_next_batch()? {
            Some(batch) => Ok(Some(batch)),
            None => {
                self.stats = stream.stats();
                Ok(None)
            }
        }
    }

    /// Scan one morsel to completion, handing every non-empty batch to `emit` as it
    /// is produced — no per-morsel materialisation. For a cold morsel the block
    /// reference (the pin, when the block is spilled) is held across the `emit`
    /// calls and released as soon as the last batch has been handed off, so a
    /// backpressured worker holds at most one pin while it waits. Returns
    /// `Ok(false)` if `emit` asked to stop (a cancelled stream), and a
    /// [`ColdReadError`] when a cold block cannot be paged in — the worker
    /// carries it to the stream instead of panicking.
    ///
    /// This is the workers' entry point — [`crate::morsel::drive_streaming`] and
    /// [`crate::morsel::drive_pipeline`] both feed their sinks through it.
    pub(crate) fn stream_morsel(
        &mut self,
        morsel: Morsel,
        emit: &mut dyn FnMut(Batch) -> bool,
    ) -> Result<bool, ColdReadError> {
        match morsel {
            Morsel::ColdBlock(block_idx) => {
                self.stats.blocks_total += 1;
                if self.prune_cold_block(block_idx) {
                    self.stats.blocks_skipped += 1;
                    return Ok(true);
                }
                let block = self.source.cold_block(block_idx)?;
                let mut matched = 0usize;
                let keep_going = {
                    let mut counted = |batch: Batch| {
                        matched += batch.len();
                        emit(batch)
                    };
                    self.scan_cold_block(&block, &mut counted)
                };
                self.stats.rows_matched += matched;
                Ok(keep_going)
                // `block` dropped here: the pin is released the moment the morsel's
                // batches have been handed off.
            }
            Morsel::HotRange { chunk, from, to } => {
                let source = self.source;
                let chunk = &source.hot_chunks()[chunk];
                self.row_cursor = CURSOR_UNSET;
                loop {
                    match self.next_from_hot(chunk, from, to) {
                        None => {
                            self.row_cursor = CURSOR_UNSET;
                            return Ok(true);
                        }
                        Some(batch) if batch.is_empty() => continue,
                        Some(batch) => {
                            self.stats.rows_matched += batch.len();
                            if !emit(batch) {
                                return Ok(false);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Drain the whole scan into a single batch (convenience for tests and small
    /// pipeline breakers).
    pub fn collect_all(&mut self) -> Batch {
        let mut out = Batch::new(&self.output_types);
        while let Some(batch) = self.next_batch() {
            out.append(&batch);
        }
        out
    }

    // ------------------------------------------------------------- cold segments

    /// Should cold block `block_idx` be skipped from the in-memory directory
    /// summary, before any I/O? Only the SARG-pushdown mode prunes: the other modes
    /// scan every block (and count every row as scanned), and pruning would skew
    /// their statistics relative to an all-in-memory run.
    fn prune_cold_block(&self, block_idx: usize) -> bool {
        matches!(self.config.mode, ScanMode::Vectorized { sarg: true })
            && !self.source.cold_block_may_match(
                block_idx,
                &self.restrictions,
                &self.config.options,
            )
    }

    /// Process one whole cold-block morsel into [`Self::cold_pending`] (the serial
    /// path's per-morsel buffer).
    ///
    /// The block reference (a pin, when the block is spilled) is acquired after
    /// summary pruning and held exactly for the duration of this call — the morsel's
    /// batches are fully materialised before the pin is released, so eviction can
    /// never interleave with the scan of a block. The buffered batches are bounded
    /// by one block's matching output (the block size is fixed at freeze time); the
    /// streaming workers avoid even that by emitting into the bounded channel while
    /// the pin is held ([`Self::stream_morsel`]).
    fn enter_cold_morsel(&mut self, block_idx: usize) -> Result<(), ColdReadError> {
        self.stats.blocks_total += 1;
        // SMA pruning against the in-memory block directory, before any I/O.
        if self.prune_cold_block(block_idx) {
            self.stats.blocks_skipped += 1;
            return Ok(());
        }
        // Read-ahead: stage the next cold blocks of the scan order before the
        // demand pin below blocks on this one's disk read.
        morsel::prefetch_lookahead(
            self.source,
            &self.morsels,
            self.morsel_idx,
            &self.restrictions,
            &self.config,
        );
        let block = self.source.cold_block(block_idx)?;
        let mut pending = std::mem::take(&mut self.cold_pending);
        self.scan_cold_block(&block, &mut |batch| {
            pending.push_back(batch);
            true
        });
        self.cold_pending = pending;
        Ok(())
        // `block` dropped here: the pin is released once the morsel is materialised.
    }

    /// Scan one (non-pruned) cold block in the configured mode, handing each
    /// non-empty result batch to `emit`. Returns `false` if `emit` asked to stop.
    fn scan_cold_block(
        &mut self,
        block: &datablocks::DataBlock,
        emit: &mut dyn FnMut(Batch) -> bool,
    ) -> bool {
        match self.config.mode {
            ScanMode::Jit => self.collect_cold_tuple_at_a_time(block, emit),
            ScanMode::Vectorized { sarg } => self.collect_cold_vectorized(block, sarg, emit),
        }
    }

    fn collect_cold_vectorized(
        &mut self,
        block: &datablocks::DataBlock,
        sarg: bool,
        emit: &mut dyn FnMut(Batch) -> bool,
    ) -> bool {
        let pushed: &[Restriction] = if sarg { &self.restrictions } else { &[] };
        let mut scan = datablocks::BlockScan::new(block, pushed, self.config.options);
        if scan.plan().is_ruled_out() {
            self.stats.blocks_skipped += 1;
            return true;
        }
        self.stats.rows_scanned += scan.plan().scan_range().len() as usize;
        // The scanner-owned match buffer is moved out for the duration of the morsel
        // so the block scan can fill it while `self` stays borrowable.
        let mut matches = std::mem::take(&mut self.match_buf);
        while let Some(found) = scan.next_matches(&mut matches) {
            if found == 0 {
                continue;
            }
            let batch = if sarg {
                // Matches already satisfy every restriction: unpack the projection.
                let mut columns: Vec<Column> =
                    self.output_types.iter().map(|&t| Column::new(t)).collect();
                for (slot, &col) in self.projection.iter().enumerate() {
                    unpack_column(block, col, &matches, &mut columns[slot]);
                }
                Batch::from_columns(columns)
            } else {
                // No push-down: unpack projection and restriction columns, then
                // evaluate the restrictions tuple at a time on the copied vectors.
                self.filter_positions_tuple_at_a_time(block, &matches)
            };
            if !batch.is_empty() && !emit(batch) {
                self.match_buf = matches;
                return false;
            }
        }
        self.match_buf = matches;
        true
    }

    fn filter_positions_tuple_at_a_time(
        &self,
        block: &datablocks::DataBlock,
        positions: &[u32],
    ) -> Batch {
        let mut columns: Vec<Column> = self.output_types.iter().map(|&t| Column::new(t)).collect();
        for &pos in positions {
            let row = pos as usize;
            let qualifies = self
                .restrictions
                .iter()
                .all(|r| r.matches_value(&block.get(row, r.column())));
            if qualifies {
                for (slot, &col) in self.projection.iter().enumerate() {
                    columns[slot].push(block.get(row, col));
                }
            }
        }
        Batch::from_columns(columns)
    }

    fn collect_cold_tuple_at_a_time(
        &mut self,
        block: &datablocks::DataBlock,
        emit: &mut dyn FnMut(Batch) -> bool,
    ) -> bool {
        let total = block.tuple_count() as usize;
        self.stats.rows_scanned += total;
        let vector_size = self.config.options.vector_size;
        let mut cursor = 0;
        while cursor < total {
            let end = (cursor + vector_size).min(total);
            let mut columns: Vec<Column> =
                self.output_types.iter().map(|&t| Column::new(t)).collect();
            for row in cursor..end {
                if block.is_deleted(row) {
                    continue;
                }
                let qualifies = self
                    .restrictions
                    .iter()
                    .all(|r| r.matches_value(&block.get(row, r.column())));
                if qualifies {
                    for (slot, &col) in self.projection.iter().enumerate() {
                        columns[slot].push(block.get(row, col));
                    }
                }
            }
            let batch = Batch::from_columns(columns);
            if !batch.is_empty() && !emit(batch) {
                return false;
            }
            cursor = end;
        }
        true
    }

    // -------------------------------------------------------------- hot segments

    fn next_from_hot(&mut self, chunk: &'a HotChunk, from: usize, to: usize) -> Option<Batch> {
        let to = to.min(chunk.len());
        if self.row_cursor == CURSOR_UNSET {
            self.row_cursor = from;
            self.stats.rows_scanned += to.saturating_sub(from);
        }
        if self.row_cursor >= to {
            return None;
        }
        let vector_size = self.config.options.vector_size;
        let from = self.row_cursor;
        let to = (from + vector_size).min(to);
        self.row_cursor = to;

        match self.config.mode {
            ScanMode::Jit => {
                let mut columns: Vec<Column> =
                    self.output_types.iter().map(|&t| Column::new(t)).collect();
                for row in from..to {
                    if chunk.is_deleted(row) {
                        continue;
                    }
                    let qualifies = self
                        .restrictions
                        .iter()
                        .all(|r| r.matches_value(&chunk.get(row, r.column())));
                    if qualifies {
                        for (slot, &col) in self.projection.iter().enumerate() {
                            columns[slot].push(chunk.get(row, col));
                        }
                    }
                }
                Some(Batch::from_columns(columns))
            }
            ScanMode::Vectorized { sarg } => {
                self.match_buf.clear();
                let pushed: &[Restriction] = if sarg { &self.restrictions } else { &[] };
                chunk.find_matches(pushed, from, to, &mut self.match_buf);
                let mut columns: Vec<Column> =
                    self.output_types.iter().map(|&t| Column::new(t)).collect();
                if sarg {
                    for (slot, &col) in self.projection.iter().enumerate() {
                        chunk.gather(col, &self.match_buf, &mut columns[slot]);
                    }
                } else {
                    for &pos in &self.match_buf {
                        let row = pos as usize;
                        let qualifies = self
                            .restrictions
                            .iter()
                            .all(|r| r.matches_value(&chunk.get(row, r.column())));
                        if qualifies {
                            for (slot, &col) in self.projection.iter().enumerate() {
                                columns[slot].push(chunk.get(row, col));
                            }
                        }
                    }
                }
                Some(Batch::from_columns(columns))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablocks::{CmpOp, Value};
    use storage::{ColumnDef, Schema};

    fn test_relation(rows: i64, frozen: bool) -> Relation {
        let schema = Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("qty", DataType::Int),
            ColumnDef::new("grp", DataType::Str),
        ])
        .with_primary_key("id");
        let mut rel = Relation::with_chunk_capacity("t", schema, 1000);
        for i in 0..rows {
            rel.insert(vec![
                Value::Int(i),
                Value::Int(i % 100),
                Value::Str(format!("g{}", i % 5)),
            ]);
        }
        if frozen {
            rel.freeze_all();
        }
        rel
    }

    fn all_configs() -> Vec<ScanConfig> {
        vec![
            ScanConfig {
                mode: ScanMode::Jit,
                ..ScanConfig::default()
            },
            ScanConfig {
                mode: ScanMode::Vectorized { sarg: false },
                ..ScanConfig::default()
            },
            ScanConfig {
                mode: ScanMode::Vectorized { sarg: true },
                ..ScanConfig::default()
            },
        ]
    }

    #[test]
    fn all_modes_agree_on_frozen_relation() {
        let rel = test_relation(5_000, true);
        let restrictions = vec![
            Restriction::between(1, 10i64, 29i64),
            Restriction::eq(2, "g2"),
        ];
        let mut counts = Vec::new();
        for config in all_configs() {
            let mut scanner = RelationScanner::new(&rel, vec![0, 1], restrictions.clone(), config);
            let batch = scanner.collect_all();
            // every produced row satisfies the restrictions
            for row in 0..batch.len() {
                let qty = batch.value(row, 1).as_int().unwrap();
                assert!((10..=29).contains(&qty));
            }
            counts.push(batch.len());
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "counts {counts:?}");
        assert!(counts[0] > 0);
    }

    #[test]
    fn all_modes_agree_on_mixed_hot_cold_relation() {
        let mut rel = test_relation(2_500, false);
        rel.freeze_full_chunks(); // 2 cold blocks + 1 hot tail chunk
        assert_eq!(rel.cold_block_count(), 2);
        assert_eq!(rel.hot_chunks().len(), 1);
        let restrictions = vec![Restriction::cmp(1, CmpOp::Lt, 10i64)];
        let mut counts = Vec::new();
        for config in all_configs() {
            let mut scanner = RelationScanner::new(&rel, vec![0], restrictions.clone(), config);
            counts.push(scanner.collect_all().len());
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "counts {counts:?}");
        assert_eq!(counts[0], 250);
    }

    #[test]
    fn scan_without_restrictions_returns_all_live_rows() {
        let mut rel = test_relation(1_200, true);
        let id = rel.lookup_pk(5).unwrap();
        rel.delete(id);
        for config in all_configs() {
            let mut scanner = RelationScanner::new(&rel, vec![0], vec![], config);
            assert_eq!(scanner.collect_all().len(), 1_199);
        }
    }

    #[test]
    fn stats_report_block_skipping() {
        let rel = test_relation(10_000, true); // 10 blocks of 1000, id is block-clustered
        let restrictions = vec![Restriction::between(0, 2_000i64, 2_999i64)];
        let mut scanner = RelationScanner::new(
            &rel,
            vec![0],
            restrictions,
            ScanConfig {
                mode: ScanMode::Vectorized { sarg: true },
                ..ScanConfig::default()
            },
        );
        let batch = scanner.collect_all();
        assert_eq!(batch.len(), 1_000);
        let stats = scanner.stats();
        assert_eq!(stats.blocks_total, 10);
        assert_eq!(
            stats.blocks_skipped, 9,
            "SMAs skip every non-matching block"
        );
        assert_eq!(stats.rows_matched, 1_000);
        assert!(stats.rows_scanned <= 2_000);
    }

    #[test]
    fn named_configs() {
        assert_eq!(ScanConfig::named("jit").mode, ScanMode::Jit);
        assert_eq!(
            ScanConfig::named("vectorized").mode,
            ScanMode::Vectorized { sarg: false }
        );
        let sarg = ScanConfig::named("datablocks+sarg");
        assert_eq!(sarg.mode, ScanMode::Vectorized { sarg: true });
        assert!(!sarg.options.use_psma);
        assert!(ScanConfig::named("datablocks+psma").options.use_psma);
    }

    #[test]
    #[should_panic(expected = "unknown scan configuration")]
    fn unknown_named_config_panics() {
        ScanConfig::named("warp-drive");
    }

    #[test]
    fn output_types_follow_projection() {
        let rel = test_relation(10, true);
        let scanner = RelationScanner::new(&rel, vec![2, 0], vec![], ScanConfig::default());
        assert_eq!(scanner.output_types(), vec![DataType::Str, DataType::Int]);
    }

    #[test]
    fn parallel_scan_agrees_with_serial_in_every_mode() {
        let mut rel = test_relation(3_500, false);
        rel.freeze_full_chunks(); // 3 cold blocks + 1 hot tail chunk
        let restrictions = vec![Restriction::between(1, 5i64, 60i64)];
        for base in all_configs() {
            let serial =
                RelationScanner::new(&rel, vec![0, 2], restrictions.clone(), base).collect_all();
            for threads in [0usize, 2, 3, 8] {
                for morsel_rows in [256usize, 1000, DEFAULT_MORSEL_ROWS] {
                    let config = base.with_threads(threads).with_morsel_rows(morsel_rows);
                    let mut scanner =
                        RelationScanner::new(&rel, vec![0, 2], restrictions.clone(), config);
                    let parallel = scanner.collect_all();
                    assert_eq!(parallel.len(), serial.len());
                    for row in 0..serial.len() {
                        assert_eq!(
                            parallel.row(row),
                            serial.row(row),
                            "threads {threads} morsel_rows {morsel_rows} row {row}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_stats_match_serial_stats() {
        let rel = test_relation(10_000, true);
        let restrictions = vec![Restriction::between(0, 2_000i64, 2_999i64)];
        let mut serial =
            RelationScanner::new(&rel, vec![0], restrictions.clone(), ScanConfig::default());
        serial.collect_all();
        let mut parallel = RelationScanner::new(
            &rel,
            vec![0],
            restrictions,
            ScanConfig::default().with_threads(4),
        );
        parallel.collect_all();
        assert_eq!(serial.stats(), parallel.stats());
    }
}
