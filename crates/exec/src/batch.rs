//! Tuple batches — the unit of data flowing between the vectorized scan subsystem and
//! the relational operators above it.
//!
//! A batch holds up to one vector's worth of records (8192 by default) in columnar
//! form. The scan materialises requested attributes of matching records into a batch;
//! operators then either process the batch column-wise (vectorized) or iterate its
//! rows tuple at a time (the JIT-compiled pipeline of the paper pushes single tuples —
//! our pipeline reads rows out of the batch, which preserves the same dataflow while
//! staying interpretable).

use datablocks::{Column, DataType, Value};

/// A columnar batch of tuples.
#[derive(Debug, Clone)]
pub struct Batch {
    columns: Vec<Column>,
}

impl Batch {
    /// An empty batch with the given column types.
    pub fn new(types: &[DataType]) -> Batch {
        Batch {
            columns: types.iter().map(|&t| Column::new(t)).collect(),
        }
    }

    /// Wrap existing columns (all must have equal length).
    pub fn from_columns(columns: Vec<Column>) -> Batch {
        if let Some(first) = columns.first() {
            assert!(
                columns.iter().all(|c| c.len() == first.len()),
                "all batch columns must have the same length"
            );
        }
        Batch { columns }
    }

    /// Build a batch from rows (mostly used in tests and by pipeline breakers).
    pub fn from_rows(types: &[DataType], rows: &[Vec<Value>]) -> Batch {
        let mut batch = Batch::new(types);
        for row in rows {
            batch.push_row(row.clone());
        }
        batch
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// True if the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Borrow a column.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Borrow all columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Mutably borrow all columns (used by the scan when unpacking directly into the
    /// batch).
    pub fn columns_mut(&mut self) -> &mut [Column] {
        &mut self.columns
    }

    /// Read a single value.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Read a whole tuple.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Append a tuple.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity must match the batch"
        );
        for (column, value) in self.columns.iter_mut().zip(row) {
            column.push(value);
        }
    }

    /// Append every tuple of `other` (schemas must match positionally).
    pub fn append(&mut self, other: &Batch) {
        assert_eq!(self.column_count(), other.column_count());
        for row in 0..other.len() {
            self.push_row(other.row(row));
        }
    }

    /// Keep only the rows at the given indexes (in the given order).
    pub fn take(&self, rows: &[usize]) -> Batch {
        let mut out = Batch::new(&self.types());
        for &row in rows {
            out.push_row(self.row(row));
        }
        out
    }

    /// The column types of the batch.
    pub fn types(&self) -> Vec<DataType> {
        self.columns.iter().map(|c| c.data_type()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> Batch {
        Batch::from_rows(
            &[DataType::Int, DataType::Str],
            &[
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(2), Value::Str("b".into())],
                vec![Value::Int(3), Value::Str("c".into())],
            ],
        )
    }

    #[test]
    fn construction_and_access() {
        let b = batch();
        assert_eq!(b.len(), 3);
        assert_eq!(b.column_count(), 2);
        assert_eq!(b.value(1, 0), Value::Int(2));
        assert_eq!(b.row(2), vec![Value::Int(3), Value::Str("c".into())]);
        assert_eq!(b.types(), vec![DataType::Int, DataType::Str]);
        assert!(!b.is_empty());
    }

    #[test]
    fn push_and_append() {
        let mut b = batch();
        b.push_row(vec![Value::Int(4), Value::Str("d".into())]);
        assert_eq!(b.len(), 4);
        let other = batch();
        b.append(&other);
        assert_eq!(b.len(), 7);
    }

    #[test]
    fn take_selects_rows_in_order() {
        let b = batch();
        let t = b.take(&[2, 0]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.value(0, 0), Value::Int(3));
        assert_eq!(t.value(1, 0), Value::Int(1));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_rejected() {
        batch().push_row(vec![Value::Int(1)]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_columns_rejected() {
        Batch::from_columns(vec![
            Column::from_data(datablocks::ColumnData::Int(vec![1, 2])),
            Column::from_data(datablocks::ColumnData::Int(vec![1])),
        ]);
    }
}
