//! Relational operators above the scan: filter, project, hash join, hash aggregation,
//! sort and limit — plus their morsel-parallel variants
//! ([`ParallelHashAggregateOp`], [`HashJoinOp::with_parallel_build`]).
//!
//! HyPer fuses the operators of a pipeline into generated machine code; this
//! reproduction keeps the same *pipeline structure* (scans feed non-materialising
//! operators which feed pipeline breakers like hash tables and sorts) but executes it
//! as an interpreted vector-at-a-time pull model. The relative behaviour the paper
//! evaluates — how scan flavour, compression, SMAs and PSMAs change query runtime —
//! is dominated by the scan work that happens below this module.
//!
//! The parallel pipeline breakers follow the morsel-driven design of the paper's
//! execution engine: every worker accumulates a [`crate::morsel::RADIX_PARTITIONS`]-way
//! radix-partitioned hash table over its morsels, and the barrier merges the workers'
//! tables partition-wise (each partition independently, in parallel) before the
//! single-threaded probe/output tail runs. See [`crate::morsel`] for the driver.
//!
//! # Planner contract
//!
//! These operators are the lowering target of the `query` crate's
//! logical→physical planner (spec: `crates/query/README.md`). The contract the
//! planner relies on, which changes here must preserve:
//!
//! * **Deterministic construction** — an operator tree's behaviour is fully
//!   determined by its constructor arguments; nothing is renegotiated at run
//!   time, so equal trees produce equal results (and equal `Display` dumps in
//!   the plan goldens).
//! * **Thread-count semantics** — `threads` parameters pass through
//!   [`crate::morsel::effective_threads`] (`0` = auto-detect, anything else
//!   verbatim); the parallel join build is byte-identical to the serial build
//!   at every thread count, and parallel aggregation is byte-identical except
//!   for floating-point sums, which are equal up to reassociation.
//! * **Output schemas** — [`Operator::output_types`] is fixed at construction;
//!   the planner mirrors these shapes (inner join = build ++ probe columns,
//!   semi join = probe columns, aggregate = groups ++ aggregates) when it
//!   type-checks the IR, so reordering output columns is a breaking change.

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use datablocks::{DataType, Value};
use storage::Relation;

use crate::batch::Batch;
use crate::expr::{arith, ArithOp, Expr};
use crate::morsel::{self, MorselSink, PipelineSpec, RADIX_BITS, RADIX_PARTITIONS};
use crate::scan::{RelationScanner, ScanStats};

/// A pull-based operator producing batches of tuples.
pub trait Operator {
    /// Produce the next non-empty batch, or `None` when exhausted.
    fn next_batch(&mut self) -> Option<Batch>;

    /// The column types of produced batches. Fixed for the operator's lifetime —
    /// implementations resolve it once at construction rather than re-deriving it
    /// from input batches (which would misfire on an empty first batch).
    fn output_types(&self) -> Vec<DataType>;

    /// Drain the operator into one batch (convenience for pipeline breakers, tests
    /// and result collection). See [`collect_operator`] for the debug-build type
    /// assertion this inherits.
    fn collect_all(&mut self) -> Batch
    where
        Self: Sized,
    {
        collect_operator(self)
    }
}

/// Boxed operator used to compose plans dynamically.
pub type BoxedOperator<'a> = Box<dyn Operator + 'a>;

/// Drain a boxed operator into a single batch. The operator's declared
/// [`Operator::output_types`] are resolved once up front; in debug builds every
/// emitted batch is asserted against them, so a producer whose batches drift from
/// its declaration fails loudly instead of corrupting the collected result.
pub fn collect_operator(op: &mut dyn Operator) -> Batch {
    let types = op.output_types();
    let mut out = Batch::new(&types);
    while let Some(batch) = op.next_batch() {
        debug_assert_eq!(
            batch.types(),
            types,
            "operator emitted a batch that does not match its declared output types"
        );
        out.append(&batch);
    }
    out
}

/// Evaluate a residual predicate tuple at a time, keeping matching rows.
pub(crate) fn filter_batch(batch: &Batch, predicate: &Expr) -> Batch {
    let keep: Vec<usize> = (0..batch.len())
        .filter(|&row| predicate.eval_bool(batch, row))
        .collect();
    batch.take(&keep)
}

/// Evaluate projection expressions row-wise into a batch of the declared types.
pub(crate) fn project_batch(batch: &Batch, exprs: &[Expr], types: &[DataType]) -> Batch {
    let mut out = Batch::new(types);
    for row in 0..batch.len() {
        out.push_row(exprs.iter().map(|e| e.eval(batch, row)).collect());
    }
    out
}

// ----------------------------------------------------------------------------- scan

/// Leaf operator: a relation scan (see [`crate::scan`]).
pub struct ScanOp<'a> {
    scanner: RelationScanner<'a>,
}

impl<'a> ScanOp<'a> {
    /// Wrap a relation scanner.
    pub fn new(scanner: RelationScanner<'a>) -> Self {
        ScanOp { scanner }
    }

    /// Scan statistics gathered so far.
    pub fn stats(&self) -> crate::scan::ScanStats {
        self.scanner.stats()
    }
}

impl<'a> Operator for ScanOp<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        self.scanner.next_batch()
    }

    fn output_types(&self) -> Vec<DataType> {
        self.scanner.output_types()
    }
}

// --------------------------------------------------------------------------- filter

/// Residual (non-SARGable) predicate evaluation, tuple at a time.
///
/// The query planner only emits this operator for conjuncts it could *not*
/// push into the scan's restriction list — a fully sargable filter disappears
/// into [`crate::RelationScanner`] restrictions instead.
pub struct FilterOp<'a> {
    input: BoxedOperator<'a>,
    predicate: Expr,
    types: Vec<DataType>,
}

impl<'a> FilterOp<'a> {
    /// Keep only tuples for which `predicate` evaluates to true.
    pub fn new(input: BoxedOperator<'a>, predicate: Expr) -> Self {
        let types = input.output_types();
        FilterOp {
            input,
            predicate,
            types,
        }
    }
}

impl<'a> Operator for FilterOp<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        let batch = self.input.next_batch()?;
        Some(filter_batch(&batch, &self.predicate))
    }

    fn output_types(&self) -> Vec<DataType> {
        self.types.clone()
    }
}

// -------------------------------------------------------------------------- project

/// Compute a new set of columns from expressions over the input.
pub struct ProjectOp<'a> {
    input: BoxedOperator<'a>,
    exprs: Vec<Expr>,
    types: Vec<DataType>,
}

impl<'a> ProjectOp<'a> {
    /// Project `exprs`; `types` declares the output column types.
    pub fn new(input: BoxedOperator<'a>, exprs: Vec<Expr>, types: Vec<DataType>) -> Self {
        assert_eq!(exprs.len(), types.len());
        ProjectOp {
            input,
            exprs,
            types,
        }
    }
}

impl<'a> Operator for ProjectOp<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        let batch = self.input.next_batch()?;
        Some(project_batch(&batch, &self.exprs, &self.types))
    }

    fn output_types(&self) -> Vec<DataType> {
        self.types.clone()
    }
}

// ------------------------------------------------------------------------ aggregate

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of the expression (NULLs ignored).
    Sum,
    /// Count of non-NULL expression values.
    Count,
    /// Count of all tuples (`count(*)`).
    CountStar,
    /// Arithmetic mean of non-NULL values.
    Avg,
    /// Minimum non-NULL value.
    Min,
    /// Maximum non-NULL value.
    Max,
}

/// One aggregate to compute: the function, its input expression and the declared
/// output type.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated expression (ignored for `CountStar`).
    pub expr: Expr,
    /// Declared output type of the aggregate column.
    pub output: DataType,
}

impl AggSpec {
    /// Convenience constructor.
    pub fn new(func: AggFunc, expr: Expr, output: DataType) -> AggSpec {
        AggSpec { func, expr, output }
    }
}

/// Hashable wrapper for group-by keys (treats NULLs as equal to each other and hashes
/// doubles by their bit pattern, which is what grouping semantics need).
#[derive(Debug, Clone, PartialEq)]
struct GroupKey(Vec<Value>);

impl Eq for GroupKey {}

impl Hash for GroupKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for value in &self.0 {
            match value {
                Value::Null => 0u8.hash(state),
                Value::Int(v) => {
                    1u8.hash(state);
                    v.hash(state);
                }
                Value::Double(v) => {
                    2u8.hash(state);
                    v.to_bits().hash(state);
                }
                Value::Str(s) => {
                    3u8.hash(state);
                    s.hash(state);
                }
            }
        }
    }
}

/// The hash of a group/join key (the same SipHash the table lookups use, seeded
/// deterministically, so partition assignment is stable across runs, thread counts
/// and morsel schedules).
fn key_hash(key: &GroupKey) -> u64 {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// Radix partition of a key: the leading [`RADIX_BITS`] bits of its hash.
fn partition_of(key: &GroupKey) -> usize {
    (key_hash(key) >> (64 - RADIX_BITS)) as usize
}

/// A group/join key bundled with its precomputed hash. The partitioned build sinks
/// hash every key exactly once — the same value picks the radix partition and feeds
/// the hash map (whose hasher only re-mixes the 8 precomputed bytes) — instead of
/// paying two full key hashes per input row.
#[derive(Debug, Clone, PartialEq)]
struct HashedKey {
    hash: u64,
    key: GroupKey,
}

impl Eq for HashedKey {}

impl Hash for HashedKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl HashedKey {
    fn new(key: GroupKey) -> HashedKey {
        let hash = key_hash(&key);
        HashedKey { hash, key }
    }

    /// Radix partition: same leading-bits rule as [`partition_of`], off the cached
    /// hash.
    fn partition(&self) -> usize {
        (self.hash >> (64 - RADIX_BITS)) as usize
    }
}

/// The radix partition (`0..`[`RADIX_PARTITIONS`]) a group-by or join key is
/// assigned to by the parallel pipeline breakers. A pure function of the key values
/// — independent of thread count, morsel size and scan schedule — which is what
/// makes the partition-wise merge of per-worker hash tables deterministic.
pub fn radix_partition(values: &[Value]) -> usize {
    partition_of(&GroupKey(values.to_vec()))
}

/// Deterministic output order of hash aggregation: groups sorted by key.
fn cmp_group_keys(a: &GroupKey, b: &GroupKey) -> std::cmp::Ordering {
    for (x, y) in a.0.iter().zip(&b.0) {
        let ord = x.total_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

#[derive(Debug, Clone)]
struct AggState {
    sum: Value,
    count: i64,
    min: Value,
    max: Value,
}

impl AggState {
    fn new() -> AggState {
        AggState {
            sum: Value::Null,
            count: 0,
            min: Value::Null,
            max: Value::Null,
        }
    }

    fn update(&mut self, value: &Value, count_star: bool) {
        if count_star {
            self.count += 1;
            return;
        }
        if value.is_null() {
            return;
        }
        self.count += 1;
        self.sum = if self.sum.is_null() {
            value.clone()
        } else {
            arith(ArithOp::Add, &self.sum, value)
        };
        if self.min.is_null() || matches!(value.sql_cmp(&self.min), Some(std::cmp::Ordering::Less))
        {
            self.min = value.clone();
        }
        if self.max.is_null()
            || matches!(value.sql_cmp(&self.max), Some(std::cmp::Ordering::Greater))
        {
            self.max = value.clone();
        }
    }

    /// Fold another partial state for the same group into this one (the merge phase
    /// of parallel aggregation). Count/min/max and integer sums are exact whatever
    /// the merge order; double sums can differ from the serial scan order in the
    /// last ulps, exactly like any parallel floating-point reduction.
    fn merge(&mut self, other: &AggState) {
        self.count += other.count;
        if self.sum.is_null() {
            self.sum = other.sum.clone();
        } else if !other.sum.is_null() {
            self.sum = arith(ArithOp::Add, &self.sum, &other.sum);
        }
        if self.min.is_null()
            || (!other.min.is_null()
                && matches!(other.min.sql_cmp(&self.min), Some(std::cmp::Ordering::Less)))
        {
            self.min = other.min.clone();
        }
        if self.max.is_null()
            || (!other.max.is_null()
                && matches!(
                    other.max.sql_cmp(&self.max),
                    Some(std::cmp::Ordering::Greater)
                ))
        {
            self.max = other.max.clone();
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Sum => self.sum.clone(),
            AggFunc::Count | AggFunc::CountStar => Value::Int(self.count),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    arith(ArithOp::Div, &self.sum, &Value::Int(self.count))
                }
            }
            AggFunc::Min => self.min.clone(),
            AggFunc::Max => self.max.clone(),
        }
    }
}

/// Advance every aggregate state of one group by one input row.
fn update_states(states: &mut [AggState], specs: &[AggSpec], batch: &Batch, row: usize) {
    for (state, spec) in states.iter_mut().zip(specs) {
        if spec.func == AggFunc::CountStar {
            state.update(&Value::Null, true);
        } else {
            state.update(&spec.expr.eval(batch, row), false);
        }
    }
}

/// Output column types of an aggregation: group keys then aggregates.
fn agg_output_types(group_types: &[DataType], aggregates: &[AggSpec]) -> Vec<DataType> {
    let mut types = group_types.to_vec();
    types.extend(aggregates.iter().map(|a| a.output));
    types
}

/// Emit sorted `(key, states)` entries as the aggregation result batch.
fn emit_groups(
    mut entries: Vec<(GroupKey, Vec<AggState>)>,
    aggregates: &[AggSpec],
    output_types: &[DataType],
) -> Batch {
    entries.sort_by(|a, b| cmp_group_keys(&a.0, &b.0));
    let mut out = Batch::new(output_types);
    for (key, states) in entries {
        let mut row = key.0;
        for (state, spec) in states.iter().zip(aggregates) {
            row.push(state.finish(spec.func));
        }
        out.push_row(row);
    }
    out
}

/// Hash aggregation (a pipeline breaker): consumes its whole input, then emits one
/// tuple per group: the group-key expressions followed by the aggregates.
pub struct HashAggregateOp<'a> {
    input: BoxedOperator<'a>,
    group_exprs: Vec<Expr>,
    aggregates: Vec<AggSpec>,
    output_types: Vec<DataType>,
    done: bool,
}

impl<'a> HashAggregateOp<'a> {
    /// Create a hash aggregation. `group_types` declares the types of the group-key
    /// output columns (one per group expression).
    pub fn new(
        input: BoxedOperator<'a>,
        group_exprs: Vec<Expr>,
        group_types: Vec<DataType>,
        aggregates: Vec<AggSpec>,
    ) -> Self {
        assert_eq!(group_exprs.len(), group_types.len());
        let output_types = agg_output_types(&group_types, &aggregates);
        HashAggregateOp {
            input,
            group_exprs,
            aggregates,
            output_types,
            done: false,
        }
    }
}

impl<'a> Operator for HashAggregateOp<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.done {
            return None;
        }
        self.done = true;
        let mut groups: HashMap<GroupKey, Vec<AggState>> = HashMap::new();
        while let Some(batch) = self.input.next_batch() {
            for row in 0..batch.len() {
                let key = GroupKey(
                    self.group_exprs
                        .iter()
                        .map(|e| e.eval(&batch, row))
                        .collect(),
                );
                let states = groups
                    .entry(key)
                    .or_insert_with(|| vec![AggState::new(); self.aggregates.len()]);
                update_states(states, &self.aggregates, &batch, row);
            }
        }
        Some(emit_groups(
            groups.into_iter().collect(),
            &self.aggregates,
            &self.output_types,
        ))
    }

    fn output_types(&self) -> Vec<DataType> {
        self.output_types.clone()
    }
}

// -------------------------------------------------------------- parallel aggregate

/// One radix partition of per-worker aggregation state.
type AggPartition = HashMap<HashedKey, Vec<AggState>>;

/// The input of a [`ParallelHashAggregateOp`]: either a morsel-parallel pipeline
/// over a relation, or already-materialised batches (each treated as one morsel).
enum AggSource<'a> {
    Scan {
        relation: &'a Relation,
        spec: PipelineSpec,
    },
    Batches {
        batches: Vec<Batch>,
        threads: usize,
    },
}

/// Per-worker sink of the parallel aggregation build phase: a radix-partitioned
/// group hash table.
struct AggBuildSink<'x> {
    group_exprs: &'x [Expr],
    aggregates: &'x [AggSpec],
    partitions: Vec<AggPartition>,
}

impl MorselSink for AggBuildSink<'_> {
    fn consume(&mut self, _morsel_idx: usize, batch: &Batch) {
        for row in 0..batch.len() {
            let key = HashedKey::new(GroupKey(
                self.group_exprs
                    .iter()
                    .map(|e| e.eval(batch, row))
                    .collect(),
            ));
            let partition = &mut self.partitions[key.partition()];
            let states = partition
                .entry(key)
                .or_insert_with(|| vec![AggState::new(); self.aggregates.len()]);
            update_states(states, self.aggregates, batch, row);
        }
    }
}

/// Fold the same radix partition of every worker into one partition, in worker
/// order. Partitions hold disjoint key sets, so this is the only cross-worker
/// combination the merge phase needs.
fn merge_agg_partition(parts: Vec<AggPartition>) -> AggPartition {
    let mut iter = parts.into_iter();
    let mut acc = iter.next().unwrap_or_default();
    for part in iter {
        for (key, states) in part {
            match acc.entry(key) {
                Entry::Occupied(mut entry) => {
                    for (state, other) in entry.get_mut().iter_mut().zip(&states) {
                        state.merge(other);
                    }
                }
                Entry::Vacant(slot) => {
                    slot.insert(states);
                }
            }
        }
    }
    acc
}

/// Morsel-parallel hash aggregation: workers run the scan→filter→project chain of a
/// [`PipelineSpec`] locally and aggregate into per-worker radix-partitioned hash
/// tables; the barrier merges partitions across workers partition-wise (in
/// parallel), then emits groups in sorted key order — the same deterministic output
/// order as the serial [`HashAggregateOp`].
///
/// Count, min, max and integer sums are **byte-identical** to the serial operator
/// for every thread count (they are order-insensitive); sums over doubles are
/// subject to floating-point reassociation like any parallel reduction and may
/// differ in the last ulps.
///
/// This is the query planner's lowering for aggregates fed by a pure scan
/// pipeline when the effective thread count is ≠ 1; join-fed aggregates (and
/// single-threaded plans) lower to [`HashAggregateOp`].
pub struct ParallelHashAggregateOp<'a> {
    source: AggSource<'a>,
    group_exprs: Vec<Expr>,
    aggregates: Vec<AggSpec>,
    output_types: Vec<DataType>,
    scan_stats: ScanStats,
    done: bool,
}

impl<'a> ParallelHashAggregateOp<'a> {
    /// Aggregate the morsel-parallel pipeline `spec` over `relation`
    /// (`spec.config.threads` controls build and merge parallelism).
    pub fn over_relation(
        relation: &'a Relation,
        spec: PipelineSpec,
        group_exprs: Vec<Expr>,
        group_types: Vec<DataType>,
        aggregates: Vec<AggSpec>,
    ) -> Self {
        assert_eq!(group_exprs.len(), group_types.len());
        let output_types = agg_output_types(&group_types, &aggregates);
        ParallelHashAggregateOp {
            source: AggSource::Scan { relation, spec },
            group_exprs,
            aggregates,
            output_types,
            scan_stats: ScanStats::default(),
            done: false,
        }
    }

    /// Aggregate already-materialised batches with `threads` workers, each batch
    /// being one morsel (used when the input is an intermediate result rather than
    /// a base-table scan).
    pub fn over_batches(
        batches: Vec<Batch>,
        threads: usize,
        group_exprs: Vec<Expr>,
        group_types: Vec<DataType>,
        aggregates: Vec<AggSpec>,
    ) -> ParallelHashAggregateOp<'static> {
        assert_eq!(group_exprs.len(), group_types.len());
        let output_types = agg_output_types(&group_types, &aggregates);
        ParallelHashAggregateOp {
            source: AggSource::Batches { batches, threads },
            group_exprs,
            aggregates,
            output_types,
            scan_stats: ScanStats::default(),
            done: false,
        }
    }

    /// Statistics of the driving scan (complete once the operator has produced its
    /// output; zero for the batch-fed variant).
    pub fn scan_stats(&self) -> ScanStats {
        self.scan_stats
    }

    fn threads(&self) -> usize {
        match &self.source {
            AggSource::Scan { spec, .. } => spec.config.threads,
            AggSource::Batches { threads, .. } => *threads,
        }
    }
}

impl Operator for ParallelHashAggregateOp<'_> {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.done {
            return None;
        }
        self.done = true;
        let threads = self.threads();
        let make_sink = || AggBuildSink {
            group_exprs: &self.group_exprs,
            aggregates: &self.aggregates,
            partitions: (0..RADIX_PARTITIONS).map(|_| AggPartition::new()).collect(),
        };
        let (sinks, stats) = match &self.source {
            // `Operator::next_batch` has no error channel; an unreadable cold
            // block still joins every pipeline worker first, then surfaces here
            // with its full on-disk position.
            AggSource::Scan { relation, spec } => morsel::drive_pipeline(relation, spec, make_sink)
                .unwrap_or_else(|err| panic!("parallel aggregate scan failed: {err}")),
            AggSource::Batches { batches, threads } => (
                morsel::drive_batches(batches, *threads, make_sink),
                ScanStats::default(),
            ),
        };
        self.scan_stats = stats;
        let per_worker: Vec<Vec<AggPartition>> =
            sinks.into_iter().map(|sink| sink.partitions).collect();
        let merged =
            morsel::merge_partitionwise(per_worker, threads, |_, parts| merge_agg_partition(parts));
        let entries: Vec<(GroupKey, Vec<AggState>)> = merged
            .into_iter()
            .flatten()
            .map(|(hashed, states)| (hashed.key, states))
            .collect();
        Some(emit_groups(entries, &self.aggregates, &self.output_types))
    }

    fn output_types(&self) -> Vec<DataType> {
        self.output_types.clone()
    }
}

// ----------------------------------------------------------------------------- join

/// Join variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner equi-join; output = build columns ++ probe columns.
    Inner,
    /// Left-semi join on the probe side: emit probe tuples that have at least one
    /// build match (used for EXISTS-style subqueries); output = probe columns.
    ProbeSemi,
}

/// One merged radix partition of the parallel join build (flattened into the
/// single probe table once every partition is merged).
type JoinPartition = HashMap<HashedKey, Vec<Vec<Value>>>;

/// One radix partition of a worker's build state: rows tagged with their global
/// `(morsel, row)` position so the merge phase can restore serial insertion order.
type TaggedPartition = HashMap<HashedKey, Vec<(u64, Vec<Value>)>>;

/// Hash equi-join. The build side is materialised into a hash table (the pipeline
/// breaker); the probe side streams through. The build can run morsel-parallel
/// ([`HashJoinOp::with_parallel_build`]): workers build private radix-partitioned
/// tables over the drained build batches and the barrier merges them
/// partition-wise, restoring serial insertion order per key so results are
/// byte-identical to the serial build. The merged partitions are flattened into one
/// table before probing — partitioning only earns its keep during the parallel
/// build/merge, while the (usually much larger) probe stream wants a single-lookup
/// hot path. Optionally an *early-probe* filter — a compact tag bitmap derived from
/// the key hashes, standing in for the tagged hash-table pointers of Appendix E —
/// rejects probe tuples before the full hash lookup.
pub struct HashJoinOp<'a> {
    build: BoxedOperator<'a>,
    probe: BoxedOperator<'a>,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    join_type: JoinType,
    early_probe: bool,
    build_threads: usize,
    table: Option<HashMap<GroupKey, Vec<Vec<Value>>>>,
    tags: Vec<u64>,
    output_types: Vec<DataType>,
}

impl<'a> HashJoinOp<'a> {
    /// Create a hash join of `build` and `probe` on the given key columns.
    pub fn new(
        build: BoxedOperator<'a>,
        probe: BoxedOperator<'a>,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        join_type: JoinType,
    ) -> Self {
        assert_eq!(build_keys.len(), probe_keys.len());
        let output_types = match join_type {
            JoinType::Inner => {
                let mut types = build.output_types();
                types.extend(probe.output_types());
                types
            }
            JoinType::ProbeSemi => probe.output_types(),
        };
        HashJoinOp {
            build,
            probe,
            build_keys,
            probe_keys,
            join_type,
            early_probe: false,
            build_threads: 1,
            table: None,
            tags: Vec::new(),
            output_types,
        }
    }

    /// Enable the Appendix-E style early probe (tag bitmap checked before the hash
    /// table lookup).
    pub fn with_early_probe(mut self, enabled: bool) -> Self {
        self.early_probe = enabled;
        self
    }

    /// Build the hash table with `threads` morsel workers (same contract as
    /// [`crate::ScanConfig::threads`]: `1` builds serially on the calling thread,
    /// `0` uses every hardware thread). The probe/output tail stays streaming and
    /// single-threaded; results are byte-identical to the serial build for every
    /// thread count. The query planner applies this to every join it lowers, at
    /// the session's configured thread count.
    pub fn with_parallel_build(mut self, threads: usize) -> Self {
        self.build_threads = threads;
        self
    }

    fn build_table(&mut self) {
        if self.table.is_some() {
            return;
        }
        let table: HashMap<GroupKey, Vec<Vec<Value>>> =
            if morsel::effective_threads(self.build_threads) == 1 {
                let mut serial: HashMap<GroupKey, Vec<Vec<Value>>> = HashMap::new();
                while let Some(batch) = self.build.next_batch() {
                    for row in 0..batch.len() {
                        let key = GroupKey(
                            self.build_keys
                                .iter()
                                .map(|&k| batch.value(row, k))
                                .collect(),
                        );
                        serial.entry(key).or_default().push(batch.row(row));
                    }
                }
                serial
            } else {
                // Drain the build side (the upstream scan parallelises itself through
                // its own ScanConfig), then partition-build over the batches.
                let mut batches = Vec::new();
                while let Some(batch) = self.build.next_batch() {
                    if !batch.is_empty() {
                        batches.push(batch);
                    }
                }
                let build_keys = &self.build_keys;
                let sinks = morsel::drive_batches(&batches, self.build_threads, || JoinBuildSink {
                    keys: build_keys,
                    partitions: (0..RADIX_PARTITIONS)
                        .map(|_| TaggedPartition::new())
                        .collect(),
                });
                let per_worker: Vec<Vec<TaggedPartition>> =
                    sinks.into_iter().map(|sink| sink.partitions).collect();
                let merged =
                    morsel::merge_partitionwise(per_worker, self.build_threads, |_, parts| {
                        merge_join_partition(parts)
                    });
                // Flatten the merged partitions (disjoint key sets) into one table so
                // the probe loop pays a single hash lookup per row.
                merged
                    .into_iter()
                    .flatten()
                    .map(|(hashed, rows)| (hashed.key, rows))
                    .collect()
            };
        // 16 KiB of tag bits (2^17 bits): small enough for L1/L2, large enough to be
        // selective for the build sizes used here. One bit per distinct key gives the
        // same bitmap as the serial one-bit-per-row construction.
        let mut tags = vec![0u64; 2048];
        for key in table.keys() {
            let slot = tag_slot(key, tags.len());
            tags[slot.0] |= 1 << slot.1;
        }
        self.table = Some(table);
        self.tags = tags;
    }
}

/// Per-worker sink of the parallel join build. Only fed by
/// [`morsel::drive_batches`], where each morsel is exactly one batch — so the
/// `(morsel_idx << 32) | row` tag is the row's unique global position in the
/// drained build stream, and sorting a key's rows by tag restores serial insertion
/// order.
struct JoinBuildSink<'x> {
    keys: &'x [usize],
    partitions: Vec<TaggedPartition>,
}

impl MorselSink for JoinBuildSink<'_> {
    fn consume(&mut self, morsel_idx: usize, batch: &Batch) {
        for row in 0..batch.len() {
            let key = HashedKey::new(GroupKey(
                self.keys.iter().map(|&k| batch.value(row, k)).collect(),
            ));
            let tag = ((morsel_idx as u64) << 32) | row as u64;
            self.partitions[key.partition()]
                .entry(key)
                .or_default()
                .push((tag, batch.row(row)));
        }
    }
}

/// Merge one radix partition of every build worker: concatenate each key's tagged
/// rows, then sort by tag to restore the serial build order.
fn merge_join_partition(parts: Vec<TaggedPartition>) -> JoinPartition {
    let mut tagged = TaggedPartition::new();
    for part in parts {
        for (key, mut rows) in part {
            tagged.entry(key).or_default().append(&mut rows);
        }
    }
    tagged
        .into_iter()
        .map(|(key, mut rows)| {
            rows.sort_unstable_by_key(|&(tag, _)| tag);
            (key, rows.into_iter().map(|(_, row)| row).collect())
        })
        .collect()
}

fn tag_slot(key: &GroupKey, words: usize) -> (usize, u32) {
    let h = key_hash(key);
    ((h as usize) % words, (h >> 32) as u32 % 64)
}

impl<'a> Operator for HashJoinOp<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        self.build_table();
        let table = self.table.as_ref().expect("built above");
        let batch = self.probe.next_batch()?;
        let mut out = Batch::new(&self.output_types);
        for row in 0..batch.len() {
            let key = GroupKey(
                self.probe_keys
                    .iter()
                    .map(|&k| batch.value(row, k))
                    .collect(),
            );
            if key.0.iter().any(|v| v.is_null()) {
                continue; // NULL keys never join
            }
            if self.early_probe {
                let slot = tag_slot(&key, self.tags.len());
                if self.tags[slot.0] & (1 << slot.1) == 0 {
                    continue;
                }
            }
            if let Some(build_rows) = table.get(&key) {
                match self.join_type {
                    JoinType::Inner => {
                        for build_row in build_rows {
                            let mut row_values = build_row.clone();
                            row_values.extend(batch.row(row));
                            out.push_row(row_values);
                        }
                    }
                    JoinType::ProbeSemi => out.push_row(batch.row(row)),
                }
            }
        }
        Some(out)
    }

    fn output_types(&self) -> Vec<DataType> {
        self.output_types.clone()
    }
}

// ----------------------------------------------------------------------------- sort

/// Sort key: column index and direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Column to sort by.
    pub column: usize,
    /// Sort descending instead of ascending.
    pub descending: bool,
}

impl SortKey {
    /// Ascending sort on a column.
    pub fn asc(column: usize) -> SortKey {
        SortKey {
            column,
            descending: false,
        }
    }

    /// Descending sort on a column.
    pub fn desc(column: usize) -> SortKey {
        SortKey {
            column,
            descending: true,
        }
    }
}

/// Sort (and optionally limit) the full input — a pipeline breaker.
pub struct SortOp<'a> {
    input: BoxedOperator<'a>,
    keys: Vec<SortKey>,
    limit: Option<usize>,
    types: Vec<DataType>,
    done: bool,
}

impl<'a> SortOp<'a> {
    /// Sort by `keys`, optionally keeping only the first `limit` tuples.
    pub fn new(input: BoxedOperator<'a>, keys: Vec<SortKey>, limit: Option<usize>) -> Self {
        let types = input.output_types();
        SortOp {
            input,
            keys,
            limit,
            types,
            done: false,
        }
    }
}

impl<'a> Operator for SortOp<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.done {
            return None;
        }
        self.done = true;
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let types = self.types.clone();
        while let Some(batch) = self.input.next_batch() {
            for row in 0..batch.len() {
                rows.push(batch.row(row));
            }
        }
        rows.sort_by(|a, b| {
            for key in &self.keys {
                let ord = a[key.column].total_cmp(&b[key.column]);
                let ord = if key.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        if let Some(limit) = self.limit {
            rows.truncate(limit);
        }
        Some(Batch::from_rows(&types, &rows))
    }

    fn output_types(&self) -> Vec<DataType> {
        self.types.clone()
    }
}

/// A fixed, already-materialised input (useful for tests and for feeding the build
/// side of joins from intermediate results).
pub struct ValuesOp {
    batch: Option<Batch>,
    types: Vec<DataType>,
}

impl ValuesOp {
    /// Wrap a batch as an operator.
    pub fn new(batch: Batch) -> ValuesOp {
        let types = batch.types();
        ValuesOp {
            batch: Some(batch),
            types,
        }
    }
}

impl Operator for ValuesOp {
    fn next_batch(&mut self) -> Option<Batch> {
        self.batch.take()
    }

    fn output_types(&self) -> Vec<DataType> {
        self.types.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablocks::CmpOp;

    fn numbers(n: i64) -> Batch {
        Batch::from_rows(
            &[DataType::Int, DataType::Int, DataType::Str],
            &(0..n)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Int(i % 10),
                        Value::Str(format!("g{}", i % 3)),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }

    fn values_op(n: i64) -> BoxedOperator<'static> {
        Box::new(ValuesOp::new(numbers(n)))
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let mut filter =
            FilterOp::new(values_op(100), Expr::col(1).cmp(CmpOp::Eq, Expr::lit(3i64)));
        let result = filter.collect_all();
        assert_eq!(result.len(), 10);
        assert!((0..result.len()).all(|r| result.value(r, 1) == Value::Int(3)));
    }

    #[test]
    fn project_computes_expressions() {
        let mut project = ProjectOp::new(
            values_op(5),
            vec![Expr::col(0).mul(Expr::lit(2i64)), Expr::lit("x")],
            vec![DataType::Int, DataType::Str],
        );
        let result = project.collect_all();
        assert_eq!(result.len(), 5);
        assert_eq!(result.value(3, 0), Value::Int(6));
        assert_eq!(result.value(0, 1), Value::Str("x".into()));
        assert_eq!(result.types(), vec![DataType::Int, DataType::Str]);
    }

    #[test]
    fn aggregate_grouped_sums_and_counts() {
        let mut agg = HashAggregateOp::new(
            values_op(30),
            vec![Expr::col(2)],
            vec![DataType::Str],
            vec![
                AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
                AggSpec::new(AggFunc::Sum, Expr::col(0), DataType::Int),
                AggSpec::new(AggFunc::Avg, Expr::col(0), DataType::Double),
                AggSpec::new(AggFunc::Min, Expr::col(0), DataType::Int),
                AggSpec::new(AggFunc::Max, Expr::col(0), DataType::Int),
            ],
        );
        let result = agg.collect_all();
        assert_eq!(result.len(), 3);
        // groups come out sorted: g0, g1, g2
        assert_eq!(result.value(0, 0), Value::Str("g0".into()));
        assert_eq!(result.value(0, 1), Value::Int(10)); // 30 rows / 3 groups
                                                        // group g0 holds 0,3,6,...,27 → sum 135
        assert_eq!(result.value(0, 2), Value::Int(135));
        assert_eq!(result.value(0, 3), Value::Double(13.5));
        assert_eq!(result.value(0, 4), Value::Int(0));
        assert_eq!(result.value(0, 5), Value::Int(27));
    }

    #[test]
    fn aggregate_without_groups_produces_single_row() {
        let mut agg = HashAggregateOp::new(
            values_op(100),
            vec![],
            vec![],
            vec![AggSpec::new(AggFunc::Sum, Expr::col(0), DataType::Int)],
        );
        let result = agg.collect_all();
        assert_eq!(result.len(), 1);
        assert_eq!(result.value(0, 0), Value::Int(4950));
    }

    #[test]
    fn aggregate_ignores_nulls_in_avg_and_count() {
        let batch = Batch::from_rows(
            &[DataType::Int],
            &[
                vec![Value::Int(10)],
                vec![Value::Null],
                vec![Value::Int(20)],
            ],
        );
        let mut agg = HashAggregateOp::new(
            Box::new(ValuesOp::new(batch)),
            vec![],
            vec![],
            vec![
                AggSpec::new(AggFunc::Count, Expr::col(0), DataType::Int),
                AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
                AggSpec::new(AggFunc::Avg, Expr::col(0), DataType::Double),
            ],
        );
        let result = agg.collect_all();
        assert_eq!(result.value(0, 0), Value::Int(2));
        assert_eq!(result.value(0, 1), Value::Int(3));
        assert_eq!(result.value(0, 2), Value::Double(15.0));
    }

    #[test]
    fn inner_hash_join_matches_keys() {
        // build: (key, name) for keys 0..5 ; probe: numbers with col1 in 0..10
        let build = Batch::from_rows(
            &[DataType::Int, DataType::Str],
            &(0..5)
                .map(|i| vec![Value::Int(i), Value::Str(format!("n{i}"))])
                .collect::<Vec<_>>(),
        );
        let mut join = HashJoinOp::new(
            Box::new(ValuesOp::new(build)),
            values_op(100),
            vec![0],
            vec![1],
            JoinType::Inner,
        );
        let result = join.collect_all();
        // probe rows with col1 in 0..5 match: 10 rows per value of col1 → 50
        assert_eq!(result.len(), 50);
        assert_eq!(result.column_count(), 2 + 3);
        for row in 0..result.len() {
            assert_eq!(
                result.value(row, 0),
                result.value(row, 3),
                "join keys equal"
            );
        }
    }

    #[test]
    fn semi_join_emits_probe_rows_once() {
        let build = Batch::from_rows(
            &[DataType::Int],
            &[
                vec![Value::Int(2)],
                vec![Value::Int(2)],
                vec![Value::Int(4)],
            ],
        );
        let mut join = HashJoinOp::new(
            Box::new(ValuesOp::new(build)),
            values_op(20),
            vec![0],
            vec![1],
            JoinType::ProbeSemi,
        );
        let result = join.collect_all();
        // col1 values 2 and 4 each appear twice in 0..20
        assert_eq!(result.len(), 4);
        assert_eq!(result.column_count(), 3);
    }

    #[test]
    fn early_probe_does_not_change_results() {
        let build = Batch::from_rows(
            &[DataType::Int],
            &(0..3).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
        );
        let plain = HashJoinOp::new(
            Box::new(ValuesOp::new(build.clone())),
            values_op(50),
            vec![0],
            vec![1],
            JoinType::Inner,
        )
        .collect_all_helper();
        let early = HashJoinOp::new(
            Box::new(ValuesOp::new(build)),
            values_op(50),
            vec![0],
            vec![1],
            JoinType::Inner,
        )
        .with_early_probe(true)
        .collect_all_helper();
        assert_eq!(plain.len(), early.len());
    }

    impl<'a> HashJoinOp<'a> {
        fn collect_all_helper(mut self) -> Batch {
            collect_operator(&mut self)
        }
    }

    #[test]
    fn join_skips_null_probe_keys() {
        let build = Batch::from_rows(&[DataType::Int], &[vec![Value::Int(1)]]);
        let probe = Batch::from_rows(
            &[DataType::Int],
            &[vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(1)]],
        );
        let mut join = HashJoinOp::new(
            Box::new(ValuesOp::new(build)),
            Box::new(ValuesOp::new(probe)),
            vec![0],
            vec![0],
            JoinType::Inner,
        );
        assert_eq!(join.collect_all().len(), 2);
    }

    #[test]
    fn sort_orders_and_limits() {
        let mut sort = SortOp::new(values_op(20), vec![SortKey::desc(0)], Some(3));
        let result = sort.collect_all();
        assert_eq!(result.len(), 3);
        assert_eq!(result.value(0, 0), Value::Int(19));
        assert_eq!(result.value(2, 0), Value::Int(17));

        let mut sort = SortOp::new(values_op(20), vec![SortKey::asc(1), SortKey::desc(0)], None);
        let result = sort.collect_all();
        assert_eq!(result.len(), 20);
        assert_eq!(result.value(0, 1), Value::Int(0));
        assert_eq!(
            result.value(0, 0),
            Value::Int(10),
            "ties broken by descending col0"
        );
    }

    #[test]
    fn values_op_emits_once() {
        let mut op = ValuesOp::new(numbers(3));
        assert_eq!(op.output_types().len(), 3);
        assert!(op.next_batch().is_some());
        assert!(op.next_batch().is_none());
    }

    // ------------------------------------------------------- parallel pipeline breakers

    fn int_aggs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
            AggSpec::new(AggFunc::Sum, Expr::col(0), DataType::Int),
            AggSpec::new(AggFunc::Min, Expr::col(0), DataType::Int),
            AggSpec::new(AggFunc::Max, Expr::col(0), DataType::Int),
            AggSpec::new(AggFunc::Avg, Expr::col(0), DataType::Double),
        ]
    }

    fn assert_batches_equal(a: &Batch, b: &Batch, context: &str) {
        assert_eq!(a.len(), b.len(), "{context}");
        for row in 0..a.len() {
            assert_eq!(a.row(row), b.row(row), "{context} row {row}");
        }
    }

    #[test]
    fn parallel_agg_over_batches_matches_serial() {
        let serial = HashAggregateOp::new(
            values_op(257),
            vec![Expr::col(2)],
            vec![DataType::Str],
            int_aggs(),
        )
        .collect_all();
        // split the same input into many small batches
        let full = numbers(257);
        let batches: Vec<Batch> = (0..full.len())
            .step_by(13)
            .map(|from| {
                let rows: Vec<usize> = (from..(from + 13).min(full.len())).collect();
                full.take(&rows)
            })
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let mut parallel = ParallelHashAggregateOp::over_batches(
                batches.clone(),
                threads,
                vec![Expr::col(2)],
                vec![DataType::Str],
                int_aggs(),
            );
            let result = parallel.collect_all();
            assert_batches_equal(&result, &serial, &format!("threads {threads}"));
        }
    }

    #[test]
    fn parallel_agg_result_is_independent_of_batch_order() {
        // "merging partitions in any order yields identical aggregate results":
        // feeding the batches in reversed / rotated order changes which worker
        // builds which partial state, yet the merged output is identical because
        // the merged aggregates are order-insensitive.
        let full = numbers(100);
        let batches: Vec<Batch> = (0..full.len())
            .step_by(9)
            .map(|from| {
                let rows: Vec<usize> = (from..(from + 9).min(full.len())).collect();
                full.take(&rows)
            })
            .collect();
        let mut reference = None;
        let mut orders: Vec<Vec<Batch>> = vec![batches.clone()];
        let mut reversed = batches.clone();
        reversed.reverse();
        orders.push(reversed);
        let mut rotated = batches.clone();
        rotated.rotate_left(batches.len() / 2);
        orders.push(rotated);
        for (idx, order) in orders.into_iter().enumerate() {
            for threads in [1usize, 3] {
                let result = ParallelHashAggregateOp::over_batches(
                    order.clone(),
                    threads,
                    vec![Expr::col(1)],
                    vec![DataType::Int],
                    int_aggs(),
                )
                .collect_all();
                match &reference {
                    None => reference = Some(result),
                    Some(expected) => assert_batches_equal(
                        &result,
                        expected,
                        &format!("order {idx} threads {threads}"),
                    ),
                }
            }
        }
    }

    #[test]
    fn merging_agg_partitions_in_any_worker_order_is_identical() {
        // Build three disjoint partial states for overlapping groups and merge the
        // per-worker partitions in every permutation: integer aggregates must agree.
        let full = numbers(60);
        let thirds: Vec<Batch> = (0..3)
            .map(|w| {
                let rows: Vec<usize> = (0..full.len()).filter(|r| r % 3 == w).collect();
                full.take(&rows)
            })
            .collect();
        let build = |order: &[usize]| -> Batch {
            let batches: Vec<Batch> = order.iter().map(|&w| thirds[w].clone()).collect();
            ParallelHashAggregateOp::over_batches(
                batches,
                2,
                vec![Expr::col(1)],
                vec![DataType::Int],
                int_aggs(),
            )
            .collect_all()
        };
        let reference = build(&[0, 1, 2]);
        for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            assert_batches_equal(&build(&order), &reference, &format!("order {order:?}"));
        }
    }

    #[test]
    fn radix_partition_is_pure_and_bounded() {
        let keys = [
            vec![Value::Int(42)],
            vec![Value::Null],
            vec![Value::Str("abc".into()), Value::Int(-7)],
            vec![Value::Double(3.25)],
            vec![],
        ];
        for key in &keys {
            let p = radix_partition(key);
            assert!(p < RADIX_PARTITIONS);
            assert_eq!(p, radix_partition(key), "partition must be a pure function");
        }
        // distinct int keys spread over more than one partition
        let hit: std::collections::HashSet<usize> = (0..256i64)
            .map(|i| radix_partition(&[Value::Int(i)]))
            .collect();
        assert!(hit.len() > 8, "only {} partitions hit", hit.len());
    }

    #[test]
    fn parallel_join_build_matches_serial_build() {
        // build: skewed duplicate keys plus NULL keys
        let build_rows: Vec<Vec<Value>> = (0..200)
            .map(|i| {
                let key = if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 7)
                };
                vec![key, Value::Int(i)]
            })
            .collect();
        let build_batch = Batch::from_rows(&[DataType::Int, DataType::Int], &build_rows);
        let serial = HashJoinOp::new(
            Box::new(ValuesOp::new(build_batch.clone())),
            values_op(100),
            vec![0],
            vec![1],
            JoinType::Inner,
        )
        .collect_all_helper();
        for threads in [2usize, 4, 8] {
            let parallel = HashJoinOp::new(
                Box::new(ValuesOp::new(build_batch.clone())),
                values_op(100),
                vec![0],
                vec![1],
                JoinType::Inner,
            )
            .with_parallel_build(threads)
            .collect_all_helper();
            assert_batches_equal(&parallel, &serial, &format!("threads {threads}"));
        }
    }

    #[test]
    fn parallel_semi_join_and_early_probe_match_serial() {
        let build = Batch::from_rows(
            &[DataType::Int],
            &(0..40).map(|i| vec![Value::Int(i % 5)]).collect::<Vec<_>>(),
        );
        let serial = HashJoinOp::new(
            Box::new(ValuesOp::new(build.clone())),
            values_op(60),
            vec![0],
            vec![1],
            JoinType::ProbeSemi,
        )
        .collect_all_helper();
        let parallel = HashJoinOp::new(
            Box::new(ValuesOp::new(build)),
            values_op(60),
            vec![0],
            vec![1],
            JoinType::ProbeSemi,
        )
        .with_parallel_build(4)
        .with_early_probe(true)
        .collect_all_helper();
        assert_batches_equal(&parallel, &serial, "semi + early probe");
    }

    #[test]
    fn parallel_agg_of_empty_input_matches_serial() {
        let empty = Batch::new(&[DataType::Int, DataType::Int, DataType::Str]);
        let serial = HashAggregateOp::new(
            Box::new(ValuesOp::new(empty.clone())),
            vec![Expr::col(2)],
            vec![DataType::Str],
            int_aggs(),
        )
        .collect_all();
        let parallel = ParallelHashAggregateOp::over_batches(
            vec![empty],
            4,
            vec![Expr::col(2)],
            vec![DataType::Str],
            int_aggs(),
        )
        .collect_all();
        assert_eq!(serial.len(), 0);
        assert_batches_equal(&parallel, &serial, "empty input");
    }
}
