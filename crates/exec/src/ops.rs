//! Relational operators above the scan: filter, project, hash join, hash aggregation,
//! sort and limit.
//!
//! HyPer fuses the operators of a pipeline into generated machine code; this
//! reproduction keeps the same *pipeline structure* (scans feed non-materialising
//! operators which feed pipeline breakers like hash tables and sorts) but executes it
//! as an interpreted vector-at-a-time pull model. The relative behaviour the paper
//! evaluates — how scan flavour, compression, SMAs and PSMAs change query runtime —
//! is dominated by the scan work that happens below this module.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use datablocks::{DataType, Value};

use crate::batch::Batch;
use crate::expr::{arith, ArithOp, Expr};
use crate::scan::RelationScanner;

/// A pull-based operator producing batches of tuples.
pub trait Operator {
    /// Produce the next non-empty batch, or `None` when exhausted.
    fn next_batch(&mut self) -> Option<Batch>;

    /// The column types of produced batches.
    fn output_types(&self) -> Vec<DataType>;

    /// Drain the operator into one batch (convenience for pipeline breakers, tests
    /// and result collection).
    fn collect_all(&mut self) -> Batch
    where
        Self: Sized,
    {
        let mut out = Batch::new(&self.output_types());
        while let Some(batch) = self.next_batch() {
            out.append(&batch);
        }
        out
    }
}

/// Boxed operator used to compose plans dynamically.
pub type BoxedOperator<'a> = Box<dyn Operator + 'a>;

/// Drain a boxed operator into a single batch.
pub fn collect_operator(op: &mut dyn Operator) -> Batch {
    let mut out = Batch::new(&op.output_types());
    while let Some(batch) = op.next_batch() {
        out.append(&batch);
    }
    out
}

// ----------------------------------------------------------------------------- scan

/// Leaf operator: a relation scan (see [`crate::scan`]).
pub struct ScanOp<'a> {
    scanner: RelationScanner<'a>,
}

impl<'a> ScanOp<'a> {
    /// Wrap a relation scanner.
    pub fn new(scanner: RelationScanner<'a>) -> Self {
        ScanOp { scanner }
    }

    /// Scan statistics gathered so far.
    pub fn stats(&self) -> crate::scan::ScanStats {
        self.scanner.stats()
    }
}

impl<'a> Operator for ScanOp<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        self.scanner.next_batch()
    }

    fn output_types(&self) -> Vec<DataType> {
        self.scanner.output_types()
    }
}

// --------------------------------------------------------------------------- filter

/// Residual (non-SARGable) predicate evaluation, tuple at a time.
pub struct FilterOp<'a> {
    input: BoxedOperator<'a>,
    predicate: Expr,
}

impl<'a> FilterOp<'a> {
    /// Keep only tuples for which `predicate` evaluates to true.
    pub fn new(input: BoxedOperator<'a>, predicate: Expr) -> Self {
        FilterOp { input, predicate }
    }
}

impl<'a> Operator for FilterOp<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        let batch = self.input.next_batch()?;
        let keep: Vec<usize> = (0..batch.len())
            .filter(|&row| self.predicate.eval_bool(&batch, row))
            .collect();
        Some(batch.take(&keep))
    }

    fn output_types(&self) -> Vec<DataType> {
        self.input.output_types()
    }
}

// -------------------------------------------------------------------------- project

/// Compute a new set of columns from expressions over the input.
pub struct ProjectOp<'a> {
    input: BoxedOperator<'a>,
    exprs: Vec<Expr>,
    types: Vec<DataType>,
}

impl<'a> ProjectOp<'a> {
    /// Project `exprs`; `types` declares the output column types.
    pub fn new(input: BoxedOperator<'a>, exprs: Vec<Expr>, types: Vec<DataType>) -> Self {
        assert_eq!(exprs.len(), types.len());
        ProjectOp {
            input,
            exprs,
            types,
        }
    }
}

impl<'a> Operator for ProjectOp<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        let batch = self.input.next_batch()?;
        let mut out = Batch::new(&self.types);
        for row in 0..batch.len() {
            out.push_row(self.exprs.iter().map(|e| e.eval(&batch, row)).collect());
        }
        Some(out)
    }

    fn output_types(&self) -> Vec<DataType> {
        self.types.clone()
    }
}

// ------------------------------------------------------------------------ aggregate

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of the expression (NULLs ignored).
    Sum,
    /// Count of non-NULL expression values.
    Count,
    /// Count of all tuples (`count(*)`).
    CountStar,
    /// Arithmetic mean of non-NULL values.
    Avg,
    /// Minimum non-NULL value.
    Min,
    /// Maximum non-NULL value.
    Max,
}

/// One aggregate to compute: the function, its input expression and the declared
/// output type.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated expression (ignored for `CountStar`).
    pub expr: Expr,
    /// Declared output type of the aggregate column.
    pub output: DataType,
}

impl AggSpec {
    /// Convenience constructor.
    pub fn new(func: AggFunc, expr: Expr, output: DataType) -> AggSpec {
        AggSpec { func, expr, output }
    }
}

/// Hashable wrapper for group-by keys (treats NULLs as equal to each other and hashes
/// doubles by their bit pattern, which is what grouping semantics need).
#[derive(Debug, Clone, PartialEq)]
struct GroupKey(Vec<Value>);

impl Eq for GroupKey {}

impl Hash for GroupKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for value in &self.0 {
            match value {
                Value::Null => 0u8.hash(state),
                Value::Int(v) => {
                    1u8.hash(state);
                    v.hash(state);
                }
                Value::Double(v) => {
                    2u8.hash(state);
                    v.to_bits().hash(state);
                }
                Value::Str(s) => {
                    3u8.hash(state);
                    s.hash(state);
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct AggState {
    sum: Value,
    count: i64,
    min: Value,
    max: Value,
}

impl AggState {
    fn new() -> AggState {
        AggState {
            sum: Value::Null,
            count: 0,
            min: Value::Null,
            max: Value::Null,
        }
    }

    fn update(&mut self, value: &Value, count_star: bool) {
        if count_star {
            self.count += 1;
            return;
        }
        if value.is_null() {
            return;
        }
        self.count += 1;
        self.sum = if self.sum.is_null() {
            value.clone()
        } else {
            arith(ArithOp::Add, &self.sum, value)
        };
        if self.min.is_null() || matches!(value.sql_cmp(&self.min), Some(std::cmp::Ordering::Less))
        {
            self.min = value.clone();
        }
        if self.max.is_null()
            || matches!(value.sql_cmp(&self.max), Some(std::cmp::Ordering::Greater))
        {
            self.max = value.clone();
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Sum => self.sum.clone(),
            AggFunc::Count | AggFunc::CountStar => Value::Int(self.count),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    arith(ArithOp::Div, &self.sum, &Value::Int(self.count))
                }
            }
            AggFunc::Min => self.min.clone(),
            AggFunc::Max => self.max.clone(),
        }
    }
}

/// Hash aggregation (a pipeline breaker): consumes its whole input, then emits one
/// tuple per group: the group-key expressions followed by the aggregates.
pub struct HashAggregateOp<'a> {
    input: BoxedOperator<'a>,
    group_exprs: Vec<Expr>,
    group_types: Vec<DataType>,
    aggregates: Vec<AggSpec>,
    done: bool,
}

impl<'a> HashAggregateOp<'a> {
    /// Create a hash aggregation. `group_types` declares the types of the group-key
    /// output columns (one per group expression).
    pub fn new(
        input: BoxedOperator<'a>,
        group_exprs: Vec<Expr>,
        group_types: Vec<DataType>,
        aggregates: Vec<AggSpec>,
    ) -> Self {
        assert_eq!(group_exprs.len(), group_types.len());
        HashAggregateOp {
            input,
            group_exprs,
            group_types,
            aggregates,
            done: false,
        }
    }
}

impl<'a> Operator for HashAggregateOp<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.done {
            return None;
        }
        self.done = true;
        let mut groups: HashMap<GroupKey, Vec<AggState>> = HashMap::new();
        while let Some(batch) = self.input.next_batch() {
            for row in 0..batch.len() {
                let key = GroupKey(
                    self.group_exprs
                        .iter()
                        .map(|e| e.eval(&batch, row))
                        .collect(),
                );
                let states = groups
                    .entry(key)
                    .or_insert_with(|| vec![AggState::new(); self.aggregates.len()]);
                for (state, spec) in states.iter_mut().zip(&self.aggregates) {
                    if spec.func == AggFunc::CountStar {
                        state.update(&Value::Null, true);
                    } else {
                        state.update(&spec.expr.eval(&batch, row), false);
                    }
                }
            }
        }
        let mut out = Batch::new(&self.output_types());
        // Deterministic output order: sort groups by key.
        let mut entries: Vec<(GroupKey, Vec<AggState>)> = groups.into_iter().collect();
        entries.sort_by(|a, b| {
            for (x, y) in a.0 .0.iter().zip(&b.0 .0) {
                let ord = x.total_cmp(y);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        for (key, states) in entries {
            let mut row = key.0;
            for (state, spec) in states.iter().zip(&self.aggregates) {
                row.push(state.finish(spec.func));
            }
            out.push_row(row);
        }
        Some(out)
    }

    fn output_types(&self) -> Vec<DataType> {
        let mut types = self.group_types.clone();
        types.extend(self.aggregates.iter().map(|a| a.output));
        types
    }
}

// ----------------------------------------------------------------------------- join

/// Join variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner equi-join; output = build columns ++ probe columns.
    Inner,
    /// Left-semi join on the probe side: emit probe tuples that have at least one
    /// build match (used for EXISTS-style subqueries); output = probe columns.
    ProbeSemi,
}

/// Hash equi-join. The build side is materialised into a hash table (the pipeline
/// breaker); the probe side streams through. Optionally an *early-probe* filter —
/// a compact tag bitmap derived from the key hashes, standing in for the tagged
/// hash-table pointers of Appendix E — rejects probe tuples before the full hash
/// lookup.
pub struct HashJoinOp<'a> {
    build: BoxedOperator<'a>,
    probe: BoxedOperator<'a>,
    build_keys: Vec<usize>,
    probe_keys: Vec<usize>,
    join_type: JoinType,
    early_probe: bool,
    table: Option<HashMap<GroupKey, Vec<Vec<Value>>>>,
    tags: Vec<u64>,
    build_types: Vec<DataType>,
}

impl<'a> HashJoinOp<'a> {
    /// Create a hash join of `build` and `probe` on the given key columns.
    pub fn new(
        build: BoxedOperator<'a>,
        probe: BoxedOperator<'a>,
        build_keys: Vec<usize>,
        probe_keys: Vec<usize>,
        join_type: JoinType,
    ) -> Self {
        assert_eq!(build_keys.len(), probe_keys.len());
        let build_types = build.output_types();
        HashJoinOp {
            build,
            probe,
            build_keys,
            probe_keys,
            join_type,
            early_probe: false,
            table: None,
            tags: Vec::new(),
            build_types,
        }
    }

    /// Enable the Appendix-E style early probe (tag bitmap checked before the hash
    /// table lookup).
    pub fn with_early_probe(mut self, enabled: bool) -> Self {
        self.early_probe = enabled;
        self
    }

    fn build_table(&mut self) {
        if self.table.is_some() {
            return;
        }
        let mut table: HashMap<GroupKey, Vec<Vec<Value>>> = HashMap::new();
        // 16 KiB of tag bits (2^17 bits): small enough for L1/L2, large enough to be
        // selective for the build sizes used here.
        let mut tags = vec![0u64; 2048];
        while let Some(batch) = self.build.next_batch() {
            for row in 0..batch.len() {
                let key = GroupKey(
                    self.build_keys
                        .iter()
                        .map(|&k| batch.value(row, k))
                        .collect(),
                );
                let slot = tag_slot(&key, tags.len());
                tags[slot.0] |= 1 << slot.1;
                table.entry(key).or_default().push(batch.row(row));
            }
        }
        self.table = Some(table);
        self.tags = tags;
    }
}

fn tag_slot(key: &GroupKey, words: usize) -> (usize, u32) {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    let h = hasher.finish();
    ((h as usize) % words, (h >> 32) as u32 % 64)
}

impl<'a> Operator for HashJoinOp<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        self.build_table();
        let table = self.table.as_ref().expect("built above");
        let batch = self.probe.next_batch()?;
        let mut out = Batch::new(&self.output_types());
        for row in 0..batch.len() {
            let key = GroupKey(
                self.probe_keys
                    .iter()
                    .map(|&k| batch.value(row, k))
                    .collect(),
            );
            if key.0.iter().any(|v| v.is_null()) {
                continue; // NULL keys never join
            }
            if self.early_probe {
                let slot = tag_slot(&key, self.tags.len());
                if self.tags[slot.0] & (1 << slot.1) == 0 {
                    continue;
                }
            }
            if let Some(build_rows) = table.get(&key) {
                match self.join_type {
                    JoinType::Inner => {
                        for build_row in build_rows {
                            let mut row_values = build_row.clone();
                            row_values.extend(batch.row(row));
                            out.push_row(row_values);
                        }
                    }
                    JoinType::ProbeSemi => out.push_row(batch.row(row)),
                }
            }
        }
        Some(out)
    }

    fn output_types(&self) -> Vec<DataType> {
        match self.join_type {
            JoinType::Inner => {
                let mut types = self.build_types.clone();
                types.extend(self.probe.output_types());
                types
            }
            JoinType::ProbeSemi => self.probe.output_types(),
        }
    }
}

// ----------------------------------------------------------------------------- sort

/// Sort key: column index and direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Column to sort by.
    pub column: usize,
    /// Sort descending instead of ascending.
    pub descending: bool,
}

impl SortKey {
    /// Ascending sort on a column.
    pub fn asc(column: usize) -> SortKey {
        SortKey {
            column,
            descending: false,
        }
    }

    /// Descending sort on a column.
    pub fn desc(column: usize) -> SortKey {
        SortKey {
            column,
            descending: true,
        }
    }
}

/// Sort (and optionally limit) the full input — a pipeline breaker.
pub struct SortOp<'a> {
    input: BoxedOperator<'a>,
    keys: Vec<SortKey>,
    limit: Option<usize>,
    done: bool,
}

impl<'a> SortOp<'a> {
    /// Sort by `keys`, optionally keeping only the first `limit` tuples.
    pub fn new(input: BoxedOperator<'a>, keys: Vec<SortKey>, limit: Option<usize>) -> Self {
        SortOp {
            input,
            keys,
            limit,
            done: false,
        }
    }
}

impl<'a> Operator for SortOp<'a> {
    fn next_batch(&mut self) -> Option<Batch> {
        if self.done {
            return None;
        }
        self.done = true;
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let types = self.input.output_types();
        while let Some(batch) = self.input.next_batch() {
            for row in 0..batch.len() {
                rows.push(batch.row(row));
            }
        }
        rows.sort_by(|a, b| {
            for key in &self.keys {
                let ord = a[key.column].total_cmp(&b[key.column]);
                let ord = if key.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        if let Some(limit) = self.limit {
            rows.truncate(limit);
        }
        Some(Batch::from_rows(&types, &rows))
    }

    fn output_types(&self) -> Vec<DataType> {
        self.input.output_types()
    }
}

/// A fixed, already-materialised input (useful for tests and for feeding the build
/// side of joins from intermediate results).
pub struct ValuesOp {
    batch: Option<Batch>,
    types: Vec<DataType>,
}

impl ValuesOp {
    /// Wrap a batch as an operator.
    pub fn new(batch: Batch) -> ValuesOp {
        let types = batch.types();
        ValuesOp {
            batch: Some(batch),
            types,
        }
    }
}

impl Operator for ValuesOp {
    fn next_batch(&mut self) -> Option<Batch> {
        self.batch.take()
    }

    fn output_types(&self) -> Vec<DataType> {
        self.types.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datablocks::CmpOp;

    fn numbers(n: i64) -> Batch {
        Batch::from_rows(
            &[DataType::Int, DataType::Int, DataType::Str],
            &(0..n)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Int(i % 10),
                        Value::Str(format!("g{}", i % 3)),
                    ]
                })
                .collect::<Vec<_>>(),
        )
    }

    fn values_op(n: i64) -> BoxedOperator<'static> {
        Box::new(ValuesOp::new(numbers(n)))
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let mut filter =
            FilterOp::new(values_op(100), Expr::col(1).cmp(CmpOp::Eq, Expr::lit(3i64)));
        let result = filter.collect_all();
        assert_eq!(result.len(), 10);
        assert!((0..result.len()).all(|r| result.value(r, 1) == Value::Int(3)));
    }

    #[test]
    fn project_computes_expressions() {
        let mut project = ProjectOp::new(
            values_op(5),
            vec![Expr::col(0).mul(Expr::lit(2i64)), Expr::lit("x")],
            vec![DataType::Int, DataType::Str],
        );
        let result = project.collect_all();
        assert_eq!(result.len(), 5);
        assert_eq!(result.value(3, 0), Value::Int(6));
        assert_eq!(result.value(0, 1), Value::Str("x".into()));
        assert_eq!(result.types(), vec![DataType::Int, DataType::Str]);
    }

    #[test]
    fn aggregate_grouped_sums_and_counts() {
        let mut agg = HashAggregateOp::new(
            values_op(30),
            vec![Expr::col(2)],
            vec![DataType::Str],
            vec![
                AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
                AggSpec::new(AggFunc::Sum, Expr::col(0), DataType::Int),
                AggSpec::new(AggFunc::Avg, Expr::col(0), DataType::Double),
                AggSpec::new(AggFunc::Min, Expr::col(0), DataType::Int),
                AggSpec::new(AggFunc::Max, Expr::col(0), DataType::Int),
            ],
        );
        let result = agg.collect_all();
        assert_eq!(result.len(), 3);
        // groups come out sorted: g0, g1, g2
        assert_eq!(result.value(0, 0), Value::Str("g0".into()));
        assert_eq!(result.value(0, 1), Value::Int(10)); // 30 rows / 3 groups
                                                        // group g0 holds 0,3,6,...,27 → sum 135
        assert_eq!(result.value(0, 2), Value::Int(135));
        assert_eq!(result.value(0, 3), Value::Double(13.5));
        assert_eq!(result.value(0, 4), Value::Int(0));
        assert_eq!(result.value(0, 5), Value::Int(27));
    }

    #[test]
    fn aggregate_without_groups_produces_single_row() {
        let mut agg = HashAggregateOp::new(
            values_op(100),
            vec![],
            vec![],
            vec![AggSpec::new(AggFunc::Sum, Expr::col(0), DataType::Int)],
        );
        let result = agg.collect_all();
        assert_eq!(result.len(), 1);
        assert_eq!(result.value(0, 0), Value::Int(4950));
    }

    #[test]
    fn aggregate_ignores_nulls_in_avg_and_count() {
        let batch = Batch::from_rows(
            &[DataType::Int],
            &[
                vec![Value::Int(10)],
                vec![Value::Null],
                vec![Value::Int(20)],
            ],
        );
        let mut agg = HashAggregateOp::new(
            Box::new(ValuesOp::new(batch)),
            vec![],
            vec![],
            vec![
                AggSpec::new(AggFunc::Count, Expr::col(0), DataType::Int),
                AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
                AggSpec::new(AggFunc::Avg, Expr::col(0), DataType::Double),
            ],
        );
        let result = agg.collect_all();
        assert_eq!(result.value(0, 0), Value::Int(2));
        assert_eq!(result.value(0, 1), Value::Int(3));
        assert_eq!(result.value(0, 2), Value::Double(15.0));
    }

    #[test]
    fn inner_hash_join_matches_keys() {
        // build: (key, name) for keys 0..5 ; probe: numbers with col1 in 0..10
        let build = Batch::from_rows(
            &[DataType::Int, DataType::Str],
            &(0..5)
                .map(|i| vec![Value::Int(i), Value::Str(format!("n{i}"))])
                .collect::<Vec<_>>(),
        );
        let mut join = HashJoinOp::new(
            Box::new(ValuesOp::new(build)),
            values_op(100),
            vec![0],
            vec![1],
            JoinType::Inner,
        );
        let result = join.collect_all();
        // probe rows with col1 in 0..5 match: 10 rows per value of col1 → 50
        assert_eq!(result.len(), 50);
        assert_eq!(result.column_count(), 2 + 3);
        for row in 0..result.len() {
            assert_eq!(
                result.value(row, 0),
                result.value(row, 3),
                "join keys equal"
            );
        }
    }

    #[test]
    fn semi_join_emits_probe_rows_once() {
        let build = Batch::from_rows(
            &[DataType::Int],
            &[
                vec![Value::Int(2)],
                vec![Value::Int(2)],
                vec![Value::Int(4)],
            ],
        );
        let mut join = HashJoinOp::new(
            Box::new(ValuesOp::new(build)),
            values_op(20),
            vec![0],
            vec![1],
            JoinType::ProbeSemi,
        );
        let result = join.collect_all();
        // col1 values 2 and 4 each appear twice in 0..20
        assert_eq!(result.len(), 4);
        assert_eq!(result.column_count(), 3);
    }

    #[test]
    fn early_probe_does_not_change_results() {
        let build = Batch::from_rows(
            &[DataType::Int],
            &(0..3).map(|i| vec![Value::Int(i)]).collect::<Vec<_>>(),
        );
        let plain = HashJoinOp::new(
            Box::new(ValuesOp::new(build.clone())),
            values_op(50),
            vec![0],
            vec![1],
            JoinType::Inner,
        )
        .collect_all_helper();
        let early = HashJoinOp::new(
            Box::new(ValuesOp::new(build)),
            values_op(50),
            vec![0],
            vec![1],
            JoinType::Inner,
        )
        .with_early_probe(true)
        .collect_all_helper();
        assert_eq!(plain.len(), early.len());
    }

    impl<'a> HashJoinOp<'a> {
        fn collect_all_helper(mut self) -> Batch {
            collect_operator(&mut self)
        }
    }

    #[test]
    fn join_skips_null_probe_keys() {
        let build = Batch::from_rows(&[DataType::Int], &[vec![Value::Int(1)]]);
        let probe = Batch::from_rows(
            &[DataType::Int],
            &[vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(1)]],
        );
        let mut join = HashJoinOp::new(
            Box::new(ValuesOp::new(build)),
            Box::new(ValuesOp::new(probe)),
            vec![0],
            vec![0],
            JoinType::Inner,
        );
        assert_eq!(join.collect_all().len(), 2);
    }

    #[test]
    fn sort_orders_and_limits() {
        let mut sort = SortOp::new(values_op(20), vec![SortKey::desc(0)], Some(3));
        let result = sort.collect_all();
        assert_eq!(result.len(), 3);
        assert_eq!(result.value(0, 0), Value::Int(19));
        assert_eq!(result.value(2, 0), Value::Int(17));

        let mut sort = SortOp::new(values_op(20), vec![SortKey::asc(1), SortKey::desc(0)], None);
        let result = sort.collect_all();
        assert_eq!(result.len(), 20);
        assert_eq!(result.value(0, 1), Value::Int(0));
        assert_eq!(
            result.value(0, 0),
            Value::Int(10),
            "ties broken by descending col0"
        );
    }

    #[test]
    fn values_op_emits_once() {
        let mut op = ValuesOp::new(numbers(3));
        assert_eq!(op.output_types().len(), 3);
        assert!(op.next_batch().is_some());
        assert!(op.next_batch().is_none());
    }
}
