//! Cooperative query cancellation.
//!
//! A [`CancelToken`] is a shared flag a consumer (a session, a network
//! connection's cancel frame, a dropped result stream) raises to stop a
//! running query. The execution paths observe it **at morsel boundaries** —
//! the same points where the existing early-drop and cold-read-abort paths
//! already stop workers — so cancellation is prompt without per-tuple checks:
//!
//! * streaming parallel scans ([`crate::morsel::drive_streaming`]) check the
//!   token between morsel claims and at every channel push, and the consumer
//!   side cancels-and-joins the workers before surfacing;
//! * pipeline drivers ([`crate::morsel::drive_pipeline`] — parallel aggregates
//!   and parallel join builds) check it at every morsel claim, join all
//!   workers, and then surface;
//! * serial scans ([`crate::scan::RelationScanner`]) check it once per pulled
//!   batch.
//!
//! The operator tree has no error channel (see [`crate::ops`]): a cancelled
//! execution path **panics** with [`CANCEL_MESSAGE`] after its workers are
//! joined, exactly like an unreadable cold block does, and the session
//! boundary (`query::QueryStream`) catches the panic and classifies it back
//! into a typed error. No worker thread outlives the panic.
//!
//! The token travels implicitly: the driving thread wraps each pull in
//! [`scoped`], which installs the token in a thread-local slot for the
//! duration of the call; the spawn sites inside this crate capture the
//! current token with [`current`] and hand clones to their workers. Code that
//! never installs a token (the plain [`crate::ops::collect_operator`] path)
//! is unaffected — [`current`] is simply `None` and every check is a no-op.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The panic payload of a cancelled execution path. The session boundary
/// recognises this exact text when classifying caught panics, so it is part
/// of the crate's stable contract (like the cold-read panic texts).
pub const CANCEL_MESSAGE: &str = "query cancelled";

/// A shared cancellation flag: cloned freely, raised once, observed
/// cooperatively at morsel boundaries. Raising it is idempotent and
/// thread-safe; [`CancelToken::reset`] re-arms the token for the next query
/// on the same session.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-raised token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raise the flag: every execution path holding a clone stops at its next
    /// morsel boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has the flag been raised?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Lower the flag again (a session re-arms its token when a new query
    /// starts, so a cancel aimed at a finished query does not poison the next
    /// one).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Run `f` with `token` installed as the calling thread's current cancel
/// token; the previous token (usually none) is restored afterwards, panic or
/// not. The execution paths entered from inside `f` pick the token up via
/// [`current`].
pub fn scoped<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|cell| *cell.borrow_mut() = self.0.take());
        }
    }
    let previous = CURRENT.with(|cell| cell.borrow_mut().replace(token.clone()));
    let _restore = Restore(previous);
    f()
}

/// The calling thread's current cancel token, if one is installed ([`scoped`]
/// is in effect somewhere up the stack).
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|cell| cell.borrow().clone())
}

/// Is the calling thread's current token (if any) raised?
pub fn current_is_cancelled() -> bool {
    CURRENT.with(|cell| {
        cell.borrow()
            .as_ref()
            .map(CancelToken::is_cancelled)
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_raises_and_resets() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        token.clone().cancel();
        assert!(token.is_cancelled());
        token.reset();
        assert!(!token.is_cancelled());
    }

    #[test]
    fn scoped_installs_and_restores() {
        assert!(current().is_none());
        let token = CancelToken::new();
        scoped(&token, || {
            assert!(current().is_some());
            assert!(!current_is_cancelled());
            token.cancel();
            assert!(current_is_cancelled());
        });
        assert!(current().is_none());
        // Without a scope every check is a no-op.
        assert!(!current_is_cancelled());
    }

    #[test]
    fn scoped_restores_across_panics() {
        let token = CancelToken::new();
        let result = std::panic::catch_unwind(|| scoped(&token, || panic!("boom")));
        assert!(result.is_err());
        assert!(current().is_none());
    }
}
