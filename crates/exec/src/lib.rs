//! # exec — vectorized scans feeding (simulated) JIT query pipelines
//!
//! This crate implements the query-processing half of the paper: an **interpreted
//! vectorized scan subsystem** that works over both hot uncompressed chunks and cold
//! compressed Data Blocks behind a single interface (Figure 6), the **relational
//! operators** consuming those batches, and a **compile-time model** quantifying why
//! a tuple-at-a-time JIT engine cannot simply unroll one code path per storage-layout
//! combination (Figure 5).
//!
//! ```
//! use exec::prelude::*;
//! use datablocks::{DataType, Value};
//! use storage::{ColumnDef, Relation, Schema};
//!
//! // A small relation, fully frozen into Data Blocks.
//! let schema = Schema::new(vec![
//!     ColumnDef::new("id", DataType::Int),
//!     ColumnDef::new("qty", DataType::Int),
//! ]);
//! let mut rel = Relation::with_chunk_capacity("t", schema, 1024);
//! for i in 0..5_000 {
//!     rel.insert(vec![Value::Int(i), Value::Int(i % 100)]);
//! }
//! rel.freeze_all();
//!
//! // select count(*), sum(qty) from t where qty between 10 and 19
//! let scan = RelationScanner::new(
//!     &rel,
//!     vec![1],
//!     vec![Restriction::between(1, 10i64, 19i64)],
//!     ScanConfig::default(),
//! );
//! let mut agg = HashAggregateOp::new(
//!     Box::new(ScanOp::new(scan)),
//!     vec![],
//!     vec![],
//!     vec![
//!         AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
//!         AggSpec::new(AggFunc::Sum, Expr::col(0), DataType::Int),
//!     ],
//! );
//! let result = agg.collect_all();
//! assert_eq!(result.value(0, 0), Value::Int(500));
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cancel;
pub mod expr;
pub mod jit;
pub mod morsel;
pub mod ops;
pub mod scan;

pub use batch::Batch;
pub use cancel::CancelToken;
pub use expr::{arith, ArithOp, Expr};
pub use jit::{JitCostModel, ScanCodegen};
pub use morsel::{
    drive_batches, drive_pipeline, drive_streaming, merge_partitionwise, scan_relation_parallel,
    Morsel, MorselSink, PipelineSpec, PipelineStep, ScanStream, RADIX_BITS, RADIX_PARTITIONS,
};
pub use ops::{
    collect_operator, radix_partition, AggFunc, AggSpec, BoxedOperator, FilterOp, HashAggregateOp,
    HashJoinOp, JoinType, Operator, ParallelHashAggregateOp, ProjectOp, ScanOp, SortKey, SortOp,
    ValuesOp,
};
pub use scan::{RelationScanner, ScanConfig, ScanMode, ScanStats, DEFAULT_MORSEL_ROWS};

/// Commonly used items for building queries by hand.
pub mod prelude {
    pub use crate::batch::Batch;
    pub use crate::expr::{ArithOp, Expr};
    pub use crate::morsel::{MorselSink, PipelineSpec, PipelineStep};
    pub use crate::ops::{
        collect_operator, radix_partition, AggFunc, AggSpec, BoxedOperator, FilterOp,
        HashAggregateOp, HashJoinOp, JoinType, Operator, ParallelHashAggregateOp, ProjectOp,
        ScanOp, SortKey, SortOp, ValuesOp,
    };
    pub use crate::scan::{RelationScanner, ScanConfig, ScanMode, ScanStats};
    pub use datablocks::scan::Restriction;
    pub use datablocks::{CmpOp, IsaLevel, ScanOptions};
}
