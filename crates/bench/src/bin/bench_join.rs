//! Parallel-join throughput benchmark: rows/s of morsel-parallel partitioned hash
//! joins over a frozen TPC-H database, serial vs 2/4/8 build workers.
//!
//! Two join shapes bracket the design space:
//!
//! * `orders_lineitem` — the Q3 core: a restricted orders scan builds, the (much
//!   larger) lineitem side probes; the build is mid-sized, so both the parallel
//!   partitioned build and the probe stream matter;
//! * `part_lineitem` — the Q14 core: a small unrestricted part build probed by a
//!   date-restricted lineitem scan, where the probe stream dominates and SMA/PSMA
//!   narrowing of the probe scan does most of the work.
//!
//! Both sides scan through the streaming morsel pipeline; the build runs
//! partition-parallel (`HashJoinOp::with_parallel_build`). Reported rows/s is
//! probe-side input rows over wall time — the driving stream of the pipeline.
//!
//! Emits `BENCH_join.json` (machine-readable, one entry per shape × thread count)
//! which the CI trajectory step folds into `BENCH_trajectory.jsonl`. Knobs:
//!
//! * `TPCH_SF` — scale factor; the default 0.2 yields ≥ 1.2 M lineitem rows.
//! * `--threads N` / `THREADS` — appends an extra thread count to the sweep.

use std::io::Write as _;

use db_bench::{fmt_duration, print_table_header, print_table_row, threads_arg, time_median};
use exec::prelude::*;
use workloads::tpch::TpchDb;

use datablocks::date_to_days;

fn main() {
    let sf = std::env::var("TPCH_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    println!("generating TPC-H scale factor {sf} ...");
    let mut db = TpchDb::generate(sf);
    db.freeze();
    let lineitem = db.relation("lineitem");
    let probe_rows = lineitem.row_count();
    println!(
        "lineitem: {probe_rows} rows, {} blocks; orders: {} rows; part: {} rows",
        lineitem.cold_block_count(),
        db.relation("orders").row_count(),
        db.relation("part").row_count(),
    );

    // `0 = all hardware threads` is resolved before recording, so BENCH_join.json
    // always names the actual worker count.
    let mut sweep = vec![1usize, 2, 4, 8];
    let extra = exec::morsel::effective_threads(threads_arg());
    if !sweep.contains(&extra) {
        sweep.push(extra);
    }

    let widths = [18usize, 10, 12, 14, 12, 10];
    print_table_header(
        "Parallel hash joins (probe side: lineitem)",
        &["join", "threads", "median", "rows/s", "rows out", "speedup"],
        &widths,
    );

    // The Q3 core: orders (restricted) ⋈ lineitem (restricted) on orderkey.
    let q3_cutoff = date_to_days(1995, 3, 15);
    let orders_lineitem = |threads: usize| -> usize {
        let config = ScanConfig::default().with_threads(threads);
        let orders = db.relation("orders");
        let os = orders.schema();
        let build = RelationScanner::new(
            orders,
            vec![os.idx("o_orderkey"), os.idx("o_custkey")],
            vec![Restriction::cmp(
                os.idx("o_orderdate"),
                CmpOp::Lt,
                q3_cutoff,
            )],
            config,
        );
        let lineitem = db.relation("lineitem");
        let ls = lineitem.schema();
        let probe = RelationScanner::new(
            lineitem,
            vec![ls.idx("l_orderkey"), ls.idx("l_extendedprice")],
            vec![Restriction::cmp(ls.idx("l_shipdate"), CmpOp::Gt, q3_cutoff)],
            config,
        );
        let mut join = HashJoinOp::new(
            Box::new(ScanOp::new(build)),
            Box::new(ScanOp::new(probe)),
            vec![0],
            vec![0],
            JoinType::Inner,
        )
        .with_parallel_build(threads);
        let mut out = 0usize;
        while let Some(batch) = join.next_batch() {
            out += batch.len();
        }
        out
    };

    // The Q14 core: part (small, unrestricted) ⋈ lineitem (one shipdate month).
    let month_lo = date_to_days(1995, 9, 1);
    let month_hi = date_to_days(1995, 10, 1) - 1;
    let part_lineitem = |threads: usize| -> usize {
        let config = ScanConfig::default().with_threads(threads);
        let part = db.relation("part");
        let ps = part.schema();
        let build = RelationScanner::new(part, vec![ps.idx("p_partkey")], vec![], config);
        let lineitem = db.relation("lineitem");
        let ls = lineitem.schema();
        let probe = RelationScanner::new(
            lineitem,
            vec![ls.idx("l_partkey"), ls.idx("l_extendedprice")],
            vec![Restriction::between(
                ls.idx("l_shipdate"),
                month_lo,
                month_hi,
            )],
            config,
        );
        let mut join = HashJoinOp::new(
            Box::new(ScanOp::new(build)),
            Box::new(ScanOp::new(probe)),
            vec![0],
            vec![0],
            JoinType::Inner,
        )
        .with_parallel_build(threads)
        .with_early_probe(true);
        let mut out = 0usize;
        while let Some(batch) = join.next_batch() {
            out += batch.len();
        }
        out
    };

    type JoinRun<'a> = (&'static str, &'a dyn Fn(usize) -> usize);
    let shapes: [JoinRun<'_>; 2] = [
        ("orders_lineitem", &orders_lineitem),
        ("part_lineitem", &part_lineitem),
    ];

    let mut entries = Vec::new();
    for (name, run) in shapes {
        let mut serial_secs = None;
        for &threads in &sweep {
            let (rows_out, elapsed) = time_median(3, || run(threads));
            assert!(rows_out > 0, "{name} must produce rows");
            let secs = elapsed.as_secs_f64();
            let rows_per_s = probe_rows as f64 / secs;
            let base = *serial_secs.get_or_insert(secs);
            let speedup = base / secs;
            print_table_row(
                &[
                    name.to_string(),
                    format!("{threads}"),
                    fmt_duration(elapsed),
                    format!("{rows_per_s:.2e}"),
                    format!("{rows_out}"),
                    format!("{speedup:.2}x"),
                ],
                &widths,
            );
            entries.push(format!(
                "    {{\"join\": \"{name}\", \"threads\": {threads}, \
                 \"elapsed_ms\": {:.3}, \"rows_per_s\": {rows_per_s:.0}, \
                 \"rows_out\": {rows_out}, \"speedup_vs_serial\": {speedup:.3}}}",
                secs * 1e3,
            ));
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"parallel_join\",\n  \"probe_relation\": \"lineitem\",\n  \
         \"scale_factor\": {sf},\n  \"rows\": {probe_rows},\n  \"hardware_threads\": {},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        entries.join(",\n"),
    );
    let path = "BENCH_join.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_join.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_join.json");
    println!("\nwrote {path}");
}
