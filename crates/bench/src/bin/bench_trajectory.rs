//! Fold the current benchmark results into the per-commit trajectory log.
//!
//! Reads `BENCH_scan.json`, `BENCH_agg.json` and `BENCH_io.json` (whichever exist
//! in the working directory), extracts the best rows/s **per benchmark shape** (a
//! regression in
//! one shape must not hide behind another shape's unchanged peak), and appends one
//! JSON line per shape to `BENCH_trajectory.jsonl`:
//!
//! ```json
//! {"commit": "<sha>", "date": "<iso8601>", "benchmark": "scan", "shape": "tpch_q6", "threads": 4, "rows_per_s": 3500000}
//! ```
//!
//! CI restores the previous log from its cache, runs this binary after the bench
//! binaries, and uploads the grown log as the `BENCH_trajectory` artifact — so the
//! repository accumulates one data point per benchmark per push to main. Knobs:
//!
//! * `TRAJECTORY_COMMIT` — commit id to record (CI passes `github.sha`; defaults to
//!   `"unknown"`).
//! * `TRAJECTORY_DATE` — timestamp to record (CI passes `date -u`; defaults to the
//!   UNIX epoch seconds at run time).
//! * `TRAJECTORY_REQUIRE` — comma-separated benchmark names (e.g.
//!   `scan,agg,io,join,oltp`) whose JSON **must** be present and parsable; a
//!   missing or empty file fails the run loudly instead of silently recording a
//!   thinner trajectory. CI sets this to every benchmark it just ran.

use std::io::Write as _;

use db_bench::{fold_best_per_shape, parse_bench_results, BENCHMARK_FILES};

const TRAJECTORY_PATH: &str = "BENCH_trajectory.jsonl";

fn main() {
    let commit = std::env::var("TRAJECTORY_COMMIT").unwrap_or_else(|_| "unknown".to_string());
    let date = std::env::var("TRAJECTORY_DATE").unwrap_or_else(|_| {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        format!("unix:{secs}")
    });
    let required: Vec<String> = std::env::var("TRAJECTORY_REQUIRE")
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        })
        .unwrap_or_default();
    let known: Vec<&str> = BENCHMARK_FILES.iter().map(|(name, _)| *name).collect();
    for name in &required {
        assert!(
            known.contains(&name.as_str()),
            "error: TRAJECTORY_REQUIRE names unknown benchmark {name:?} (known: {known:?})"
        );
    }

    let mut lines = Vec::new();
    for &(benchmark, path) in BENCHMARK_FILES {
        let is_required = required.iter().any(|r| r == benchmark);
        let Ok(json) = std::fs::read_to_string(path) else {
            if is_required {
                eprintln!("error: required benchmark output {path} is missing — did the {benchmark} bench step run?");
                std::process::exit(1);
            }
            eprintln!("note: {path} not found, skipping the {benchmark} data point");
            continue;
        };
        let entries = parse_bench_results(&json);
        if entries.is_empty() {
            if is_required {
                eprintln!("error: required benchmark output {path} holds no parsable results");
                std::process::exit(1);
            }
            eprintln!("warning: {path} holds no parsable results, skipping");
            continue;
        }
        for (shape, threads, rows_per_s) in fold_best_per_shape(entries) {
            lines.push((
                benchmark,
                shape.clone(),
                format!(
                    "{{\"commit\": \"{commit}\", \"date\": \"{date}\", \
                     \"benchmark\": \"{benchmark}\", \"shape\": \"{shape}\", \
                     \"threads\": {threads}, \"rows_per_s\": {rows_per_s:.0}}}"
                ),
            ));
        }
    }

    if lines.is_empty() {
        eprintln!("error: no benchmark JSON found — run bench_scan / bench_agg first");
        std::process::exit(1);
    }

    // A re-run of the same commit (flaky CI, manual retry) restores a log that
    // already holds this commit's points; appending again would double-count it in
    // the trajectory, so existing {commit, benchmark, shape} combinations are kept.
    let existing = std::fs::read_to_string(TRAJECTORY_PATH).unwrap_or_default();
    let already_recorded = |benchmark: &str, shape: &str| {
        existing.lines().any(|line| {
            line.contains(&format!("\"commit\": \"{commit}\""))
                && line.contains(&format!("\"benchmark\": \"{benchmark}\""))
                && line.contains(&format!("\"shape\": \"{shape}\""))
        })
    };

    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(TRAJECTORY_PATH)
        .expect("open BENCH_trajectory.jsonl");
    for (benchmark, shape, line) in &lines {
        if already_recorded(benchmark, shape) {
            println!("already recorded for this commit, skipping: {benchmark}/{shape}");
            continue;
        }
        writeln!(file, "{line}").expect("append trajectory line");
        println!("appended: {line}");
    }
    let total = std::fs::read_to_string(TRAJECTORY_PATH)
        .map(|text| text.lines().count())
        .unwrap_or(0);
    println!("{TRAJECTORY_PATH} now holds {total} data points");
}
