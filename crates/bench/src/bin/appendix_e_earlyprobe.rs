//! Appendix E: early probing of an upstream hash join during the scan — a tag/Bloom
//! style pre-filter rejects probe tuples before the full hash-table lookup. The paper
//! reports ~1.2x on join-heavy TPC-H queries when applied selectively.

use datablocks::{DataType, Restriction};
use db_bench::{fmt_duration, print_table_header, print_table_row, time_median, tpch_scale_factor};
use exec::prelude::*;
use workloads::TpchDb;

fn q3_like(db: &TpchDb, early_probe: bool) -> usize {
    // orders of one customer segment joined with all their lineitems
    let customer = db.relation("customer");
    let cs = customer.schema();
    let orders = db.relation("orders");
    let os = orders.schema();
    let lineitem = db.relation("lineitem");
    let ls = lineitem.schema();

    let cust = RelationScanner::new(
        customer,
        vec![cs.idx("c_custkey")],
        vec![Restriction::eq(cs.idx("c_mktsegment"), "BUILDING")],
        ScanConfig::default(),
    );
    let ord = RelationScanner::new(
        orders,
        vec![os.idx("o_orderkey"), os.idx("o_custkey")],
        vec![],
        ScanConfig::default(),
    );
    let cust_orders = HashJoinOp::new(
        Box::new(ScanOp::new(cust)),
        Box::new(ScanOp::new(ord)),
        vec![0],
        vec![1],
        JoinType::ProbeSemi,
    )
    .with_early_probe(early_probe);
    let li = RelationScanner::new(
        lineitem,
        vec![ls.idx("l_orderkey"), ls.idx("l_extendedprice")],
        vec![],
        ScanConfig::default(),
    );
    let mut join = HashJoinOp::new(
        Box::new(cust_orders),
        Box::new(ScanOp::new(li)),
        vec![0],
        vec![0],
        JoinType::Inner,
    )
    .with_early_probe(early_probe);
    let mut agg = HashAggregateOp::new(
        Box::new(TakeBatches(&mut join)),
        vec![],
        vec![],
        vec![AggSpec::new(
            AggFunc::CountStar,
            Expr::lit(0i64),
            DataType::Int,
        )],
    );
    let out = agg.collect_all();
    out.value(0, 0).as_int().unwrap_or(0) as usize
}

struct TakeBatches<'a, 'b>(&'b mut HashJoinOp<'a>);
impl<'a, 'b> Operator for TakeBatches<'a, 'b> {
    fn next_batch(&mut self) -> Option<Batch> {
        self.0.next_batch()
    }
    fn output_types(&self) -> Vec<DataType> {
        self.0.output_types()
    }
}

fn main() {
    let sf = tpch_scale_factor();
    let mut db = TpchDb::generate(sf);
    db.freeze();

    let widths = [28usize, 12, 12];
    print_table_header(
        "Appendix E: early join probing inside the scan pipeline",
        &["configuration", "runtime", "join rows"],
        &widths,
    );
    for (label, early) in [("full hash probe", false), ("early tag probe", true)] {
        let (rows, elapsed) = time_median(3, || q3_like(&db, early));
        print_table_row(
            &[label.to_string(), fmt_duration(elapsed), format!("{rows}")],
            &widths,
        );
    }
    println!("\nExpected shape (paper): early probing helps when the join is selective (here the");
    println!("BUILDING segment keeps ~20% of orders); results are identical either way.");
}
