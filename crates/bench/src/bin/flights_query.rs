//! Section 5.2: the flights query (Appendix D) — average arrival delay per carrier
//! into SFO for 1998–2008 — comparing a JIT-style scan on uncompressed storage with
//! Data Block scans using SMAs and PSMAs on the naturally date-ordered data set.

use db_bench::{
    bench_rows, fmt_duration, print_table_header, print_table_row, threads_arg, time_median,
};
use exec::ScanConfig;
use workloads::flights;

fn main() {
    let rows = bench_rows(500_000);
    let threads = threads_arg();
    println!("generating {rows} flight rows (scan threads: {threads}) ...");
    let hot = flights::generate(rows, datablocks::DEFAULT_BLOCK_CAPACITY);
    let mut cold = flights::generate(rows, datablocks::DEFAULT_BLOCK_CAPACITY);
    cold.freeze_all();

    let configs = [
        (
            "JIT (uncompressed)",
            &hot,
            ScanConfig::named("jit").with_threads(threads),
        ),
        (
            "Vectorized +SARG (uncompressed)",
            &hot,
            ScanConfig::named("vectorized+sarg").with_threads(threads),
        ),
        (
            "Data Blocks +SARG/SMA",
            &cold,
            ScanConfig::named("datablocks+sarg").with_threads(threads),
        ),
        (
            "Data Blocks +PSMA",
            &cold,
            ScanConfig::named("datablocks+psma").with_threads(threads),
        ),
    ];
    let widths = [32usize, 12, 10, 16, 14];
    print_table_header(
        "Flights query: avg arrival delay per carrier into SFO, 1998-2008",
        &[
            "configuration",
            "runtime",
            "speedup",
            "blocks skipped",
            "rows scanned",
        ],
        &widths,
    );
    let mut baseline = None;
    for (label, relation, config) in configs {
        let ((_, stats), elapsed) = time_median(3, || flights::sfo_delay_query(relation, config));
        let base = *baseline.get_or_insert(elapsed);
        print_table_row(
            &[
                label.to_string(),
                fmt_duration(elapsed),
                format!("{:.1}x", base.as_secs_f64() / elapsed.as_secs_f64()),
                format!("{}/{}", stats.blocks_skipped, stats.blocks_total),
                format!("{}", stats.rows_scanned),
            ],
            &widths,
        );
    }
    println!("\nExpected shape (paper): >20x over the JIT scan — the relation is naturally");
    println!("ordered on date, so SMAs skip most blocks and PSMAs narrow the rest.");
}
