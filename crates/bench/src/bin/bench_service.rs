//! Query-service throughput benchmark: concurrent sessions racing the TPC-H
//! Q1/Q6/Q3 mix through [`query::QueryService`] against a spilled database,
//! across session counts {1, 4, 16} and two admission-budget regimes:
//!
//! * `ample` — the shared pool fits every session's budget at once, so
//!   admission only enforces the concurrency cap and queries run with their
//!   full channel capacity;
//! * `tight` — the pool admits two budgets at a time, so sessions queue FIFO
//!   at admission and each granted query runs with a budget-derived (smaller)
//!   reorder-channel capacity.
//!
//! Reported rows/s is lineitem rows driven through scans over wall time,
//! summed across sessions — the same row-throughput currency as the other
//! benchmarks, so the entries fold into `BENCH_trajectory.jsonl` unchanged
//! (`threads` carries the session count; each query plans at one thread).
//!
//! Knobs:
//! * `TPCH_SF` — scale factor (default 0.2);
//! * `SERVICE_ROUNDS` — query-mix rounds per session (default 2).

use std::io::Write as _;
use std::sync::Arc;

use db_bench::{print_table_header, print_table_row};
use exec::prelude::*;
use query::service::derive_spill_policy;
use query::{QueryService, ServiceConfig};
use storage::SpillPolicy;
use workloads::tpch::{query_sql, TpchDb};

const SESSION_COUNTS: &[usize] = &[1, 4, 16];
const QUERIES: &[&str] = &["Q1", "Q6", "Q3"];
const PER_SESSION_BUDGET: usize = 32 << 20;

/// (regime name, shared pool size): `ample` admits all 16 budgets at once,
/// `tight` two.
const REGIMES: &[(&str, usize)] = &[
    ("ample", 16 * PER_SESSION_BUDGET),
    ("tight", 2 * PER_SESSION_BUDGET),
];

fn main() {
    let sf = std::env::var("TPCH_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let rounds: usize = std::env::var("SERVICE_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    println!("generating TPC-H scale factor {sf} ...");
    let mut db = TpchDb::generate(sf);
    db.freeze();
    let lineitem_rows = db.db.relation("lineitem").row_count();

    // Spill with the block-cache share of the largest pool; the cache capacity
    // is a property of the database, the admission budgets of the service.
    let relation_count = db.db.relation_names().len();
    let (_, largest_pool) = REGIMES[0];
    db.db
        .enable_spill(derive_spill_policy(
            SpillPolicy::default(),
            largest_pool,
            relation_count,
        ))
        .expect("enable spill");
    println!(
        "lineitem: {lineitem_rows} rows; {relation_count} relations spilled, \
         {} KiB cache per store",
        db.db.spill_policy().expect("policy").cache_capacity_bytes >> 10,
    );
    let db = Arc::new(db.db);

    let widths = [16usize, 10, 10, 12, 14];
    print_table_header(
        "Query service throughput (Q1/Q6/Q3 mix, 1 planner thread per query)",
        &["regime", "sessions", "queries", "elapsed", "rows/s"],
        &widths,
    );

    let mut entries = Vec::new();
    for &(regime, pool) in REGIMES {
        for &sessions in SESSION_COUNTS {
            let service = Arc::new(QueryService::new(
                Arc::clone(&db),
                ScanConfig::default().with_threads(1),
                ServiceConfig {
                    max_concurrent: 16,
                    total_budget_bytes: pool,
                },
            ));
            let queries = sessions * rounds * QUERIES.len();
            let start = std::time::Instant::now();
            let mut handles = Vec::new();
            for k in 0..sessions {
                let service = Arc::clone(&service);
                handles.push(std::thread::spawn(move || {
                    let session = service.session(PER_SESSION_BUDGET);
                    for round in 0..rounds {
                        for (q, &name) in QUERIES.iter().enumerate() {
                            let sql = query_sql(QUERIES[(k + round + q) % QUERIES.len()]);
                            session
                                .sql(sql)
                                .and_then(|stream| stream.collect())
                                .unwrap_or_else(|err| panic!("{name}: {err}"));
                        }
                    }
                }));
            }
            for handle in handles {
                handle.join().expect("session thread");
            }
            let secs = start.elapsed().as_secs_f64();
            // Every query in the mix drives a full (pruned) pass over
            // lineitem; rows/s is that driving stream summed over sessions.
            let rows_per_s = (queries * lineitem_rows) as f64 / secs;
            let shape = format!("{regime}_s{sessions}");
            print_table_row(
                &[
                    shape.clone(),
                    format!("{sessions}"),
                    format!("{queries}"),
                    format!("{:.2}s", secs),
                    format!("{rows_per_s:.0}"),
                ],
                &widths,
            );
            entries.push(format!(
                "    {{\"service\": \"{shape}\", \"threads\": {sessions}, \
                 \"elapsed_ms\": {:.3}, \"rows_per_s\": {rows_per_s:.0}, \
                 \"queries\": {queries}}}",
                secs * 1e3,
            ));
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"query_service\",\n  \"scale_factor\": {sf},\n  \
         \"lineitem_rows\": {lineitem_rows},\n  \"rounds\": {rounds},\n  \
         \"hardware_threads\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        entries.join(",\n"),
    );
    let path = "BENCH_service.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_service.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_service.json");
    println!("\nwrote {path}");
}
