//! Parallel-aggregation throughput benchmark: rows/s of morsel-parallel partitioned
//! hash aggregation over a frozen TPC-H lineitem, serial vs 2/4/8 workers.
//!
//! Two aggregation shapes bracket the design space:
//!
//! * `q1_groups` — the TPC-H Q1 shape: a handful of groups, so the build phase is
//!   pure aggregation arithmetic and the partition-wise merge is trivial;
//! * `orderkey_groups` — one group per order key, so the per-worker partitioned
//!   hash tables grow large and the merge phase does real work.
//!
//! Emits `BENCH_agg.json` (machine-readable, one entry per thread count) which the
//! CI trajectory step folds into `BENCH_trajectory.jsonl`. Knobs:
//!
//! * `TPCH_SF` — scale factor; the default 0.2 yields ≥ 1.2 M lineitem rows.
//! * `--threads N` / `THREADS` — appends an extra thread count to the sweep.

use std::io::Write as _;

use db_bench::{fmt_duration, print_table_header, print_table_row, threads_arg, time_median};
use exec::prelude::*;
use workloads::tpch::TpchDb;

use datablocks::scan::Restriction;
use datablocks::{date_to_days, CmpOp, DataType};

/// One benchmarked aggregation shape.
struct AggShape {
    name: &'static str,
    projection: Vec<usize>,
    restrictions: Vec<Restriction>,
    group_exprs: Vec<Expr>,
    group_types: Vec<DataType>,
    aggregates: Vec<AggSpec>,
}

fn main() {
    let sf = std::env::var("TPCH_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    println!("generating TPC-H scale factor {sf} ...");
    let mut db = TpchDb::generate(sf);
    db.freeze();
    let lineitem = db.relation("lineitem");
    let s = lineitem.schema();
    let rows = lineitem.row_count();
    println!(
        "lineitem: {rows} rows, {} blocks",
        lineitem.cold_block_count()
    );

    let cutoff = date_to_days(1998, 12, 1) - 90;
    let shapes = vec![
        AggShape {
            name: "q1_groups",
            // scan output: 0 returnflag, 1 linestatus, 2 quantity, 3 extendedprice
            projection: vec![
                s.idx("l_returnflag"),
                s.idx("l_linestatus"),
                s.idx("l_quantity"),
                s.idx("l_extendedprice"),
            ],
            restrictions: vec![Restriction::cmp(s.idx("l_shipdate"), CmpOp::Le, cutoff)],
            group_exprs: vec![Expr::col(0), Expr::col(1)],
            group_types: vec![DataType::Str, DataType::Str],
            aggregates: vec![
                AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
                AggSpec::new(AggFunc::Sum, Expr::col(2), DataType::Int),
                AggSpec::new(AggFunc::Sum, Expr::col(3), DataType::Int),
                AggSpec::new(AggFunc::Avg, Expr::col(3), DataType::Double),
            ],
        },
        AggShape {
            name: "orderkey_groups",
            // scan output: 0 orderkey, 1 quantity
            projection: vec![s.idx("l_orderkey"), s.idx("l_quantity")],
            restrictions: vec![],
            group_exprs: vec![Expr::col(0)],
            group_types: vec![DataType::Int],
            aggregates: vec![
                AggSpec::new(AggFunc::CountStar, Expr::lit(0i64), DataType::Int),
                AggSpec::new(AggFunc::Sum, Expr::col(1), DataType::Int),
                AggSpec::new(AggFunc::Max, Expr::col(1), DataType::Int),
            ],
        },
    ];

    // `0 = all hardware threads` is resolved before recording, so BENCH_agg.json
    // always names the actual worker count.
    let mut sweep = vec![1usize, 2, 4, 8];
    let extra = exec::morsel::effective_threads(threads_arg());
    if !sweep.contains(&extra) {
        sweep.push(extra);
    }

    let widths = [18usize, 10, 12, 14, 10, 10];
    print_table_header(
        "Parallel lineitem aggregation",
        &[
            "aggregation",
            "threads",
            "median",
            "rows/s",
            "groups",
            "speedup",
        ],
        &widths,
    );

    let mut entries = Vec::new();
    for shape in &shapes {
        let mut serial_secs = None;
        for &threads in &sweep {
            let config = ScanConfig::default().with_threads(threads);
            let spec =
                PipelineSpec::scan(shape.projection.clone(), shape.restrictions.clone(), config);
            let (groups, elapsed) = time_median(3, || {
                let mut agg = ParallelHashAggregateOp::over_relation(
                    lineitem,
                    spec.clone(),
                    shape.group_exprs.clone(),
                    shape.group_types.clone(),
                    shape.aggregates.clone(),
                );
                agg.collect_all().len()
            });
            let secs = elapsed.as_secs_f64();
            let rows_per_s = rows as f64 / secs;
            let base = *serial_secs.get_or_insert(secs);
            let speedup = base / secs;
            print_table_row(
                &[
                    shape.name.to_string(),
                    format!("{threads}"),
                    fmt_duration(elapsed),
                    format!("{:.2e}", rows_per_s),
                    format!("{groups}"),
                    format!("{speedup:.2}x"),
                ],
                &widths,
            );
            entries.push(format!(
                "    {{\"agg\": \"{}\", \"threads\": {threads}, \
                 \"elapsed_ms\": {:.3}, \"rows_per_s\": {:.0}, \"groups\": {groups}, \
                 \"speedup_vs_serial\": {speedup:.3}}}",
                shape.name,
                secs * 1e3,
                rows_per_s,
            ));
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"parallel_agg\",\n  \"relation\": \"lineitem\",\n  \
         \"scale_factor\": {sf},\n  \"rows\": {rows},\n  \"hardware_threads\": {},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        entries.join(",\n"),
    );
    let path = "BENCH_agg.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_agg.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_agg.json");
    println!("\nwrote {path}");
}
