//! Table 1: database sizes for TPC-H, IMDB cast_info and the flights data set,
//! comparing uncompressed in-memory storage, compressed Data Blocks and the heavy
//! (Vectorwise-style PFOR/PDICT) baseline.

use bitpack::HeavyColumn;
use db_bench::{bench_rows, fmt_bytes, print_table_header, print_table_row, tpch_scale_factor};
use storage::Relation;
use workloads::{flights, imdb, TpchDb};

fn heavy_size(relation: &Relation) -> usize {
    // Whole-column heavy compression over each frozen block's logical columns.
    let mut total = 0usize;
    for idx in 0..relation.cold_block_count() {
        let block = relation.cold_block(idx);
        for col in 0..block.column_count() {
            let n = block.tuple_count() as usize;
            let first = block.get(0, col);
            match first {
                datablocks::Value::Str(_) => {
                    let values: Vec<String> = (0..n)
                        .map(|r| block.get(r, col).as_str().unwrap_or("").to_string())
                        .collect();
                    total += HeavyColumn::compress_strings(&values).byte_size();
                }
                _ => {
                    let values: Vec<i64> = (0..n)
                        .map(|r| match block.get(r, col) {
                            datablocks::Value::Int(v) => v,
                            datablocks::Value::Double(v) => (v * 100.0) as i64,
                            _ => 0,
                        })
                        .collect();
                    total += HeavyColumn::compress_ints(&values).byte_size();
                }
            }
        }
    }
    total
}

fn report(name: &str, relations: Vec<&Relation>, widths: &[usize]) {
    let uncompressed: usize = relations
        .iter()
        .map(|r| r.storage_stats().cold_bytes_uncompressed)
        .sum();
    let datablocks: usize = relations.iter().map(|r| r.storage_stats().cold_bytes).sum();
    let heavy: usize = relations.iter().map(|r| heavy_size(r)).sum();
    print_table_row(
        &[
            name.to_string(),
            fmt_bytes(uncompressed),
            fmt_bytes(datablocks),
            fmt_bytes(heavy),
            format!("{:.2}x", uncompressed as f64 / datablocks as f64),
            format!("{:.2}x", uncompressed as f64 / heavy.max(1) as f64),
        ],
        widths,
    );
}

fn main() {
    let widths = [14usize, 14, 14, 16, 12, 12];
    print_table_header(
        "Table 1: database sizes (uncompressed vs Data Blocks vs heavy/PFOR baseline)",
        &[
            "data set",
            "uncompressed",
            "Data Blocks",
            "heavy (PFOR)",
            "DB ratio",
            "heavy ratio",
        ],
        &widths,
    );

    let sf = tpch_scale_factor();
    let mut tpch = TpchDb::generate(sf);
    tpch.freeze();
    report(
        &format!("TPC-H sf{sf}"),
        workloads::tpch::RELATIONS
            .iter()
            .map(|n| tpch.relation(n))
            .collect(),
        &widths,
    );

    let mut cast = imdb::generate(bench_rows(200_000), datablocks::DEFAULT_BLOCK_CAPACITY);
    cast.freeze_all();
    report("IMDB cast_info", vec![&cast], &widths);

    let mut fl = flights::generate(bench_rows(200_000), datablocks::DEFAULT_BLOCK_CAPACITY);
    fl.freeze_all();
    report("Flights", vec![&fl], &widths);

    println!("\nPaper reference (SF 100): HyPer 126 GB uncompressed vs 66 GB Data Blocks (1.9x);");
    println!("Vectorwise compressed is ~25% smaller than Data Blocks. Compare the ratio columns.");
}
