//! Table 2 / Table 4: TPC-H query runtimes under the six scan configurations —
//! JIT-compiled scan and vectorized scan (±SARG) on uncompressed storage, and Data
//! Block scans (plain, +SARG/SMA, +PSMA) on compressed storage.
//!
//! The reproduced query subset is Q1, Q3, Q6, Q12 and Q14 (the scan-dominated
//! queries the paper's storage comparison exercises most directly).

use db_bench::{
    fmt_duration, geometric_mean, print_table_header, print_table_row, threads_arg, time_median,
    tpch_scale_factor,
};
use exec::ScanConfig;
use workloads::tpch::{run_query, TpchDb, QUERY_SUBSET};

fn main() {
    let sf = tpch_scale_factor();
    let threads = threads_arg();
    println!("generating TPC-H scale factor {sf} (scan threads: {threads}) ...");
    // Uncompressed database: everything stays in hot chunks.
    let hot = TpchDb::generate(sf);
    // Compressed database: everything frozen into Data Blocks.
    let mut cold = TpchDb::generate(sf);
    cold.freeze();

    // (label, database, scan configuration)
    let configs: Vec<(&str, &TpchDb, ScanConfig)> = vec![
        (
            "JIT (uncompressed)",
            &hot,
            ScanConfig::named("jit").with_threads(threads),
        ),
        (
            "Vectorized (uncompressed)",
            &hot,
            ScanConfig::named("vectorized").with_threads(threads),
        ),
        (
            "+ SARG",
            &hot,
            ScanConfig::named("vectorized+sarg").with_threads(threads),
        ),
        (
            "Data Blocks (compressed)",
            &cold,
            ScanConfig::named("datablocks").with_threads(threads),
        ),
        (
            "+ SARG/SMA",
            &cold,
            ScanConfig::named("datablocks+sarg").with_threads(threads),
        ),
        (
            "+ PSMA",
            &cold,
            ScanConfig::named("datablocks+psma").with_threads(threads),
        ),
    ];

    let widths = [28usize, 10, 10, 10, 10, 10, 12, 12];
    let mut header = vec!["scan type"];
    header.extend_from_slice(QUERY_SUBSET);
    header.push("geo. mean");
    header.push("sum");
    print_table_header(
        "Table 2 / Table 4: TPC-H query runtimes by scan type",
        &header,
        &widths,
    );

    let mut baseline_geo = None;
    for (label, db, config) in configs {
        let mut cells = vec![label.to_string()];
        let mut durations = Vec::new();
        for query in QUERY_SUBSET {
            let (_, elapsed) = time_median(3, || run_query(db, query, config));
            durations.push(elapsed);
            cells.push(fmt_duration(elapsed));
        }
        let geo = geometric_mean(&durations);
        let sum: std::time::Duration = durations.iter().sum();
        let speedup = match baseline_geo {
            None => {
                baseline_geo = Some(geo);
                1.0
            }
            Some(base) => base.as_secs_f64() / geo.as_secs_f64(),
        };
        cells.push(format!("{} ({speedup:.2}x)", fmt_duration(geo)));
        cells.push(fmt_duration(sum));
        print_table_row(&cells, &widths);
    }
    println!(
        "\nExpected shape (paper, SF 100, 64 threads): vectorized ~= JIT; Data Blocks ~= JIT;"
    );
    println!("+SARG/SMA ~1.26x faster in the geometric mean; +PSMA adds little on uniform TPC-H;");
    println!("Q6 improves the most (6.7x in the paper), Q1 regresses slightly.");
}
