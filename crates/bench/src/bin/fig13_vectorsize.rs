//! Figure 13 (Appendix A): impact of the scan vector size on query performance —
//! geometric mean of the reproduced TPC-H query subset for vector sizes from 256 to
//! 64K records, on uncompressed storage and on Data Blocks.

use db_bench::{
    fmt_duration, geometric_mean, print_table_header, print_table_row, time_median,
    tpch_scale_factor,
};
use exec::ScanConfig;
use workloads::tpch::{run_query, TpchDb, QUERY_SUBSET};

fn geo_mean_for(db: &TpchDb, mut config: ScanConfig, vector_size: usize) -> std::time::Duration {
    config.options.vector_size = vector_size;
    let durations: Vec<_> = QUERY_SUBSET
        .iter()
        .map(|q| time_median(3, || run_query(db, q, config)).1)
        .collect();
    geometric_mean(&durations)
}

fn main() {
    let sf = tpch_scale_factor();
    let hot = TpchDb::generate(sf);
    let mut cold = TpchDb::generate(sf);
    cold.freeze();

    let widths = [12usize, 22, 20];
    print_table_header(
        "Figure 13: geometric mean of TPC-H query runtimes vs vector size",
        &["vector", "vectorized (uncomp.)", "Data Block scan"],
        &widths,
    );
    for exp in [8u32, 9, 10, 11, 12, 13, 14, 15, 16] {
        let vector = 1usize << exp;
        let uncompressed = geo_mean_for(&hot, ScanConfig::named("vectorized+sarg"), vector);
        let datablocks = geo_mean_for(&cold, ScanConfig::named("datablocks+psma"), vector);
        print_table_row(
            &[
                format!("{vector}"),
                fmt_duration(uncompressed),
                fmt_duration(datablocks),
            ],
            &widths,
        );
    }
    println!("\nExpected shape (paper): slight overhead at very small vectors (interpretation /");
    println!("function-call cost), flat optimum around 8K records, degradation once vectors");
    println!("exceed cache capacity.");
}
