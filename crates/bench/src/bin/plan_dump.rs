//! Dump the physical plans of the checked-in TPC-H IR queries
//! (`crates/workloads/queries/*.json`) and check them against the golden files
//! in `crates/workloads/queries/plans/`.
//!
//! Plans are compiled at threads = 1 (serial lowering) and threads = 4
//! (morsel-parallel lowering where the planner allows it); explicit thread
//! counts pass through [`exec::morsel::effective_threads`] verbatim, so the
//! rendered plans do not depend on the machine running the check.
//!
//! Usage:
//!   plan_dump            print every plan to stdout
//!   plan_dump --check    diff against the golden files, exit 1 on any mismatch
//!   plan_dump --update   rewrite the golden files with the current plans

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use exec::prelude::*;
use workloads::tpch::{query_ir, TpchDb};

const QUERIES: &[&str] = &["Q1", "Q6", "Q3", "Q12", "Q14"];
const THREADS: &[usize] = &[1, 4];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../workloads/queries/plans")
}

/// Render one query's plans at every pinned thread count. Only the relation
/// schemas matter for planning, so the database is generated at a tiny scale
/// and never scanned.
fn render(db: &TpchDb, name: &str) -> String {
    let mut out = String::new();
    for &threads in THREADS {
        let config = ScanConfig::default().with_threads(threads);
        let plan = query::compile(&db.db, config, query_ir(name))
            .unwrap_or_else(|err| panic!("planning {name}: {err}"));
        writeln!(out, "-- {name} threads={threads}").unwrap();
        writeln!(out, "{plan}").unwrap();
    }
    out
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let db = TpchDb::generate_with_chunk(0.001, 1_024);

    let mut failed = false;
    for &name in QUERIES {
        let rendered = render(&db, name);
        let path = golden_dir().join(format!("{}.plan", name.to_lowercase()));
        match mode.as_str() {
            "--update" => {
                std::fs::write(&path, &rendered).expect("write golden");
                println!("updated {}", path.display());
            }
            "--check" => {
                let golden = std::fs::read_to_string(&path)
                    .unwrap_or_else(|err| panic!("read golden {}: {err}", path.display()));
                if golden != rendered {
                    failed = true;
                    eprintln!(
                        "plan drift for {name} (golden {}):\n--- golden\n{golden}--- current\n{rendered}",
                        path.display()
                    );
                }
            }
            _ => print!("{rendered}"),
        }
    }

    if failed {
        eprintln!("plan goldens are stale: run `cargo run --bin plan_dump -- --update` and review the diff");
        ExitCode::FAILURE
    } else {
        if mode == "--check" {
            println!("plan goldens match ({} queries)", QUERIES.len());
        }
        ExitCode::SUCCESS
    }
}
