//! Dump the physical plans of the checked-in TPC-H IR queries
//! (`crates/workloads/queries/*.json`) and check them against the golden files
//! in `crates/workloads/queries/plans/`.
//!
//! Plans are compiled at threads = 1 (serial lowering) and threads = 4
//! (morsel-parallel lowering where the planner allows it); explicit thread
//! counts pass through [`exec::morsel::effective_threads`] verbatim, so the
//! rendered plans do not depend on the machine running the check.
//!
//! The SQL texts in `crates/workloads/queries/sql/*.sql` are pinned to the
//! same goldens: each must lower (via `query::parse_sql`) to exactly the
//! checked-in IR document, so SQL, JSON and physical plan stay one artifact.
//!
//! Usage:
//!   plan_dump            print every plan to stdout
//!   plan_dump --check    diff against the golden files, exit 1 on any mismatch
//!   plan_dump --update   rewrite the golden files (plans + IR JSON from SQL)

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use exec::prelude::*;
use query::Connect;
use workloads::tpch::{query_ir, query_sql, TpchDb};

const QUERIES: &[&str] = &["Q1", "Q6", "Q3", "Q12", "Q14"];
const THREADS: &[usize] = &[1, 4];

fn queries_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../workloads/queries")
}

fn golden_dir() -> PathBuf {
    queries_dir().join("plans")
}

/// The IR document the query's checked-in SQL lowers to, rendered canonically
/// (this is the byte content of `queries/<q>.json`).
fn lowered_ir(db: &TpchDb, name: &str) -> String {
    let ir = query::parse_sql(&db.db, query_sql(name))
        .unwrap_or_else(|err| panic!("lowering {name} SQL: {err}"));
    ir.to_pretty()
}

/// Render one query's plans at every pinned thread count. Only the relation
/// schemas matter for planning, so the database is generated at a tiny scale
/// and never scanned.
fn render(db: &TpchDb, name: &str) -> String {
    let mut out = String::new();
    for &threads in THREADS {
        let config = ScanConfig::default().with_threads(threads);
        let plan = db
            .db
            .connect()
            .with_config(config)
            .compile_ir(query_ir(name))
            .unwrap_or_else(|err| panic!("planning {name}: {err}"));
        writeln!(out, "-- {name} threads={threads}").unwrap();
        writeln!(out, "{plan}").unwrap();
    }
    out
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let db = TpchDb::generate_with_chunk(0.001, 1_024);

    let mut failed = false;
    for &name in QUERIES {
        let ir_json = lowered_ir(&db, name);
        let ir_path = queries_dir().join(format!("{}.json", name.to_lowercase()));
        let rendered = render(&db, name);
        let path = golden_dir().join(format!("{}.plan", name.to_lowercase()));
        match mode.as_str() {
            "--update" => {
                std::fs::write(&ir_path, &ir_json).expect("write IR golden");
                std::fs::write(&path, &rendered).expect("write golden");
                println!("updated {} and {}", ir_path.display(), path.display());
            }
            "--check" => {
                if query_ir(name) != ir_json {
                    failed = true;
                    eprintln!(
                        "SQL/IR drift for {name}: {} does not match the lowered SQL\n--- checked in\n{}--- lowered from SQL\n{ir_json}",
                        ir_path.display(),
                        query_ir(name)
                    );
                }
                let golden = std::fs::read_to_string(&path)
                    .unwrap_or_else(|err| panic!("read golden {}: {err}", path.display()));
                if golden != rendered {
                    failed = true;
                    eprintln!(
                        "plan drift for {name} (golden {}):\n--- golden\n{golden}--- current\n{rendered}",
                        path.display()
                    );
                }
            }
            _ => print!("{rendered}"),
        }
    }

    if failed {
        eprintln!("plan goldens are stale: run `cargo run --bin plan_dump -- --update` and review the diff");
        ExitCode::FAILURE
    } else {
        if mode == "--check" {
            println!("plan goldens match ({} queries)", QUERIES.len());
        }
        ExitCode::SUCCESS
    }
}
