//! Wire-protocol throughput benchmark: concurrent `WireClient`s racing the
//! TPC-H Q1/Q6/Q3 mix through a loopback [`query::net::WireServer`], across
//! session counts {1, 4, 16}.
//!
//! Two numbers per shape:
//!
//! * **rows/s** — lineitem rows driven through scans over wall time, summed
//!   across sessions: the same row-throughput currency as the other
//!   benchmarks (and directly comparable to `bench_service`, which runs the
//!   identical mix in-process — the gap is the protocol's cost);
//! * **time-to-first-batch** — mean latency from writing the `QUERY` frame to
//!   decoding the first `RESULT_BATCH`, the number streaming exists to keep
//!   low: a client starts consuming while the scan is still running, instead
//!   of waiting for the last morsel.
//!
//! Knobs:
//! * `TPCH_SF` — scale factor (default 0.2);
//! * `WIRE_ROUNDS` — query-mix rounds per session (default 2).

use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use db_bench::{print_table_header, print_table_row};
use exec::prelude::*;
use query::net::{ClientConfig, WireClient, WireConfig, WireServer};
use query::service::derive_spill_policy;
use query::{QueryService, ServiceConfig};
use storage::SpillPolicy;
use workloads::tpch::{query_sql, TpchDb};

const SESSION_COUNTS: &[usize] = &[1, 4, 16];
const QUERIES: &[&str] = &["Q1", "Q6", "Q3"];
const PER_SESSION_BUDGET: usize = 32 << 20;
const AUTH: &str = "bench-wire";

fn main() {
    let sf = std::env::var("TPCH_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let rounds: usize = std::env::var("WIRE_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    println!("generating TPC-H scale factor {sf} ...");
    let mut db = TpchDb::generate(sf);
    db.freeze();
    let lineitem_rows = db.db.relation("lineitem").row_count();

    // Same database regime as `bench_service`: spilled, with the block-cache
    // share derived from the (ample) admission pool.
    let relation_count = db.db.relation_names().len();
    let pool = 16 * PER_SESSION_BUDGET;
    db.db
        .enable_spill(derive_spill_policy(
            SpillPolicy::default(),
            pool,
            relation_count,
        ))
        .expect("enable spill");
    println!(
        "lineitem: {lineitem_rows} rows; {relation_count} relations spilled, \
         {} KiB cache per store",
        db.db.spill_policy().expect("policy").cache_capacity_bytes >> 10,
    );
    let db = Arc::new(db.db);

    let widths = [12usize, 10, 10, 12, 14, 12];
    print_table_header(
        "Wire protocol throughput (Q1/Q6/Q3 mix over loopback TCP)",
        &["shape", "sessions", "queries", "elapsed", "rows/s", "ttfb"],
        &widths,
    );

    let mut entries = Vec::new();
    for &sessions in SESSION_COUNTS {
        let service = Arc::new(QueryService::new(
            Arc::clone(&db),
            ScanConfig::default().with_threads(1),
            ServiceConfig {
                max_concurrent: 16,
                total_budget_bytes: pool,
            },
        ));
        let server = WireServer::serve(
            Arc::clone(&service),
            "127.0.0.1:0",
            WireConfig {
                auth_token: AUTH.into(),
                ..WireConfig::default()
            },
        )
        .expect("bind wire server");
        let addr = server.local_addr();

        let queries = sessions * rounds * QUERIES.len();
        let start = Instant::now();
        let mut handles = Vec::new();
        for k in 0..sessions {
            handles.push(std::thread::spawn(move || {
                let mut client = WireClient::connect(
                    addr,
                    &ClientConfig {
                        auth_token: AUTH.into(),
                        budget_bytes: PER_SESSION_BUDGET as u64,
                        window: 4,
                    },
                )
                .expect("handshake");
                let mut ttfb = Duration::ZERO;
                for round in 0..rounds {
                    for q in 0..QUERIES.len() {
                        let name = QUERIES[(k + round + q) % QUERIES.len()];
                        let sent = Instant::now();
                        let mut stream =
                            client.query_sql(query_sql(name)).expect("query over wire");
                        let mut first = None;
                        while let Some(batch) = stream
                            .next_batch()
                            .unwrap_or_else(|err| panic!("{name}: {err}"))
                        {
                            if first.is_none() {
                                first = Some(sent.elapsed());
                            }
                            std::hint::black_box(batch.len());
                        }
                        ttfb += first.expect("every query yields rows");
                    }
                }
                ttfb
            }));
        }
        let mut ttfb_total = Duration::ZERO;
        for handle in handles {
            ttfb_total += handle.join().expect("client thread");
        }
        let secs = start.elapsed().as_secs_f64();
        let rows_per_s = (queries * lineitem_rows) as f64 / secs;
        let ttfb_ms = ttfb_total.as_secs_f64() * 1e3 / queries as f64;
        let shape = format!("s{sessions}");
        print_table_row(
            &[
                shape.clone(),
                format!("{sessions}"),
                format!("{queries}"),
                format!("{:.2}s", secs),
                format!("{rows_per_s:.0}"),
                format!("{ttfb_ms:.2}ms"),
            ],
            &widths,
        );
        entries.push(format!(
            "    {{\"wire\": \"{shape}\", \"threads\": {sessions}, \
             \"elapsed_ms\": {:.3}, \"rows_per_s\": {rows_per_s:.0}, \
             \"ttfb_ms\": {ttfb_ms:.3}, \"queries\": {queries}}}",
            secs * 1e3,
        ));
        server.shutdown();
    }

    let json = format!(
        "{{\n  \"benchmark\": \"wire_protocol\",\n  \"scale_factor\": {sf},\n  \
         \"lineitem_rows\": {lineitem_rows},\n  \"rounds\": {rounds},\n  \
         \"hardware_threads\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        entries.join(",\n"),
    );
    let path = "BENCH_wire.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_wire.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_wire.json");
    println!("\nwrote {path}");
}
