//! Figure 11: speedup of TPC-H Q6 when each lineitem Data Block is sorted on
//! l_shipdate at freeze time, isolating the PSMA contribution.

use db_bench::{fmt_duration, print_table_header, print_table_row, time_median, tpch_scale_factor};
use exec::ScanConfig;
use workloads::tpch::{q6, TpchDb};

fn main() {
    let sf = tpch_scale_factor();
    let hot = TpchDb::generate(sf);
    let mut unsorted = TpchDb::generate(sf);
    unsorted.freeze();
    let mut sorted = TpchDb::generate(sf);
    sorted.freeze_lineitem_sorted_by_shipdate();

    let no_psma = {
        let mut c = ScanConfig::named("datablocks+sarg");
        c.options.use_psma = false;
        c
    };
    let with_psma = ScanConfig::named("datablocks+psma");

    let runs: Vec<(&str, &TpchDb, ScanConfig)> = vec![
        ("JIT (uncompressed)", &hot, ScanConfig::named("jit")),
        (
            "Vectorized (uncompressed)",
            &hot,
            ScanConfig::named("vectorized+sarg"),
        ),
        ("Data Blocks (+PSMA)", &unsorted, with_psma),
        ("+SORT (-PSMA)", &sorted, no_psma),
        ("+SORT (+PSMA)", &sorted, with_psma),
    ];

    let widths = [28usize, 12, 12, 14];
    print_table_header(
        "Figure 11: TPC-H Q6 on block-wise sorted lineitem",
        &["configuration", "runtime", "speedup", "rows scanned"],
        &widths,
    );
    let mut baseline = None;
    for (label, db, config) in runs {
        let (result, elapsed) = time_median(3, || q6(db, config));
        let base = *baseline.get_or_insert(elapsed);
        print_table_row(
            &[
                label.to_string(),
                fmt_duration(elapsed),
                format!("{:.2}x", base.as_secs_f64() / elapsed.as_secs_f64()),
                format!("{}", result.scan_stats.rows_scanned),
            ],
            &widths,
        );
    }
    println!("\nExpected shape (paper): sorting blocks on l_shipdate lets the PSMA narrow the");
    println!("scan drastically; the +SORT+PSMA bar is the tallest speedup over JIT.");
}
