//! Parallel-scan throughput benchmark: rows/s of a Q6-shaped SARGable scan over a
//! frozen TPC-H lineitem, serial vs morsel-driven parallel at 2/4/8 workers.
//!
//! Emits `BENCH_scan.json` (machine-readable, one entry per thread count) so the
//! repository's perf trajectory can be tracked run over run. Knobs:
//!
//! * `TPCH_SF` — scale factor; the default 0.2 yields ≥ 1.2 M lineitem rows.
//! * `--threads N` / `THREADS` — appends an extra thread count to the sweep.

use std::io::Write as _;

use db_bench::{fmt_duration, print_table_header, print_table_row, threads_arg, time_median};
use exec::{RelationScanner, ScanConfig};
use workloads::tpch::TpchDb;

use datablocks::scan::Restriction;
use datablocks::{date_to_days, CmpOp};

fn main() {
    let sf = std::env::var("TPCH_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    println!("generating TPC-H scale factor {sf} ...");
    let mut db = TpchDb::generate(sf);
    db.freeze();
    let lineitem = db.relation("lineitem");
    let s = lineitem.schema();
    let rows = lineitem.row_count();
    println!(
        "lineitem: {rows} rows, {} blocks",
        lineitem.cold_block_count()
    );

    // Two scan shapes: the selective Q6 restrictions (SMA skipping + PSMA narrowing
    // do most of the work) and an unselective discount scan (every block is touched,
    // so thread scaling acts on real find/unpack work).
    let q6 = vec![
        Restriction::between(
            s.idx("l_shipdate"),
            date_to_days(1994, 1, 1),
            date_to_days(1995, 1, 1) - 1,
        ),
        Restriction::between(s.idx("l_discount"), 5i64, 7i64),
        Restriction::cmp(s.idx("l_quantity"), CmpOp::Lt, 24i64),
    ];
    let unselective = vec![Restriction::cmp(s.idx("l_discount"), CmpOp::Ge, 1i64)];
    let scans: [(&str, &[Restriction]); 2] = [("tpch_q6", &q6), ("full_discount", &unselective)];
    let projection = vec![s.idx("l_extendedprice"), s.idx("l_discount")];

    // `0 = all hardware threads` is resolved before recording, so BENCH_scan.json
    // always names the actual worker count.
    let mut sweep = vec![1usize, 2, 4, 8];
    let extra = exec::morsel::effective_threads(threads_arg());
    if !sweep.contains(&extra) {
        sweep.push(extra);
    }

    let widths = [16usize, 10, 12, 14, 10, 10];
    print_table_header(
        "Parallel lineitem scan",
        &["scan", "threads", "median", "rows/s", "matched", "speedup"],
        &widths,
    );

    let mut entries = Vec::new();
    for (scan_name, restrictions) in scans {
        let mut serial_secs = None;
        for &threads in &sweep {
            let config = ScanConfig::default().with_threads(threads);
            let (matched, elapsed) = time_median(3, || {
                let mut scanner = RelationScanner::new(
                    lineitem,
                    projection.clone(),
                    restrictions.to_vec(),
                    config,
                );
                let mut matched = 0usize;
                while let Some(batch) = scanner.next_batch() {
                    matched += batch.len();
                }
                matched
            });
            let secs = elapsed.as_secs_f64();
            let rows_per_s = rows as f64 / secs;
            let base = *serial_secs.get_or_insert(secs);
            let speedup = base / secs;
            print_table_row(
                &[
                    scan_name.to_string(),
                    format!("{threads}"),
                    fmt_duration(elapsed),
                    format!("{:.2e}", rows_per_s),
                    format!("{matched}"),
                    format!("{speedup:.2}x"),
                ],
                &widths,
            );
            entries.push(format!(
                "    {{\"scan\": \"{scan_name}\", \"threads\": {threads}, \
                 \"elapsed_ms\": {:.3}, \"rows_per_s\": {:.0}, \"rows_matched\": {matched}, \
                 \"speedup_vs_serial\": {speedup:.3}}}",
                secs * 1e3,
                rows_per_s,
            ));
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"parallel_scan\",\n  \"relation\": \"lineitem\",\n  \
         \"scale_factor\": {sf},\n  \"rows\": {rows},\n  \"hardware_threads\": {},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        entries.join(",\n"),
    );
    let path = "BENCH_scan.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_scan.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_scan.json");
    println!("\nwrote {path}");
}
