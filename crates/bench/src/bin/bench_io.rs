//! Block-store I/O benchmark: rows/s of a Q6-shaped lineitem scan when the frozen
//! blocks live on secondary storage, swept over block-cache capacities from
//! "everything fits" down to cache-thrashing, against the all-in-memory baseline.
//!
//! For every capacity two numbers are measured: the **cold** scan (cache dropped
//! first, every non-pruned block read from disk) and the **warm** scan (median of
//! re-runs against whatever the capacity lets the cache retain). Cache hit/miss and
//! disk-read counters from the store are recorded alongside, so the trajectory log
//! distinguishes "faster because cached" from "faster because pruned".
//!
//! Pin accounting: scans pin each cold block only for its morsel — the streaming
//! parallel scan releases a pin as soon as the morsel's batches are handed to the
//! channel, so at most `threads` pins are live at once. Each block is still one
//! morsel, pinned (and therefore read) at most once per scan, which keeps
//! `block_reads` exact for the cold phase: it equals the non-pruned block count
//! whatever the thread count or channel capacity
//! (`tests/spill_differential.rs` asserts this).
//!
//! Beyond the cache-capacity sweep, three durability phases measure the PR-5
//! block-store hardening:
//!
//! * **readahead** — the same cold scan with [`exec::ScanConfig::with_readahead`]
//!   staging the next blocks of the scan order on the store's prefetch thread;
//!   the JSON records demand `block_reads` vs `prefetch_reads` separately.
//! * **reopen** — the relation is spilled to a named file, closed (manifest
//!   checkpoint), reopened via `Relation::reopen_spilled` (directory replayed
//!   from the manifest, zero payload I/O), and cold-scanned.
//! * **compact** — one row per block is deleted (rewriting every block, i.e.
//!   ~50% garbage), the store is compacted into a fresh generation file, and the
//!   compacted store is cold-scanned.
//!
//! Emits `BENCH_io.json` (one entry per configuration, folded into
//! `BENCH_trajectory.jsonl` by `bench_trajectory`). Knobs:
//!
//! * `TPCH_SF` — scale factor; the default 0.2 yields ≥ 1.2 M lineitem rows.
//! * `--threads N` / `THREADS` — appends an extra thread count to the sweep.

use std::io::Write as _;

use db_bench::{fmt_bytes, fmt_duration, print_table_header, print_table_row, threads_arg};
use exec::{RelationScanner, ScanConfig};
use storage::{BlockStore, Relation, RowId, Segment, SpillPolicy};
use workloads::tpch::TpchDb;

use datablocks::scan::Restriction;
use datablocks::{date_to_days, CmpOp};

fn main() {
    let sf = std::env::var("TPCH_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    println!("generating TPC-H scale factor {sf} ...");
    let mut db = TpchDb::generate(sf);
    db.freeze();
    let lineitem = db.relation("lineitem");
    let s = lineitem.schema();
    let rows = lineitem.row_count();
    let cold_bytes = lineitem.storage_stats().cold_bytes;
    println!(
        "lineitem: {rows} rows, {} blocks, {} cold",
        lineitem.cold_block_count(),
        fmt_bytes(cold_bytes)
    );

    let restrictions = vec![
        Restriction::between(
            s.idx("l_shipdate"),
            date_to_days(1994, 1, 1),
            date_to_days(1995, 1, 1) - 1,
        ),
        Restriction::between(s.idx("l_discount"), 5i64, 7i64),
        Restriction::cmp(s.idx("l_quantity"), CmpOp::Lt, 24i64),
    ];
    let projection = vec![s.idx("l_extendedprice"), s.idx("l_discount")];

    let mut sweep = vec![1usize, 4];
    let extra = exec::morsel::effective_threads(threads_arg());
    if !sweep.contains(&extra) {
        sweep.push(extra);
    }

    // Cache capacities as fractions of the frozen data: everything resident, half,
    // a tenth (thrashing). `usize::MAX` is the unbounded control.
    let capacities: [(&str, usize); 4] = [
        ("cap_inf", usize::MAX),
        ("cap_100pct", cold_bytes),
        ("cap_50pct", cold_bytes / 2),
        ("cap_10pct", cold_bytes / 10),
    ];

    let widths = [14usize, 10, 8, 12, 12, 10, 10, 10];
    print_table_header(
        "Cold-block store scan (Q6 restrictions)",
        &[
            "config", "threads", "phase", "median", "rows/s", "reads", "hits", "misses",
        ],
        &widths,
    );

    let mut entries = Vec::new();
    // Non-measurement JSON lines (reopen/compaction metadata); merged into the
    // output after the phases, because `emit` holds `entries` borrowed.
    let mut meta_entries: Vec<String> = Vec::new();
    #[allow(clippy::too_many_arguments)]
    let mut emit = |config_name: &str,
                    threads: usize,
                    phase: &str,
                    secs: f64,
                    capacity: usize,
                    reads: u64,
                    hits: u64,
                    misses: u64,
                    prefetch_reads: u64| {
        let rows_per_s = rows as f64 / secs;
        print_table_row(
            &[
                config_name.to_string(),
                format!("{threads}"),
                phase.to_string(),
                fmt_duration(std::time::Duration::from_secs_f64(secs)),
                format!("{rows_per_s:.2e}"),
                format!("{reads}"),
                format!("{hits}"),
                format!("{misses}"),
            ],
            &widths,
        );
        let capacity_field = if capacity == usize::MAX {
            "null".to_string()
        } else {
            format!("{capacity}")
        };
        entries.push(format!(
            "    {{\"io\": \"q6_{config_name}_{phase}\", \"threads\": {threads}, \
             \"cache_capacity_bytes\": {capacity_field}, \"elapsed_ms\": {:.3}, \
             \"rows_per_s\": {rows_per_s:.0}, \"block_reads\": {reads}, \
             \"cache_hits\": {hits}, \"cache_misses\": {misses}, \
             \"prefetch_reads\": {prefetch_reads}}}",
            secs * 1e3,
        ));
    };

    let run_scan = |relation: &Relation, config: ScanConfig| -> f64 {
        let start = std::time::Instant::now();
        let mut scanner =
            RelationScanner::new(relation, projection.clone(), restrictions.clone(), config);
        let mut matched = 0usize;
        while let Some(batch) = scanner.next_batch() {
            matched += batch.len();
        }
        assert!(matched > 0, "Q6 restrictions must select rows");
        start.elapsed().as_secs_f64()
    };

    // All-in-memory baseline (no store attached).
    for &threads in &sweep {
        let secs = run_scan(lineitem, ScanConfig::default().with_threads(threads));
        emit("memory", threads, "warm", secs, usize::MAX, 0, 0, 0, 0);
    }

    for (config_name, capacity) in capacities {
        // Spill a clone per capacity: resident blocks are Arc-shared, so the clone
        // itself is cheap; enable_spill writes the frames out once.
        let mut spilled = lineitem.clone();
        spilled
            .enable_spill(&SpillPolicy::with_cache_capacity(capacity))
            .expect("enable spill");
        let store = spilled.spill_store().expect("store attached").clone();

        for &threads in &sweep {
            // cold: drop the cache, then one timed scan paying all disk reads
            store.clear_cache();
            store.reset_stats();
            let secs = run_scan(&spilled, ScanConfig::default().with_threads(threads));
            let io = store.stats();
            emit(
                config_name,
                threads,
                "cold",
                secs,
                capacity,
                io.block_reads,
                io.cache_hits,
                io.cache_misses,
                io.prefetch_reads,
            );

            // warm: median of three scans against the steady-state cache. The
            // counters are reset before the final run so they describe exactly
            // one steady-state scan, not the sum of all three.
            let mut times: Vec<f64> = Vec::new();
            for i in 0..3 {
                if i == 2 {
                    store.reset_stats();
                }
                times.push(run_scan(
                    &spilled,
                    ScanConfig::default().with_threads(threads),
                ));
            }
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let io = store.stats();
            emit(
                config_name,
                threads,
                "warm",
                times[times.len() / 2],
                capacity,
                io.block_reads,
                io.cache_hits,
                io.cache_misses,
                io.prefetch_reads,
            );
        }
    }

    // ---------------------------------------------------------------- readahead
    // Cold scan with the next READAHEAD blocks staged on the store's prefetch
    // thread ahead of the pinning morsel. block_reads + prefetch_reads together
    // cover every block (a demand read racing an in-flight prefetch can read a
    // block twice — counted under both, honestly).
    const READAHEAD: usize = 4;
    {
        let mut spilled = lineitem.clone();
        spilled
            .enable_spill(&SpillPolicy::with_cache_capacity(cold_bytes))
            .expect("enable spill");
        let store = spilled.spill_store().expect("store attached").clone();
        for &threads in &sweep {
            store.clear_cache();
            store.reset_stats();
            let secs = run_scan(
                &spilled,
                ScanConfig::default()
                    .with_threads(threads)
                    .with_readahead(READAHEAD),
            );
            let io = store.stats();
            emit(
                "readahead",
                threads,
                "cold",
                secs,
                cold_bytes,
                io.block_reads,
                io.cache_hits,
                io.cache_misses,
                io.prefetch_reads,
            );
        }
    }

    // ------------------------------------------------------------------- reopen
    // Spill to a named file, close (manifest checkpoint), reopen from disk: the
    // directory is replayed from the manifest without touching block payloads,
    // then the reopened relation is cold-scanned.
    {
        let path = std::env::temp_dir().join(format!("bench-io-reopen-{}.dbs", std::process::id()));
        let policy = SpillPolicy {
            cache_capacity_bytes: cold_bytes,
            path: Some(path.clone()),
            ..SpillPolicy::default()
        };
        {
            let mut spilled = lineitem.clone();
            spilled.enable_spill(&policy).expect("enable spill");
        } // drop = clean close: the manifest is checkpointed
        let reopen_start = std::time::Instant::now();
        let reopened = Relation::reopen_spilled("lineitem", lineitem.schema().clone(), &policy)
            .expect("reopen spilled relation");
        let reopen_secs = reopen_start.elapsed().as_secs_f64();
        let store = reopened.spill_store().expect("store attached").clone();
        println!(
            "reopen: directory of {} blocks replayed in {} ({} payload reads)",
            store.block_count(),
            fmt_duration(std::time::Duration::from_secs_f64(reopen_secs)),
            store.stats().block_reads,
        );
        for &threads in &sweep {
            store.clear_cache();
            store.reset_stats();
            let secs = run_scan(&reopened, ScanConfig::default().with_threads(threads));
            let io = store.stats();
            emit(
                "reopen",
                threads,
                "cold",
                secs,
                cold_bytes,
                io.block_reads,
                io.cache_hits,
                io.cache_misses,
                io.prefetch_reads,
            );
        }
        meta_entries.push(format!(
            "    {{\"io_meta\": \"reopen\", \"blocks\": {}, \"reopen_ms\": {:.3}}}",
            store.block_count(),
            reopen_secs * 1e3,
        ));
        drop(reopened);
        // tidy the named spill file and its manifest/generation siblings
        let _ = BlockStore::remove_files(&path);
    }

    // ------------------------------------------------------------------ compact
    // Delete one row per block (rewriting every block: ~50% of the file becomes
    // dead frames), compact into a fresh generation, then cold-scan the
    // compacted store.
    {
        let mut spilled = lineitem.clone();
        spilled
            .enable_spill(&SpillPolicy::with_cache_capacity(cold_bytes))
            .expect("enable spill");
        let store = spilled.spill_store().expect("store attached").clone();
        store.set_garbage_threshold(1.0); // hold garbage for one explicit pass
        let blocks = spilled.cold_block_count();
        for block in 0..blocks {
            spilled.delete(RowId {
                segment: Segment::Cold(block),
                row: 0,
            });
        }
        let dead_before = store.dead_bytes();
        let compact_start = std::time::Instant::now();
        store.compact().expect("compact store");
        let compact_secs = compact_start.elapsed().as_secs_f64();
        let io = store.stats();
        println!(
            "compact: reclaimed {} across {} frames in {} ({} pinned skipped)",
            fmt_bytes(dead_before as usize),
            io.compacted_frames,
            fmt_duration(std::time::Duration::from_secs_f64(compact_secs)),
            io.compaction_pinned_skipped,
        );
        meta_entries.push(format!(
            "    {{\"io_meta\": \"compact\", \"compacted_frames\": {}, \
             \"compacted_bytes\": {}, \"dead_bytes_before\": {dead_before}, \
             \"compact_ms\": {:.3}}}",
            io.compacted_frames,
            io.compacted_bytes,
            compact_secs * 1e3,
        ));
        for &threads in &sweep {
            store.clear_cache();
            store.reset_stats();
            let secs = run_scan(&spilled, ScanConfig::default().with_threads(threads));
            let io = store.stats();
            emit(
                "compact",
                threads,
                "cold",
                secs,
                cold_bytes,
                io.block_reads,
                io.cache_hits,
                io.cache_misses,
                io.prefetch_reads,
            );
        }
    }

    // --------------------------------------------------------------- durability
    // Spill (append) and delete (rewrite) throughput under each durability mode:
    // what the fsync barriers of `Durability::Sync` cost on the write path, and
    // how much of it group commit buys back. One manifest record per operation —
    // `sync_gc1` fsyncs every record, `sync_gc64` one per 64.
    {
        use storage::blockstore::Durability;
        let modes: [(&str, Durability); 3] = [
            ("buffered", Durability::Buffered),
            ("sync_gc1", Durability::Sync { group_commit: 1 }),
            ("sync_gc64", Durability::Sync { group_commit: 64 }),
        ];
        for (mode, durability) in modes {
            let path = std::env::temp_dir().join(format!(
                "bench-io-durability-{mode}-{}.dbs",
                std::process::id()
            ));
            let policy = SpillPolicy {
                cache_capacity_bytes: cold_bytes,
                path: Some(path.clone()),
                durability,
                ..SpillPolicy::default()
            };
            let mut spilled = lineitem.clone();
            let start = std::time::Instant::now();
            spilled.enable_spill(&policy).expect("enable spill");
            let spill_secs = start.elapsed().as_secs_f64();
            let store = spilled.spill_store().expect("store attached").clone();
            store.set_garbage_threshold(1.0); // measure rewrites, not compaction
            let blocks = spilled.cold_block_count();
            let start = std::time::Instant::now();
            for block in 0..blocks {
                spilled.delete(RowId {
                    segment: Segment::Cold(block),
                    row: 0,
                });
            }
            let rewrite_secs = start.elapsed().as_secs_f64();
            println!(
                "durability {mode}: spilled {} in {}, {blocks} rewrites in {} ({:.0} rewrites/s)",
                fmt_bytes(cold_bytes),
                fmt_duration(std::time::Duration::from_secs_f64(spill_secs)),
                fmt_duration(std::time::Duration::from_secs_f64(rewrite_secs)),
                blocks as f64 / rewrite_secs,
            );
            entries.push(format!(
                "    {{\"io\": \"durability_{mode}_spill\", \"threads\": 1, \
                 \"elapsed_ms\": {:.3}, \"rows_per_s\": {:.0}, \"blocks\": {blocks}}}",
                spill_secs * 1e3,
                rows as f64 / spill_secs,
            ));
            entries.push(format!(
                "    {{\"io\": \"durability_{mode}_rewrite\", \"threads\": 1, \
                 \"elapsed_ms\": {:.3}, \"rows_per_s\": {:.0}, \"rewrites\": {blocks}}}",
                rewrite_secs * 1e3,
                blocks as f64 / rewrite_secs,
            ));
            drop(spilled);
            let _ = BlockStore::remove_files(&path);
        }
    }

    entries.extend(meta_entries);
    let json = format!(
        "{{\n  \"benchmark\": \"blockstore_io\",\n  \"relation\": \"lineitem\",\n  \
         \"scale_factor\": {sf},\n  \"rows\": {rows},\n  \"cold_bytes\": {cold_bytes},\n  \
         \"hardware_threads\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        entries.join(",\n"),
    );
    let path = "BENCH_io.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_io.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_io.json");
    println!("\nwrote {path}");
}
