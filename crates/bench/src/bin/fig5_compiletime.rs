//! Figure 5: compile time of a query plan with a scan of 8 attributes as the number
//! of storage layout combinations grows, for the tuple-at-a-time JIT scan vs the
//! pre-compiled interpreted vectorized scan.
//!
//! LLVM is not embedded; the JIT cost comes from the calibrated cost model plus the
//! measured cost of actually generating one specialised scan path per layout (see
//! exec::jit and DESIGN.md).

use db_bench::{fmt_duration, print_table_header, print_table_row};
use exec::jit::{specialize_scan_paths, synthetic_layouts, JitCostModel, ScanCodegen};

fn main() {
    let attrs = 8;
    let model = JitCostModel::default();
    let widths = [12usize, 16, 18, 20];
    print_table_header(
        "Figure 5: compile time vs storage layout combinations (8 attributes)",
        &[
            "layouts",
            "JIT (model)",
            "vectorized (model)",
            "path-gen (measured)",
        ],
        &widths,
    );
    for exp in 0..=12u32 {
        let layouts = 1usize << exp;
        let jit = model.compile_time(ScanCodegen::JitPerLayout, layouts, attrs);
        let vectorized = model.compile_time(ScanCodegen::VectorizedInterpreted, layouts, attrs);
        let generated = specialize_scan_paths(&synthetic_layouts(layouts, attrs));
        print_table_row(
            &[
                format!("{layouts}"),
                fmt_duration(jit),
                fmt_duration(vectorized),
                fmt_duration(generated.generation_time),
            ],
            &widths,
        );
    }
    println!("\nExpected shape (paper): JIT compile time grows linearly with the number of");
    println!("layout combinations (10ms -> ~10s at 4096), the vectorized scan stays flat.");
}
