//! Figure 12: byte-addressable Data Blocks vs horizontal bit-packing.
//!
//! (a) cost of evaluating a SARGable between-predicate at varying selectivities,
//! (b) cost of unpacking the matching tuples of three attributes.
//! The setup follows Section 5.4: three columns of 2^16 values, domains chosen one
//! bit past the 1-/2-byte truncation limits (worst case for Data Blocks).

use bitpack::BitPackedColumn;
use datablocks::builder::{freeze, int_column};
use datablocks::{scan_collect, Restriction, ScanOptions};
use db_bench::{cycles_per_element, print_table_header, print_table_row, time_median};

fn main() {
    let n = 1usize << 16;
    // domains: A, B in [0, 2^16] (17 bits), C in [0, 2^8] (9 bits)
    let gen = |seed: u64, modulus: u64| -> Vec<i64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % modulus) as i64
            })
            .collect()
    };
    let a = gen(1, (1 << 16) + 1);
    let b = gen(2, (1 << 16) + 1);
    let c = gen(3, (1 << 8) + 1);

    // Data Block over the three columns (forced to 4-, 4- and 2-byte codes).
    let block = freeze(&[
        int_column(a.clone()),
        int_column(b.clone()),
        int_column(c.clone()),
    ]);
    // Horizontal bit-packed columns at 17 / 17 / 9 bits.
    let pa = BitPackedColumn::pack(&a.iter().map(|&v| v as u32).collect::<Vec<_>>(), 17);
    let pb = BitPackedColumn::pack(&b.iter().map(|&v| v as u32).collect::<Vec<_>>(), 17);
    let pc = BitPackedColumn::pack(&c.iter().map(|&v| v as u32).collect::<Vec<_>>(), 9);

    let widths = [12usize, 14, 16, 20];
    print_table_header(
        "Figure 12(a): predicate evaluation cost (cycles per tuple)",
        &[
            "selectivity",
            "Data Blocks",
            "bit-packed",
            "bit-packed+table",
        ],
        &widths,
    );
    for sel in [0u64, 10, 25, 50, 75, 100] {
        let hi = ((1u64 << 16) * sel / 100) as i64;
        let restriction = [Restriction::between(0, 0i64, hi)];
        let options = ScanOptions {
            use_psma: false,
            use_sma: false,
            ..ScanOptions::default()
        };
        let (_, dur_db) = time_median(5, || scan_collect(&block, &restriction, options));
        let mut positions = Vec::new();
        let (_, dur_branchy) = time_median(5, || {
            pa.scan_between_branchy(0, hi.max(0) as u32, &mut positions)
        });
        let (_, dur_robust) = time_median(5, || {
            pa.scan_between_robust(0, hi.max(0) as u32, &mut positions)
        });
        print_table_row(
            &[
                format!("{sel}%"),
                format!("{:.2}", cycles_per_element(dur_db, n)),
                format!("{:.2}", cycles_per_element(dur_branchy, n)),
                format!("{:.2}", cycles_per_element(dur_robust, n)),
            ],
            &widths,
        );
    }

    print_table_header(
        "Figure 12(b): unpacking cost for 3 attributes (cycles per matching tuple)",
        &[
            "selectivity",
            "Data Blocks",
            "bit-packed (pos)",
            "bit-packed (all)",
        ],
        &widths,
    );
    for sel in [1u64, 10, 25, 50, 75, 100] {
        let hi = ((1u64 << 16) * sel / 100) as i64;
        let restriction = [Restriction::between(0, 0i64, hi)];
        let options = ScanOptions {
            use_psma: false,
            use_sma: false,
            ..ScanOptions::default()
        };
        let matches = scan_collect(&block, &restriction, options);
        let count = matches.len().max(1);

        // Data Blocks: positional unpack of the three columns
        let (_, dur_db) = time_median(5, || {
            let mut out = [
                datablocks::Column::new(datablocks::DataType::Int),
                datablocks::Column::new(datablocks::DataType::Int),
                datablocks::Column::new(datablocks::DataType::Int),
            ];
            datablocks::unpack::unpack_columns(&block, &[0, 1, 2], &matches, &mut out);
            out[0].len()
        });
        // bit-packed positional access
        let (_, dur_pos) = time_median(5, || {
            let mut o = Vec::new();
            pa.unpack_positions(&matches, &mut o);
            pb.unpack_positions(&matches, &mut o);
            pc.unpack_positions(&matches, &mut o);
            o.len()
        });
        // bit-packed unpack-all-and-filter
        let (_, dur_all) = time_median(5, || {
            let mut all = Vec::new();
            let mut filtered = 0usize;
            for packed in [&pa, &pb, &pc] {
                packed.unpack_all(&mut all);
                for &m in &matches {
                    filtered += all[m as usize] as usize & 1;
                }
            }
            filtered
        });
        print_table_row(
            &[
                format!("{sel}%"),
                format!("{:.1}", cycles_per_element(dur_db, count)),
                format!("{:.1}", cycles_per_element(dur_pos, count)),
                format!("{:.1}", cycles_per_element(dur_all, count)),
            ],
            &widths,
        );
    }
    println!("\nExpected shape (paper): Data Blocks are selectivity-robust and ~1.8x faster at");
    println!("predicate evaluation; positional bit-packed unpacking is competitive only below");
    println!("~20% selectivity, unpack-all wins above that, and Data Blocks win almost always.");
}
