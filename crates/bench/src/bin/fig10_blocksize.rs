//! Figure 10: compression ratio as a function of the number of records per Data
//! Block (2^11 … 2^16) for TPC-H, IMDB cast_info and the flights data set.

use db_bench::{bench_rows, print_table_header, print_table_row, tpch_scale_factor};
use workloads::{flights, imdb, TpchDb};

fn tpch_ratio(sf: f64, block_size: usize) -> f64 {
    let mut db = TpchDb::generate_with_chunk(sf, block_size);
    db.freeze();
    let (mut compressed, mut uncompressed) = (0usize, 0usize);
    for name in workloads::tpch::RELATIONS {
        let stats = db.relation(name).storage_stats();
        compressed += stats.cold_bytes;
        uncompressed += stats.cold_bytes_uncompressed;
    }
    uncompressed as f64 / compressed as f64
}

fn relation_ratio(mut relation: storage::Relation) -> f64 {
    relation.freeze_all();
    relation.storage_stats().compression_ratio()
}

fn main() {
    let widths = [10usize, 10, 10, 10];
    print_table_header(
        "Figure 10: compression ratio vs records per Data Block",
        &["records", "TPC-H", "IMDB", "Flights"],
        &widths,
    );
    let sf = tpch_scale_factor();
    let rows = bench_rows(150_000);
    for exp in [11u32, 12, 13, 14, 15, 16] {
        let block = 1usize << exp;
        let tpch = tpch_ratio(sf, block);
        let imdb_ratio = relation_ratio(imdb::generate(rows, block));
        let flights_ratio = relation_ratio(flights::generate(rows, block));
        print_table_row(
            &[
                format!("{block}"),
                format!("{tpch:.2}x"),
                format!("{imdb_ratio:.2}x"),
                format!("{flights_ratio:.2}x"),
            ],
            &widths,
        );
    }
    println!("\nExpected shape (paper): ratios grow with block size and flatten around 2^16;");
    println!("small blocks pay proportionally more metadata/dictionary overhead.");
}
