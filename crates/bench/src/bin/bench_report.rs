//! Render the per-push benchmark trajectory (`BENCH_trajectory.jsonl`) into a
//! human-readable report: one markdown table per benchmark with the rows/s of
//! every shape — latest value, recent deltas, all-time best — plus an inline
//! unicode sparkline of the whole series, so a perf cliff (or win) is visible at
//! a glance on the workflow run page.
//!
//! Output goes three places:
//!
//! * **stdout** — so a local run (or the CI log) shows the report;
//! * **`BENCH_report.md`** — uploaded as a CI artifact next to the raw jsonl;
//! * **`$GITHUB_STEP_SUMMARY`** — when set (inside a workflow step), the report
//!   is appended to the run's summary page. This is the CI trajectory
//!   visualisation: every push to main renders the accumulated history.
//!
//! The sparkline covers up to the last [`SPARK_POINTS`] entries per shape (the
//! full history stays in the jsonl artifact). Entries recorded at different
//! thread counts are rendered in the same series but the table lists the thread
//! count of the *latest* entry — CI runners are homogeneous in practice, and
//! the gate (not this report) is what skips thread-mismatched comparisons.

use std::fmt::Write as _;
use std::io::Write as _;

use db_bench::{parse_trajectory_line, sparkline, BENCHMARK_FILES};

const TRAJECTORY_PATH: &str = "BENCH_trajectory.jsonl";
const REPORT_PATH: &str = "BENCH_report.md";

/// Sparkline width: how many of the most recent points each shape renders.
const SPARK_POINTS: usize = 40;

fn human(rows_per_s: f64) -> String {
    if rows_per_s >= 1e9 {
        format!("{:.2}G", rows_per_s / 1e9)
    } else if rows_per_s >= 1e6 {
        format!("{:.2}M", rows_per_s / 1e6)
    } else if rows_per_s >= 1e3 {
        format!("{:.1}k", rows_per_s / 1e3)
    } else {
        format!("{rows_per_s:.0}")
    }
}

fn main() {
    let trajectory = match std::fs::read_to_string(TRAJECTORY_PATH) {
        Ok(text) => text,
        Err(err) => {
            // A report with nothing to draw is not an error in CI's first run,
            // but say so loudly rather than writing an empty artifact silently.
            eprintln!("note: cannot read {TRAJECTORY_PATH} ({err}) — nothing to report");
            return;
        }
    };
    let history: Vec<(String, String, usize, f64)> = trajectory
        .lines()
        .filter_map(parse_trajectory_line)
        .collect();
    if history.is_empty() {
        eprintln!("note: {TRAJECTORY_PATH} holds no parsable points — nothing to report");
        return;
    }

    let mut report = String::from("## Benchmark trajectory\n");
    let _ = writeln!(
        report,
        "\n{} data points across the history; sparklines cover the last {SPARK_POINTS} \
         per shape (▁ = series min, █ = series max; rows/s, higher is better).\n",
        history.len()
    );

    // Render benchmarks in the canonical CI order, shapes in first-seen order.
    for &(benchmark, _) in BENCHMARK_FILES {
        let mut shapes: Vec<&str> = Vec::new();
        for (b, shape, _, _) in &history {
            if b == benchmark && !shapes.contains(&shape.as_str()) {
                shapes.push(shape);
            }
        }
        if shapes.is_empty() {
            continue;
        }
        let _ = writeln!(
            report,
            "### {benchmark}\n\n| shape | threads | points | latest rows/s | vs prev | best | trend |\n\
             |---|---:|---:|---:|---:|---:|---|"
        );
        for shape in shapes {
            let series: Vec<f64> = history
                .iter()
                .filter(|(b, s, _, _)| b == benchmark && s == shape)
                .map(|(_, _, _, v)| *v)
                .collect();
            let threads = history
                .iter()
                .rev()
                .find(|(b, s, _, _)| b == benchmark && s == shape)
                .map(|(_, _, t, _)| *t)
                .unwrap_or(1);
            let latest = *series.last().expect("non-empty series");
            let best = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let vs_prev = if series.len() >= 2 {
                let prev = series[series.len() - 2];
                if prev > 0.0 {
                    format!("{:+.1}%", (latest / prev - 1.0) * 100.0)
                } else {
                    "—".to_string()
                }
            } else {
                "—".to_string()
            };
            let tail = &series[series.len().saturating_sub(SPARK_POINTS)..];
            let _ = writeln!(
                report,
                "| {shape} | {threads} | {} | {} | {vs_prev} | {} | `{}` |",
                series.len(),
                human(latest),
                human(best),
                sparkline(tail),
            );
        }
        report.push('\n');
    }

    print!("{report}");
    if let Err(err) = std::fs::write(REPORT_PATH, &report) {
        eprintln!("error: cannot write {REPORT_PATH}: {err}");
        std::process::exit(1);
    }
    println!("wrote {REPORT_PATH}");
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut file) => {
                let _ = file.write_all(report.as_bytes());
                println!("appended report to step summary");
            }
            Err(err) => eprintln!("note: cannot append to GITHUB_STEP_SUMMARY ({err})"),
        }
    }
}
