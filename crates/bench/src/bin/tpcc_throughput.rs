//! Section 5.3: TPC-C transaction throughput.
//!
//! Experiment 1: the full mix keeps running while old neworder records are frozen
//! into Data Blocks. Experiment 2: the read-only transactions (order-status,
//! stock-level) over a completely hot vs completely frozen database.

use db_bench::{print_table_header, print_table_row};
use workloads::TpccDb;

fn main() {
    let warehouses: i64 = std::env::var("TPCC_WAREHOUSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let write_txns: usize = std::env::var("TPCC_TXNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let widths = [44usize, 18];

    // Experiment 1: new-order throughput, hot vs old-neworders-frozen.
    print_table_header(
        "TPC-C: new-order throughput (5 warehouses)",
        &["configuration", "txns/second"],
        &widths,
    );
    let mut hot = TpccDb::generate(warehouses);
    let start = std::time::Instant::now();
    for _ in 0..write_txns {
        hot.new_order();
    }
    let hot_tps = write_txns as f64 / start.elapsed().as_secs_f64();
    print_table_row(
        &["uncompressed".to_string(), format!("{hot_tps:.0}")],
        &widths,
    );

    let mut frozen = TpccDb::generate(warehouses);
    for _ in 0..write_txns {
        frozen.new_order();
    }
    frozen.freeze_old_neworders();
    let start = std::time::Instant::now();
    for _ in 0..write_txns {
        frozen.new_order();
    }
    let frozen_tps = write_txns as f64 / start.elapsed().as_secs_f64();
    print_table_row(
        &[
            "cold neworder records in Data Blocks".to_string(),
            format!("{frozen_tps:.0}"),
        ],
        &widths,
    );

    // Experiment 2: read-only transactions, fully hot vs fully frozen.
    print_table_header(
        "TPC-C: read-only transactions (order-status + stock-level)",
        &["configuration", "txns/second"],
        &widths,
    );
    let read_txns = write_txns / 4;
    let run_reads = |db: &mut TpccDb| {
        let start = std::time::Instant::now();
        for i in 0..read_txns {
            if i % 2 == 0 {
                std::hint::black_box(db.order_status());
            } else {
                std::hint::black_box(db.stock_level());
            }
        }
        read_txns as f64 / start.elapsed().as_secs_f64()
    };
    let hot_read_tps = run_reads(&mut hot);
    print_table_row(
        &["uncompressed".to_string(), format!("{hot_read_tps:.0}")],
        &widths,
    );
    frozen.freeze_everything();
    let frozen_read_tps = run_reads(&mut frozen);
    print_table_row(
        &[
            "entire database in Data Blocks".to_string(),
            format!("{frozen_read_tps:.0}"),
        ],
        &widths,
    );

    println!("\nExpected shape (paper): freezing old neworder records costs <1% of write");
    println!("throughput (89,229 vs 88,699 tps); the read-only mix loses ~9% when the whole");
    println!("database is frozen (119,889 vs 109,649 tps).");
    println!(
        "\nMeasured deltas: writes {:.1}% , reads {:.1}%",
        (1.0 - frozen_tps / hot_tps) * 100.0,
        (1.0 - frozen_read_tps / hot_read_tps) * 100.0
    );
}
