//! Deterministic IR fuzzing driver: generate seeded catalogs and well-typed
//! plans, and check each one differentially against the row-at-a-time
//! reference interpreter across threads {1, 4} × {memory, thrash-cache spill}
//! (see `query::fuzz`).
//!
//! Usage:
//!   fuzz_ir [--seed S] [--count N]   check seeds S .. S+N-1 (default 1..=100)
//!   fuzz_ir --repro FILE             replay a minimized repro document
//!
//! On a failure the harness shrinks the case and writes a self-contained
//! repro (`FUZZ_repro_<seed>.json`: seed + IR + catalog dump), prints the
//! seed loudly, and exits non-zero. Reproduce with either
//! `fuzz_ir --seed <seed> --count 1` or `fuzz_ir --repro <file>`.

use std::process::ExitCode;

use query::fuzz::{self, FuzzCase};

fn usage() -> ! {
    eprintln!("usage: fuzz_ir [--seed S] [--count N] | fuzz_ir --repro FILE");
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut seed: u64 = 1;
    let mut count: u64 = 100;
    let mut repro: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--seed" => seed = value().parse().unwrap_or_else(|_| usage()),
            "--count" => count = value().parse().unwrap_or_else(|_| usage()),
            "--repro" => repro = Some(value()),
            _ => usage(),
        }
    }

    if let Some(path) = repro {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|err| panic!("reading repro {path}: {err}"));
        let case = fuzz::parse_repro(&text).unwrap_or_else(|err| panic!("parsing repro: {err}"));
        return match fuzz::check_case(&case) {
            Ok(()) => {
                println!("repro {path} (seed {}) passes", case.seed);
                ExitCode::SUCCESS
            }
            Err(failure) => {
                eprintln!("repro {path} (seed {}) FAILS: {failure}", case.seed);
                ExitCode::FAILURE
            }
        };
    }

    for s in seed..seed.saturating_add(count) {
        if let Err(failure) = fuzz::run_seed(s) {
            report_failure(s, &failure);
            return ExitCode::FAILURE;
        }
    }
    println!(
        "fuzz_ir: {count} seeds ok (seeds {seed}..={})",
        seed + count - 1
    );
    ExitCode::SUCCESS
}

fn report_failure(seed: u64, failure: &fuzz::Failure) {
    eprintln!("================ FUZZ FAILURE ================");
    eprintln!("seed {seed}: {failure}");
    let case = fuzz::generate_case(seed);
    let minimized = fuzz::minimize(&case, failure.kind);
    let shrunk: &FuzzCase = if fuzz::case_size(&minimized) < fuzz::case_size(&case) {
        eprintln!(
            "shrunk case from size {} to {}",
            fuzz::case_size(&case),
            fuzz::case_size(&minimized)
        );
        &minimized
    } else {
        &case
    };
    let path = format!("FUZZ_repro_{seed}.json");
    match std::fs::write(&path, fuzz::repro_json(shrunk)) {
        Ok(()) => eprintln!("minimized repro written to {path}"),
        Err(err) => eprintln!("could not write {path}: {err}"),
    }
    eprintln!("reproduce with: fuzz_ir --seed {seed} --count 1");
    eprintln!("            or: fuzz_ir --repro {path}");
    eprintln!("==============================================");
}
