//! Perf regression gate: compare the benchmark results of this run against the
//! **best of the last [`GATE_WINDOW`] = 5** `BENCH_trajectory.jsonl` entries for
//! the same (benchmark, shape) at the same thread count, and **warn** —
//! non-fatally — on drops of more than [`REGRESSION_THRESHOLD`].
//!
//! CI runs this between restoring the trajectory cache and appending the new
//! points, so the window covers the five most recent pushes to main. Comparing
//! against the window's *peak* rather than just the previous push keeps
//! shared-runner noise from flapping the gate: one slow previous run neither
//! hides a real regression (the peak is still in the window) nor manufactures a
//! phantom one (a recovered run is compared against the same peak it already
//! matched). Warnings use the GitHub Actions `::warning::` workflow-command
//! syntax, which surfaces them as annotations on the run without failing it —
//! a hard gate on wall-clock numbers is flakier than it is useful, but a >25%
//! drop below the recent best is worth a visible flag.
//!
//! When `GITHUB_STEP_SUMMARY` names a writable file (as it does inside a
//! workflow step), the per-shape gate results are also appended there as a
//! markdown table, so the run's summary page shows what was compared without
//! digging through logs.
//!
//! Comparisons use the same best-per-shape folding as `bench_trajectory` and
//! skip shapes whose recent window holds no entry at the current thread count
//! (a runner with different hardware parallelism is not comparable). Exit code
//! is always 0 unless the current benchmark files are unreadable garbage.

use std::io::Write as _;

use db_bench::{
    best_of_recent, fold_best_per_shape, parse_bench_results, parse_trajectory_line,
    BENCHMARK_FILES,
};

/// Fractional drop in `rows_per_s` (vs the recent best) that triggers a warning
/// annotation.
const REGRESSION_THRESHOLD: f64 = 0.25;

/// How many recent trajectory entries per (benchmark, shape) the gate considers.
const GATE_WINDOW: usize = 5;

const TRAJECTORY_PATH: &str = "BENCH_trajectory.jsonl";

/// Append the gate's result table to `$GITHUB_STEP_SUMMARY`, if set (a no-op
/// outside CI).
fn publish_step_summary(rows: &[String]) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        eprintln!("note: cannot append gate results to {path}");
        return;
    };
    let mut text = String::from(
        "\n## Perf gate\n\n| benchmark/shape | threads | current rows/s | recent best | Δ | verdict |\n\
         |---|---:|---:|---:|---:|---|\n",
    );
    for row in rows {
        text.push_str(row);
        text.push('\n');
    }
    let _ = file.write_all(text.as_bytes());
}

fn main() {
    let Ok(trajectory) = std::fs::read_to_string(TRAJECTORY_PATH) else {
        println!("note: no {TRAJECTORY_PATH} to compare against (first run?) — gate passes");
        return;
    };
    let history: Vec<(String, String, usize, f64)> = trajectory
        .lines()
        .filter_map(parse_trajectory_line)
        .collect();
    if history.is_empty() {
        println!("note: {TRAJECTORY_PATH} holds no comparable points — gate passes");
        return;
    }

    let mut compared = 0usize;
    let mut regressions = 0usize;
    let mut summary_rows: Vec<String> = Vec::new();
    for &(benchmark, path) in BENCHMARK_FILES {
        let Ok(json) = std::fs::read_to_string(path) else {
            continue; // bench_trajectory enforces presence; the gate only compares
        };
        for (shape, threads, current) in fold_best_per_shape(parse_bench_results(&json)) {
            let Some(previous) = best_of_recent(&history, benchmark, &shape, threads, GATE_WINDOW)
            else {
                println!(
                    "{benchmark}/{shape}: no entry at {threads} threads in the last \
                     {GATE_WINDOW} points — not comparable, skipping"
                );
                summary_rows.push(format!(
                    "| {benchmark}/{shape} | {threads} | {current:.0} | — | — | no history |"
                ));
                continue;
            };
            compared += 1;
            let ratio = current / previous;
            let delta = format!("{:+.1}%", (ratio - 1.0) * 100.0);
            if ratio < 1.0 - REGRESSION_THRESHOLD {
                regressions += 1;
                println!(
                    "::warning title=Perf regression: {benchmark}/{shape}::rows_per_s fell \
                     {:.1}% ({previous:.0} -> {current:.0} at {threads} threads) vs the best \
                     of the last {GATE_WINDOW} trajectory entries",
                    (1.0 - ratio) * 100.0,
                );
                summary_rows.push(format!(
                    "| {benchmark}/{shape} | {threads} | {current:.0} | {previous:.0} | {delta} | \
                     ⚠️ regression |"
                ));
            } else {
                println!(
                    "{benchmark}/{shape}: {current:.0} rows/s vs {previous:.0} recent best \
                     ({delta}) — ok"
                );
                summary_rows.push(format!(
                    "| {benchmark}/{shape} | {threads} | {current:.0} | {previous:.0} | {delta} | \
                     ok |"
                ));
            }
        }
    }
    println!(
        "gate: compared {compared} shapes against the best of the last {GATE_WINDOW} \
         entries, {regressions} regression warning(s) (threshold {:.0}%, non-fatal)",
        REGRESSION_THRESHOLD * 100.0
    );
    publish_step_summary(&summary_rows);
}
