//! Perf regression gate: compare the benchmark results of this run against the
//! most recent `BENCH_trajectory.jsonl` entry for the same (benchmark, shape,
//! threads) and **warn** — non-fatally — on drops of more than
//! [`REGRESSION_THRESHOLD`].
//!
//! CI runs this between restoring the trajectory cache and appending the new
//! points, so every comparison is against the previous push to main. Warnings use
//! the GitHub Actions `::warning::` workflow-command syntax, which surfaces them
//! as annotations on the run without failing it — shared-runner noise makes a
//! hard gate on wall-clock numbers flakier than it is useful, but a >25% drop is
//! worth a visible flag.
//!
//! Comparisons use the same best-per-shape folding as `bench_trajectory` and skip
//! shapes whose previous entry was recorded at a different thread count (a runner
//! with different hardware parallelism is not comparable). Exit code is always 0
//! unless the current benchmark files are unreadable garbage.

use db_bench::{fold_best_per_shape, parse_bench_results, parse_trajectory_line, BENCHMARK_FILES};

/// Fractional drop in `rows_per_s` that triggers a warning annotation.
const REGRESSION_THRESHOLD: f64 = 0.25;

const TRAJECTORY_PATH: &str = "BENCH_trajectory.jsonl";

fn main() {
    let Ok(trajectory) = std::fs::read_to_string(TRAJECTORY_PATH) else {
        println!("note: no {TRAJECTORY_PATH} to compare against (first run?) — gate passes");
        return;
    };
    let history: Vec<(String, String, usize, f64)> = trajectory
        .lines()
        .filter_map(parse_trajectory_line)
        .collect();
    if history.is_empty() {
        println!("note: {TRAJECTORY_PATH} holds no comparable points — gate passes");
        return;
    }

    let mut compared = 0usize;
    let mut regressions = 0usize;
    for &(benchmark, path) in BENCHMARK_FILES {
        let Ok(json) = std::fs::read_to_string(path) else {
            continue; // bench_trajectory enforces presence; the gate only compares
        };
        for (shape, threads, current) in fold_best_per_shape(parse_bench_results(&json)) {
            // Most recent prior entry for the same benchmark + shape.
            let Some(&(_, _, prev_threads, previous)) = history
                .iter()
                .rev()
                .find(|(b, s, _, _)| *b == benchmark && *s == shape)
            else {
                println!("{benchmark}/{shape}: no history yet");
                continue;
            };
            if prev_threads != threads {
                println!(
                    "{benchmark}/{shape}: previous entry used {prev_threads} threads, \
                     current best is at {threads} — not comparable, skipping"
                );
                continue;
            }
            compared += 1;
            let ratio = current / previous;
            if ratio < 1.0 - REGRESSION_THRESHOLD {
                regressions += 1;
                println!(
                    "::warning title=Perf regression: {benchmark}/{shape}::rows_per_s fell \
                     {:.1}% ({previous:.0} -> {current:.0} at {threads} threads) vs the last \
                     trajectory entry",
                    (1.0 - ratio) * 100.0,
                );
            } else {
                println!(
                    "{benchmark}/{shape}: {current:.0} rows/s vs {previous:.0} previously \
                     ({:+.1}%) — ok",
                    (ratio - 1.0) * 100.0,
                );
            }
        }
    }
    println!(
        "gate: compared {compared} shapes, {regressions} regression warning(s) \
         (threshold {:.0}%, non-fatal)",
        REGRESSION_THRESHOLD * 100.0
    );
}
