//! Table 3: OLTP point-access throughput on the TPC-H customer relation — random
//! `select * from customer where c_custkey = ?` lookups with and without a primary
//! key index, on uncompressed storage (JIT / vectorized scan) and on Data Blocks
//! (with and without PSMAs), for key-ordered and shuffled physical layouts.

use datablocks::{ScanOptions, Value};
use db_bench::{print_table_header, print_table_row, tpch_scale_factor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use storage::Relation;
use workloads::TpchDb;

/// Build a shuffled copy of the customer relation (no longer ordered on c_custkey).
fn shuffled_copy(customer: &Relation) -> Relation {
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(customer.row_count());
    for chunk in customer.hot_chunks() {
        for row in 0..chunk.len() {
            rows.push(chunk.get_row(row));
        }
    }
    for idx in 0..customer.cold_block_count() {
        let block = customer.cold_block(idx);
        for row in 0..block.tuple_count() as usize {
            rows.push(
                (0..block.column_count())
                    .map(|c| block.get(row, c))
                    .collect(),
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(0x5817FF1E);
    for i in (1..rows.len()).rev() {
        rows.swap(i, rng.gen_range(0..=i));
    }
    let mut out = Relation::with_chunk_capacity(
        "customer_shuffled",
        customer.schema().clone(),
        customer.chunk_capacity(),
    );
    for row in rows {
        out.insert(row);
    }
    out
}

fn lookups_per_second(
    relation: &Relation,
    customers: i64,
    use_index: bool,
    options: ScanOptions,
    budget: std::time::Duration,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(0xACCE55);
    let start = std::time::Instant::now();
    let mut done = 0u64;
    while start.elapsed() < budget {
        let key = rng.gen_range(1..=customers);
        let found = if use_index {
            relation.lookup_pk(key)
        } else {
            relation.lookup_pk_scan(key, options)
        };
        // materialise the whole record, like `select *`
        if let Some(id) = found {
            std::hint::black_box(relation.get_row(id));
        }
        done += 1;
    }
    done as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let sf = tpch_scale_factor();
    let customers = workloads::tpch::cardinality("customer", sf) as i64;
    println!("customer relation: {customers} records (TPC-H sf {sf})");
    let budget = std::time::Duration::from_millis(
        std::env::var("OLTP_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300),
    );

    // ordered and shuffled variants
    let base = TpchDb::generate(sf);
    let ordered_hot = base.relation("customer");
    let shuffled_hot = shuffled_copy(ordered_hot);
    let mut ordered_cold_db = TpchDb::generate(sf);
    ordered_cold_db.db.relation_mut("customer").freeze_all();
    let ordered_cold = ordered_cold_db.relation("customer");
    let mut shuffled_cold = shuffled_copy(ordered_hot);
    shuffled_cold.freeze_all();

    let psma_on = ScanOptions::default();
    let psma_off = ScanOptions {
        use_psma: false,
        ..ScanOptions::default()
    };

    let widths = [30usize, 10, 14, 14];
    print_table_header(
        "Table 3: random point-access throughput (lookups/second)",
        &["storage", "index", "ordered", "shuffled"],
        &widths,
    );
    let rows: Vec<(&str, bool, &Relation, &Relation, ScanOptions)> = vec![
        ("uncompressed", true, ordered_hot, &shuffled_hot, psma_off),
        (
            "uncompressed (scan)",
            false,
            ordered_hot,
            &shuffled_hot,
            psma_off,
        ),
        ("Data Blocks", true, ordered_cold, &shuffled_cold, psma_off),
        (
            "Data Blocks (scan, -PSMA)",
            false,
            ordered_cold,
            &shuffled_cold,
            psma_off,
        ),
        (
            "Data Blocks (scan, +PSMA)",
            false,
            ordered_cold,
            &shuffled_cold,
            psma_on,
        ),
    ];
    for (label, index, ordered, shuffled, options) in rows {
        let ordered_rate = lookups_per_second(ordered, customers, index, options, budget);
        let shuffled_rate = lookups_per_second(shuffled, customers, index, options, budget);
        print_table_row(
            &[
                label.to_string(),
                if index { "PK" } else { "none" }.to_string(),
                format!("{ordered_rate:.0}"),
                format!("{shuffled_rate:.0}"),
            ],
            &widths,
        );
    }
    println!("\nExpected shape (paper): indexed lookups are fastest and ~40-60% slower on Data");
    println!("Blocks than uncompressed; without an index, Data Block scans beat uncompressed");
    println!("scans on key-ordered data (SMAs/PSMAs narrow the scan) but not on shuffled data.");
}
