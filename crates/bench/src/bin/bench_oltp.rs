//! OLTP throughput benchmark: TPC-C style transactions per second against the
//! hybrid storage layer, in the two regimes the paper's Section 5.3 compares:
//!
//! * `new_order_hot` / `new_order_frozen_history` — the write-heavy new-order
//!   transaction on an all-hot database vs one whose old neworder/orderline
//!   records were frozen into Data Blocks (the paper's claim: freezing history
//!   costs almost nothing on the write path);
//! * `read_mix_hot` / `read_mix_frozen` — the read-only order-status + stock-level
//!   mix on an all-hot vs fully frozen database (point lookups through the PK
//!   index plus a SARGable stock scan against compressed blocks).
//!
//! Emits `BENCH_oltp.json` — `rows_per_s` carries transactions/second so the
//! entries fold into `BENCH_trajectory.jsonl` with the same reader as every other
//! benchmark (OLTP transactions are single-threaded against `&mut` storage, so
//! `threads` is always 1). Knobs:
//!
//! * `TPCC_WAREHOUSES` — warehouse count (default 2; the paper uses 5).
//! * `TPCC_TXNS` — write transactions per phase (default 8000).

use std::io::Write as _;

use db_bench::{print_table_header, print_table_row};
use workloads::TpccDb;

fn main() {
    let warehouses: i64 = std::env::var("TPCC_WAREHOUSES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let write_txns: usize = std::env::var("TPCC_TXNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8_000);
    let read_txns = write_txns / 2;
    println!("generating TPC-C with {warehouses} warehouses ...");

    let widths = [26usize, 14, 14];
    print_table_header(
        "TPC-C transaction throughput",
        &["shape", "txns", "txns/s"],
        &widths,
    );

    let mut entries = Vec::new();
    let mut emit = |shape: &str, txns: usize, secs: f64| {
        let tps = txns as f64 / secs;
        print_table_row(
            &[shape.to_string(), format!("{txns}"), format!("{tps:.0}")],
            &widths,
        );
        entries.push(format!(
            "    {{\"oltp\": \"{shape}\", \"threads\": 1, \"elapsed_ms\": {:.3}, \
             \"rows_per_s\": {tps:.0}, \"transactions\": {txns}}}",
            secs * 1e3,
        ));
    };

    // Both databases ingest `write_txns` of (unmeasured) order history first, so
    // the measured write phases — and later the read phases — run against the
    // same data volume; the only difference between the shapes is whether that
    // history is hot or frozen.
    let mut hot = TpccDb::generate(warehouses);
    for _ in 0..write_txns {
        hot.new_order();
    }
    let start = std::time::Instant::now();
    for _ in 0..write_txns {
        hot.new_order();
    }
    emit("new_order_hot", write_txns, start.elapsed().as_secs_f64());

    // Same history, frozen into Data Blocks before the measured phase.
    let mut frozen = TpccDb::generate(warehouses);
    for _ in 0..write_txns {
        frozen.new_order();
    }
    frozen.freeze_old_neworders();
    let start = std::time::Instant::now();
    for _ in 0..write_txns {
        frozen.new_order();
    }
    emit(
        "new_order_frozen_history",
        write_txns,
        start.elapsed().as_secs_f64(),
    );

    // Read-only mix (order-status + stock-level), hot vs fully frozen.
    let run_reads = |db: &mut TpccDb| -> f64 {
        let start = std::time::Instant::now();
        for i in 0..read_txns {
            if i % 2 == 0 {
                std::hint::black_box(db.order_status());
            } else {
                std::hint::black_box(db.stock_level());
            }
        }
        start.elapsed().as_secs_f64()
    };
    let hot_secs = run_reads(&mut hot);
    emit("read_mix_hot", read_txns, hot_secs);
    frozen.freeze_everything();
    let frozen_secs = run_reads(&mut frozen);
    emit("read_mix_frozen", read_txns, frozen_secs);

    // Durability axis: tombstone transactions against *spilled* frozen history.
    // Every delete rewrites its on-disk block and appends a manifest record, so
    // the fsync barriers of `Durability::Sync` sit on the measured path —
    // `sync_gc1` pays one fsync per transaction, `sync_gc8` amortises it over a
    // group commit of 8, `buffered` pays none.
    {
        use storage::blockstore::Durability;
        use storage::{RowId, Segment, SpillPolicy};
        let modes: [(&str, Durability); 3] = [
            ("buffered", Durability::Buffered),
            ("sync_gc1", Durability::Sync { group_commit: 1 }),
            ("sync_gc8", Durability::Sync { group_commit: 8 }),
        ];
        for (mode, durability) in modes {
            let mut db = TpccDb::generate(warehouses);
            for _ in 0..write_txns {
                db.new_order();
            }
            // freeze the whole history (not just full chunks) so there are
            // always cold blocks to tombstone, whatever TPCC_TXNS is
            db.db.relation_mut("neworder").freeze_all();
            let dir = std::env::temp_dir().join(format!(
                "bench-oltp-durability-{mode}-{}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).expect("create spill dir");
            db.db
                .enable_spill(SpillPolicy {
                    path: Some(dir.clone()),
                    durability,
                    ..SpillPolicy::default()
                })
                .expect("enable spill");
            let neworder = db.db.relation_mut("neworder");
            let blocks = neworder.cold_block_count();
            let mut txns = 0usize;
            let start = std::time::Instant::now();
            for block in 0..blocks {
                for row in 0..4 {
                    if neworder.delete(RowId {
                        segment: Segment::Cold(block),
                        row,
                    }) {
                        txns += 1;
                    }
                }
            }
            let secs = start.elapsed().as_secs_f64();
            assert!(txns > 0, "frozen neworder history must have rows to delete");
            emit(&format!("frozen_delete_{mode}"), txns, secs);
            drop(db);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"tpcc_oltp\",\n  \"warehouses\": {warehouses},\n  \
         \"write_txns\": {write_txns},\n  \"read_txns\": {read_txns},\n  \
         \"hardware_threads\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        entries.join(",\n"),
    );
    let path = "BENCH_oltp.json";
    let mut file = std::fs::File::create(path).expect("create BENCH_oltp.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_oltp.json");
    println!("\nwrote {path}");
}
