//! Figure 9: cost of applying an additional restriction (reduce-matches) as a
//! function of the selectivity of the first predicate, scalar x86 vs AVX2, for
//! 8/16/32/64-bit data. The second predicate always selects 40% of its input.

use db_bench::{bench_rows, cycles_per_element, print_table_header, print_table_row, time_median};
use dbsimd::{find_matches, reduce_matches, IsaLevel, RangePredicate};

fn run_width<T: dbsimd::ScanWord + TryFrom<u64>>(
    label: &str,
    data: &[T],
    domain: u64,
    widths: &[usize],
) {
    let to_t = |v: u64| T::try_from(v.min(domain - 1)).unwrap_or(T::MAX_VALUE);
    for first_sel in [1u64, 10, 25, 50, 75, 100] {
        // first predicate keeps `first_sel`% of the domain
        let first = RangePredicate::between(to_t(0), to_t(domain * first_sel / 100));
        let mut initial = Vec::new();
        find_matches(IsaLevel::Scalar, data, &first, 0, &mut initial);
        // second predicate keeps 40% of the domain
        let second = RangePredicate::between(to_t(domain * 30 / 100), to_t(domain * 70 / 100));
        let mut cells = vec![label.to_string(), format!("{first_sel}%")];
        for isa in [IsaLevel::Scalar, IsaLevel::Avx2] {
            if IsaLevel::available().contains(&isa) {
                let mut work = Vec::new();
                let (_, elapsed) = time_median(5, || {
                    work.clone_from(&initial);
                    reduce_matches(isa, data, &second, 0, &mut work)
                });
                cells.push(format!(
                    "{:.2}",
                    cycles_per_element(elapsed, initial.len().max(1))
                ));
            } else {
                cells.push("n/a".to_string());
            }
        }
        print_table_row(&cells, widths);
    }
}

fn main() {
    let n = bench_rows(2_000_000);
    let widths = [8usize, 10, 12, 12];
    print_table_header(
        "Figure 9: reduce-matches cost vs selectivity of the first predicate (cycles/element)",
        &["width", "1st sel", "x86", "AVX2"],
        &widths,
    );
    let mut x = 0x9E37_79B9u64;
    let mut next = |modulus: u64| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x % modulus
    };
    let d8: Vec<u8> = (0..n).map(|_| next(256) as u8).collect();
    let d16: Vec<u16> = (0..n).map(|_| next(65_536) as u16).collect();
    let d32: Vec<u32> = (0..n).map(|_| next(1 << 20) as u32).collect();
    let d64: Vec<u64> = (0..n).map(|_| next(1 << 40)).collect();
    run_width("8-bit", &d8, 256, &widths);
    run_width("16-bit", &d16, 65_536, &widths);
    run_width("32-bit", &d32, 1 << 20, &widths);
    run_width("64-bit", &d64, 1 << 40, &widths);
    println!("\nExpected shape (paper): AVX2 gains 1.0-1.25x for up to 32-bit values,");
    println!("no benefit (or a slight loss at high selectivities) for 64-bit values.");
}
