//! Figure 8: speedup of SIMD predicate evaluation (l <= A <= r, 20% selectivity)
//! over scalar x86 code, by data-type width and ISA (SSE, AVX2).

use db_bench::{bench_rows, print_table_header, print_table_row, time_median};
use dbsimd::{find_matches, IsaLevel, RangePredicate};

fn bench_width<T: dbsimd::ScanWord>(data: &[T], pred: RangePredicate<T>) -> Vec<(IsaLevel, f64)> {
    let mut out = Vec::new();
    for isa in IsaLevel::available() {
        let mut matches = Vec::new();
        let (_, elapsed) = time_median(7, || {
            matches.clear();
            find_matches(isa, data, &pred, 0, &mut matches)
        });
        out.push((isa, elapsed.as_secs_f64()));
    }
    out
}

fn print_speedups<T: dbsimd::ScanWord>(
    label: &str,
    data: &[T],
    pred: RangePredicate<T>,
    widths: &[usize],
) {
    let results = bench_width(data, pred);
    let scalar = results
        .iter()
        .find(|(isa, _)| *isa == IsaLevel::Scalar)
        .map(|(_, t)| *t)
        .unwrap_or(1.0);
    let mut cells = vec![label.to_string()];
    for isa in [IsaLevel::Scalar, IsaLevel::Sse, IsaLevel::Avx2] {
        match results.iter().find(|(i, _)| *i == isa) {
            Some((_, t)) => cells.push(format!("{:.2}x", scalar / t)),
            None => cells.push("n/a".to_string()),
        }
    }
    print_table_row(&cells, widths);
}

fn main() {
    let n = bench_rows(4_000_000);
    let widths = [8usize, 10, 10, 10];
    print_table_header(
        "Figure 8: SIMD speedup of between-predicate evaluation (selectivity 20%)",
        &["width", "x86", "SSE", "AVX2"],
        &widths,
    );
    // values uniform in [0, 1000); predicate selects 20%
    let mut x = 0x2545_F491u64;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x % 1000
    };
    let d8: Vec<u8> = (0..n).map(|_| (next() % 250) as u8).collect();
    let d16: Vec<u16> = (0..n).map(|_| next() as u16).collect();
    let d32: Vec<u32> = (0..n).map(|_| next() as u32).collect();
    let d64: Vec<u64> = (0..n).map(|_| next()).collect();
    print_speedups("8-bit", &d8, RangePredicate::between(0u8, 49), &widths);
    print_speedups("16-bit", &d16, RangePredicate::between(0u16, 199), &widths);
    print_speedups("32-bit", &d32, RangePredicate::between(0u32, 199), &widths);
    print_speedups("64-bit", &d64, RangePredicate::between(0u64, 199), &widths);
    println!("\nExpected shape (paper): ~4x with SSE and >5x with AVX2 for 8/16/32-bit,");
    println!("~1.5x with AVX2 for 64-bit, no gain for SSE on 64-bit.");
}
