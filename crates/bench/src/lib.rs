//! # db-bench — harness regenerating every table and figure of the paper
//!
//! Each table and figure of the evaluation section has a dedicated binary in
//! `src/bin/` (see DESIGN.md for the experiment index); micro-benchmarks for the
//! SIMD kernels live in `benches/` as hand-rolled `harness = false` binaries (the
//! build environment is offline, so Criterion is unavailable). This library holds
//! the shared plumbing: timing, cycle conversion, geometric means and table
//! formatting.
//!
//! All binaries honour two environment variables:
//!
//! * `TPCH_SF` — TPC-H scale factor used by the query benchmarks (default 0.01).
//! * `BENCH_ROWS` — row count used by the data-set size experiments (default varies
//!   per binary).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Nominal CPU frequency used to convert wall-clock time into "cycles per tuple" the
/// way the paper reports micro-benchmark costs. Override with the `CPU_GHZ`
/// environment variable if the host differs significantly.
pub fn cpu_hz() -> f64 {
    std::env::var("CPU_GHZ")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map(|ghz| ghz * 1e9)
        .unwrap_or(2.3e9)
}

/// Convert a measured duration over `items` processed elements into cycles/element.
pub fn cycles_per_element(elapsed: Duration, items: usize) -> f64 {
    if items == 0 {
        return 0.0;
    }
    elapsed.as_secs_f64() * cpu_hz() / items as f64
}

/// Time a closure once.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Time a closure: one warm-up run, then the median of `runs` timed runs.
pub fn time_median<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(runs >= 1);
    let mut result = f(); // warm-up
    let mut times = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        result = f();
        times.push(start.elapsed());
    }
    times.sort();
    (result, times[times.len() / 2])
}

/// Geometric mean of a set of durations (how the paper summarises TPC-H runtimes).
pub fn geometric_mean(durations: &[Duration]) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    let log_sum: f64 = durations
        .iter()
        .map(|d| d.as_secs_f64().max(1e-12).ln())
        .sum();
    Duration::from_secs_f64((log_sum / durations.len() as f64).exp())
}

/// Scale factor for TPC-H experiments (`TPCH_SF`, default 0.01).
pub fn tpch_scale_factor() -> f64 {
    std::env::var("TPCH_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01)
}

/// Scan worker threads for the parallel-scan benchmarks: the `--threads N` (or
/// `--threads=N`) command-line argument, falling back to the `THREADS` environment
/// variable, defaulting to 1 (serial). `0` means "all hardware threads".
///
/// An explicitly supplied `--threads` flag or `THREADS` variable with a missing or
/// unparsable value aborts the benchmark: recording serial numbers under a misspelled
/// thread count would poison the perf trajectory silently.
pub fn threads_arg() -> usize {
    fn parse_or_die(value: Option<String>) -> usize {
        match value.as_deref().map(str::parse) {
            Some(Ok(n)) => n,
            _ => {
                eprintln!(
                    "error: --threads / THREADS requires a non-negative integer (got {value:?})"
                );
                std::process::exit(2);
            }
        }
    }
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            return parse_or_die(args.next());
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            return parse_or_die(Some(value.to_string()));
        }
    }
    match std::env::var("THREADS") {
        Ok(value) => parse_or_die(Some(value)),
        Err(_) => 1,
    }
}

/// Row count for data-set experiments (`BENCH_ROWS`, with a per-binary default).
pub fn bench_rows(default: usize) -> usize {
    std::env::var("BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Format a duration in the most readable unit.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Format a byte count with binary units.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: &[&str] = &["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    format!("{value:.2} {}", UNITS[unit])
}

/// Every trajectory benchmark and the JSON file its binary emits, in the order the
/// CI job runs them. `bench_trajectory` folds these into `BENCH_trajectory.jsonl`;
/// `bench_gate` compares them against the last trajectory entry.
pub const BENCHMARK_FILES: &[(&str, &str)] = &[
    ("scan", "BENCH_scan.json"),
    ("agg", "BENCH_agg.json"),
    ("io", "BENCH_io.json"),
    ("join", "BENCH_join.json"),
    ("oltp", "BENCH_oltp.json"),
    ("service", "BENCH_service.json"),
    ("wire", "BENCH_wire.json"),
];

/// Fold raw `(shape, threads, rows_per_s)` measurements down to the best rows/s
/// per shape, in first-seen (emission) order. This is THE folding both
/// `bench_trajectory` (when recording points) and `bench_gate` (when comparing
/// against them) apply, so the gate always compares like against like.
pub fn fold_best_per_shape(entries: Vec<(String, usize, f64)>) -> Vec<(String, usize, f64)> {
    let mut shapes: Vec<(String, usize, f64)> = Vec::new();
    for (shape, threads, rows_per_s) in entries {
        match shapes.iter_mut().find(|(s, _, _)| *s == shape) {
            Some(best) if best.2 >= rows_per_s => {}
            Some(best) => *best = (shape, threads, rows_per_s),
            None => shapes.push((shape, threads, rows_per_s)),
        }
    }
    shapes
}

/// Unicode-block sparkline of a series, one glyph per value, scaled min→max
/// (`▁` for the minimum, `█` for the maximum; a flat series renders mid-height).
/// This is what the CI trajectory report embeds next to each benchmark shape.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    values
        .iter()
        .map(|&v| {
            if !min.is_finite() || !max.is_finite() || max <= min {
                LEVELS[3] // flat (or degenerate) series: mid-height bar
            } else {
                let t = (v - min) / (max - min);
                LEVELS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// The gate's baseline: the **best** rows/s among the last `k` trajectory
/// entries for `(benchmark, shape)` that were recorded at `threads` — comparing
/// against a small window's peak instead of just the previous push keeps one
/// noisy run from raising (or burying) a warning. Entries at other thread
/// counts are skipped (different hardware parallelism is not comparable);
/// `None` means nothing comparable in the window.
pub fn best_of_recent(
    history: &[(String, String, usize, f64)],
    benchmark: &str,
    shape: &str,
    threads: usize,
    k: usize,
) -> Option<f64> {
    history
        .iter()
        .filter(|(b, s, _, _)| b == benchmark && s == shape)
        .rev()
        .take(k)
        .filter(|(_, _, t, _)| *t == threads)
        .map(|(_, _, _, rows_per_s)| *rows_per_s)
        .fold(None, |best, v| Some(best.map_or(v, |b: f64| b.max(v))))
}

/// One parsed `BENCH_trajectory.jsonl` entry:
/// `(benchmark, shape, threads, rows_per_s)`. Returns `None` for lines that are
/// not trajectory points (blank lines, corrupt cache entries).
pub fn parse_trajectory_line(line: &str) -> Option<(String, String, usize, f64)> {
    let benchmark = json_string_value(line, "\"benchmark\":")?;
    let shape = json_string_value(line, "\"shape\":")?;
    let threads = json_number(line, "\"threads\":")? as usize;
    let rows_per_s = json_number(line, "\"rows_per_s\":")?;
    Some((benchmark, shape, threads, rows_per_s))
}

/// `(shape, threads, rows_per_s)` measurements extracted from a benchmark JSON
/// file. The shape is the value of the line's first string-valued field (the bench
/// binaries label each result object that way: `"scan": "tpch_q6"`,
/// `"agg": "q1_groups"`), so distinct benchmark shapes stay distinguishable in the
/// trajectory log instead of being folded into one number.
///
/// The bench binaries emit their JSON by hand (the build environment is offline, so
/// serde is unavailable) with one result object per line; this parser is the
/// matching dependency-free reader used by the `bench_trajectory` binary to fold
/// `BENCH_scan.json` / `BENCH_agg.json` into the per-commit trajectory log.
pub fn parse_bench_results(json: &str) -> Vec<(String, usize, f64)> {
    json.lines()
        .filter_map(|line| {
            let threads = json_number(line, "\"threads\":")?;
            let rows_per_s = json_number(line, "\"rows_per_s\":")?;
            let shape = json_first_string_value(line).unwrap_or_else(|| "default".to_string());
            Some((shape, threads as usize, rows_per_s))
        })
        .collect()
}

/// Extract the numeric value following `key` in a single JSON line.
fn json_number(line: &str, key: &str) -> Option<f64> {
    let start = line.find(key)? + key.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && c != 'e' && c != 'E' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract the first `"key": "value"` string value of a single JSON line.
fn json_first_string_value(line: &str) -> Option<String> {
    let start = line.find(": \"")? + 3;
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Extract the string value following `key` in a single JSON line.
fn json_string_value(line: &str, key: &str) -> Option<String> {
    let start = line.find(key)? + key.len();
    let rest = line[start..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Print a header row followed by a separator, for the fixed-width tables the
/// harness binaries emit.
pub fn print_table_header(title: &str, columns: &[&str], widths: &[usize]) {
    println!("\n== {title} ==");
    let mut line = String::new();
    for (col, width) in columns.iter().zip(widths) {
        line.push_str(&format!("{col:>width$}  ", width = width));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
}

/// Print one row of a fixed-width table.
pub fn print_table_row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, width) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>width$}  ", width = width));
    }
    println!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_equal_durations_is_identity() {
        let d = vec![Duration::from_millis(100); 4];
        let gm = geometric_mean(&d);
        assert!((gm.as_secs_f64() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn geometric_mean_is_between_min_and_max() {
        let d = vec![Duration::from_millis(10), Duration::from_millis(1000)];
        let gm = geometric_mean(&d);
        assert!(gm > d[0] && gm < d[1]);
        // gm of 10ms and 1000ms = 100ms
        assert!((gm.as_secs_f64() - 0.1).abs() < 1e-3);
    }

    #[test]
    fn cycles_conversion_uses_frequency() {
        let cycles = cycles_per_element(Duration::from_secs(1), 1_000_000);
        assert!(cycles > 1_000.0);
        assert_eq!(cycles_per_element(Duration::from_secs(1), 0), 0.0);
    }

    #[test]
    fn timing_helpers_return_results() {
        let (v, d) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d >= Duration::ZERO);
        let (v, d) = time_median(3, || (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(d > Duration::ZERO);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_bytes(512), "512.00 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with('s'));
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("us"));
    }

    #[test]
    fn parse_bench_results_reads_handwritten_json() {
        let json = "{\n  \"benchmark\": \"parallel_scan\",\n  \"results\": [\n    \
                    {\"scan\": \"q6\", \"threads\": 1, \"rows_per_s\": 1200000, \"x\": 1},\n    \
                    {\"agg\": \"q1_groups\", \"threads\": 4, \"rows_per_s\": 3500000.5},\n    \
                    {\"threads\": 2, \"rows_per_s\": 7}\n  ]\n}\n";
        let entries = parse_bench_results(json);
        assert_eq!(
            entries,
            vec![
                ("q6".to_string(), 1, 1_200_000.0),
                ("q1_groups".to_string(), 4, 3_500_000.5),
                ("default".to_string(), 2, 7.0),
            ]
        );
        assert!(parse_bench_results("not json at all").is_empty());
    }

    #[test]
    fn fold_best_per_shape_keeps_peak_and_order() {
        let folded = fold_best_per_shape(vec![
            ("q6".into(), 1, 100.0),
            ("agg".into(), 1, 50.0),
            ("q6".into(), 4, 400.0),
            ("q6".into(), 8, 300.0),
        ]);
        assert_eq!(
            folded,
            vec![("q6".to_string(), 4, 400.0), ("agg".to_string(), 1, 50.0)]
        );
        assert!(fold_best_per_shape(Vec::new()).is_empty());
    }

    #[test]
    fn parse_trajectory_line_roundtrip() {
        let line = "{\"commit\": \"abc\", \"date\": \"2026-07-28\", \"benchmark\": \"join\", \
                    \"shape\": \"orders_lineitem\", \"threads\": 4, \"rows_per_s\": 1500000}";
        assert_eq!(
            parse_trajectory_line(line),
            Some((
                "join".to_string(),
                "orders_lineitem".to_string(),
                4,
                1_500_000.0
            ))
        );
        assert_eq!(parse_trajectory_line(""), None);
        assert_eq!(parse_trajectory_line("{\"benchmark\": \"scan\"}"), None);
    }

    #[test]
    fn sparkline_scales_min_to_max() {
        assert_eq!(sparkline(&[1.0, 2.0, 3.0]), "▁▅█");
        assert_eq!(sparkline(&[3.0, 1.0]), "█▁");
        // flat and degenerate series stay readable
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▄▄▄");
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[42.0]), "▄");
    }

    #[test]
    fn best_of_recent_takes_window_peak_at_matching_threads() {
        let history: Vec<(String, String, usize, f64)> = vec![
            ("scan".into(), "q6".into(), 4, 900.0), // outside the window of 5
            ("scan".into(), "q6".into(), 4, 100.0),
            ("scan".into(), "q6".into(), 4, 300.0),
            ("scan".into(), "q6".into(), 8, 999.0), // thread mismatch: skipped
            ("scan".into(), "q6".into(), 4, 200.0),
            ("scan".into(), "other".into(), 4, 777.0), // different shape
            ("scan".into(), "q6".into(), 4, 250.0),
        ];
        assert_eq!(best_of_recent(&history, "scan", "q6", 4, 5), Some(300.0));
        // a window of 1 degenerates to "previous entry only"
        assert_eq!(best_of_recent(&history, "scan", "q6", 4, 1), Some(250.0));
        // nothing comparable: wrong threads everywhere in the window
        assert_eq!(best_of_recent(&history, "scan", "q6", 2, 5), None);
        assert_eq!(best_of_recent(&history, "agg", "q6", 4, 5), None);
    }

    #[test]
    fn benchmark_files_are_unique() {
        let mut names: Vec<&str> = BENCHMARK_FILES.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BENCHMARK_FILES.len());
    }

    #[test]
    fn env_defaults() {
        assert!(tpch_scale_factor() > 0.0);
        assert_eq!(bench_rows(123), 123);
        // threads_arg() is deliberately not asserted here: it reads the ambient
        // THREADS variable (and aborts the process on an unparsable value), so an
        // in-process check would make the suite environment-sensitive.
    }
}
