//! Benchmark for Data Block scans: SARGable predicate evaluation on compressed data
//! vs the bit-packed baseline, and point accesses (Table 3 flavour).
//!
//! Hand-rolled harness (`harness = false`): the build environment has no crates.io
//! access, so Criterion is unavailable.

use bitpack::BitPackedColumn;
use datablocks::builder::{freeze, int_column};
use datablocks::{scan_collect, Restriction, ScanOptions};
use db_bench::{
    cycles_per_element, fmt_duration, print_table_header, print_table_row, time_median,
};

fn main() {
    let n = 1usize << 16;
    let values: Vec<i64> = {
        let mut x = 7u64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 65_537) as i64
            })
            .collect()
    };
    let block = freeze(&[int_column(values.clone())]);
    let packed = BitPackedColumn::pack(&values.iter().map(|&v| v as u32).collect::<Vec<_>>(), 17);
    let hi = 65_537 / 4; // ~25% selectivity

    let widths = [24usize, 12, 14];
    let header = ["configuration", "median", "cycles/elem"];

    print_table_header("sarg_scan_64k", &header, &widths);
    let options = ScanOptions {
        use_sma: false,
        use_psma: false,
        ..ScanOptions::default()
    };
    let (_, elapsed) = time_median(20, || {
        scan_collect(&block, &[Restriction::between(0, 0i64, hi)], options)
    });
    print_table_row(
        &[
            "datablocks".to_string(),
            fmt_duration(elapsed),
            format!("{:.2}", cycles_per_element(elapsed, n)),
        ],
        &widths,
    );
    let mut out = Vec::with_capacity(n);
    let (_, elapsed) = time_median(20, || packed.scan_between_robust(0, hi as u32, &mut out));
    print_table_row(
        &[
            "bitpacked_robust".to_string(),
            fmt_duration(elapsed),
            format!("{:.2}", cycles_per_element(elapsed, n)),
        ],
        &widths,
    );

    print_table_header("point_access (1M lookups)", &header, &widths);
    let lookups = 1_000_000usize;
    let mut i = 0usize;
    let (_, elapsed) = time_median(5, || {
        let mut sink = 0i64;
        for _ in 0..lookups {
            i = (i + 7919) % n;
            if let datablocks::Value::Int(v) = block.get(i, 0) {
                sink ^= v;
            }
        }
        sink
    });
    print_table_row(
        &[
            "datablock_get".to_string(),
            fmt_duration(elapsed),
            format!("{:.2}", cycles_per_element(elapsed, lookups)),
        ],
        &widths,
    );
    let (_, elapsed) = time_median(5, || {
        let mut sink = 0u32;
        for _ in 0..lookups {
            i = (i + 7919) % n;
            sink ^= packed.get(i);
        }
        sink
    });
    print_table_row(
        &[
            "bitpacked_get".to_string(),
            fmt_duration(elapsed),
            format!("{:.2}", cycles_per_element(elapsed, lookups)),
        ],
        &widths,
    );
}
