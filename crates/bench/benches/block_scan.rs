//! Criterion benchmark for Data Block scans: SARGable predicate evaluation on
//! compressed data vs the bit-packed baseline, and point accesses (Table 3 flavour).

use bitpack::BitPackedColumn;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use datablocks::builder::{freeze, int_column};
use datablocks::{scan_collect, Restriction, ScanOptions};

fn bench_scan(c: &mut Criterion) {
    let n = 1usize << 16;
    let values: Vec<i64> = {
        let mut x = 7u64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 65_537) as i64
            })
            .collect()
    };
    let block = freeze(&[int_column(values.clone())]);
    let packed = BitPackedColumn::pack(&values.iter().map(|&v| v as u32).collect::<Vec<_>>(), 17);
    let hi = 65_537 / 4; // ~25% selectivity

    let mut group = c.benchmark_group("sarg_scan_64k");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    group.bench_function("datablocks", |b| {
        let options = ScanOptions { use_sma: false, use_psma: false, ..ScanOptions::default() };
        b.iter(|| scan_collect(&block, &[Restriction::between(0, 0i64, hi)], options))
    });
    group.bench_function("bitpacked_robust", |b| {
        let mut out = Vec::with_capacity(n);
        b.iter(|| packed.scan_between_robust(0, hi as u32, &mut out))
    });
    group.finish();

    let mut group = c.benchmark_group("point_access");
    group.sample_size(20);
    group.bench_function("datablock_get", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % n;
            block.get(i, 0)
        })
    });
    group.bench_function("bitpacked_get", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 7919) % n;
            packed.get(i)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
