//! Criterion micro-benchmarks for the SIMD find/reduce kernels (Figures 8 and 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dbsimd::{find_matches, reduce_matches, IsaLevel, RangePredicate};

fn data_u32(n: usize, modulus: u32) -> Vec<u32> {
    let mut x = 0x9E37_79B9u32;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x % modulus
        })
        .collect()
}

fn bench_find(c: &mut Criterion) {
    let n = 1 << 16;
    let data = data_u32(n, 1000);
    let pred = RangePredicate::between(0u32, 199); // 20% selectivity
    let mut group = c.benchmark_group("find_matches_u32");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    for isa in IsaLevel::available() {
        group.bench_with_input(BenchmarkId::from_parameter(isa), &isa, |b, &isa| {
            let mut out = Vec::with_capacity(n);
            b.iter(|| {
                out.clear();
                find_matches(isa, &data, &pred, 0, &mut out)
            });
        });
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let n = 1 << 16;
    let data = data_u32(n, 1000);
    let first = RangePredicate::between(0u32, 499);
    let second = RangePredicate::between(200u32, 700);
    let mut initial = Vec::new();
    find_matches(IsaLevel::Scalar, &data, &first, 0, &mut initial);
    let mut group = c.benchmark_group("reduce_matches_u32");
    group.throughput(Throughput::Elements(initial.len() as u64));
    group.sample_size(20);
    for isa in IsaLevel::available() {
        group.bench_with_input(BenchmarkId::from_parameter(isa), &isa, |b, &isa| {
            let mut work = Vec::with_capacity(initial.len());
            b.iter(|| {
                work.clone_from(&initial);
                reduce_matches(isa, &data, &second, 0, &mut work)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_find, bench_reduce);
criterion_main!(benches);
