//! Micro-benchmarks for the SIMD find/reduce kernels (Figures 8 and 9).
//!
//! Hand-rolled harness (`harness = false`): the build environment has no crates.io
//! access, so Criterion is unavailable. Each case runs a warm-up plus the median of
//! several timed repetitions via [`db_bench::time_median`].

use db_bench::{
    cycles_per_element, fmt_duration, print_table_header, print_table_row, time_median,
};
use dbsimd::{find_matches, reduce_matches, IsaLevel, RangePredicate};

fn data_u32(n: usize, modulus: u32) -> Vec<u32> {
    let mut x = 0x9E37_79B9u32;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x % modulus
        })
        .collect()
}

fn main() {
    let n = 1 << 16;
    let data = data_u32(n, 1000);
    let widths = [24usize, 12, 14, 12];
    let header = ["kernel / ISA", "median", "cycles/elem", "matches"];

    print_table_header("find_matches_u32 (20% selectivity)", &header, &widths);
    let pred = RangePredicate::between(0u32, 199);
    for isa in IsaLevel::available() {
        let mut out = Vec::with_capacity(n);
        let (found, elapsed) = time_median(20, || {
            out.clear();
            find_matches(isa, &data, &pred, 0, &mut out)
        });
        print_table_row(
            &[
                format!("find/{isa}"),
                fmt_duration(elapsed),
                format!("{:.2}", cycles_per_element(elapsed, n)),
                format!("{found}"),
            ],
            &widths,
        );
    }

    print_table_header("reduce_matches_u32", &header, &widths);
    let first = RangePredicate::between(0u32, 499);
    let second = RangePredicate::between(200u32, 700);
    let mut initial = Vec::new();
    find_matches(IsaLevel::Scalar, &data, &first, 0, &mut initial);
    for isa in IsaLevel::available() {
        let mut work = Vec::with_capacity(initial.len());
        let (kept, elapsed) = time_median(20, || {
            work.clone_from(&initial);
            reduce_matches(isa, &data, &second, 0, &mut work)
        });
        print_table_row(
            &[
                format!("reduce/{isa}"),
                fmt_duration(elapsed),
                format!("{:.2}", cycles_per_element(elapsed, initial.len())),
                format!("{kept}"),
            ],
            &widths,
        );
    }
}
