//! # net — the query service's wire protocol
//!
//! A dependency-free (`std::net`) TCP front end over the multi-tenant
//! [`QueryService`](crate::QueryService), plus the matching blocking client.
//! The protocol is framed, checksummed, versioned, and credit-flow-controlled;
//! its normative byte-level specification lives in `crates/query/README.md`
//! (§ "Wire protocol") — [`frame`] implements it, [`server`] and [`client`]
//! speak it.
//!
//! Design goals, in order:
//!
//! 1. **Streaming, bounded memory.** Results travel as `RESULT_BATCH` frames
//!    as execution produces them. The server never buffers more than the
//!    connection's credit *window* of un-consumed batches: a slow client
//!    backpressures the executor, which backpressures the scan's bounded
//!    reorder channel. Server-side buffering is O(window), not O(result).
//! 2. **Out-of-band cancellation.** A `CANCEL` frame is handled by the
//!    connection's reader thread while the executor streams, raising the
//!    session's [`CancelToken`](crate::CancelToken); morsel workers stop at
//!    their next boundary and the client receives the typed `CANCELLED`
//!    error frame. The connection survives and can run the next query.
//! 3. **Typed errors, same taxonomy.** Error frames carry an [`ErrorCode`]
//!    mapping 1:1 onto [`crate::Error`] (plus `AUTH` and `PROTOCOL` for
//!    connection-level failures) and the error's pinned `Display` message —
//!    a wire client sees byte-identical error text to an in-process caller.
//! 4. **Robustness.** Every frame is length-prefixed (with a hard 16 MiB
//!    cap checked before allocation) and FNV-1a-checksummed. Malformed input
//!    kills one connection with a loud `PROTOCOL` error frame, never the
//!    server. Disconnects — mid-stream or idle — close the session, which
//!    deterministically returns its admission budget to the pool.
//!
//! ```no_run
//! use std::sync::Arc;
//! use query::net::{ClientConfig, WireClient, WireConfig, WireServer};
//! use query::{QueryService, ServiceConfig};
//! # fn db() -> storage::Database { unimplemented!() }
//!
//! let service = Arc::new(QueryService::new(
//!     Arc::new(db()),
//!     exec::ScanConfig::default(),
//!     ServiceConfig::default(),
//! ));
//! let server = WireServer::serve(service, "127.0.0.1:0", WireConfig::default()).unwrap();
//!
//! let mut client = WireClient::connect(server.local_addr(), &ClientConfig::default()).unwrap();
//! let mut stream = client.query_sql("SELECT count(*) FROM t").unwrap();
//! while let Some(batch) = stream.next_batch().unwrap() {
//!     println!("{} rows", batch.len());
//! }
//! server.shutdown();
//! ```

pub mod client;
pub mod frame;
pub mod server;

pub use client::{Canceller, ClientConfig, ClientError, RemoteStream, WireClient};
pub use frame::{ErrorCode, FrameError, FrameType, QueryKind, MAX_FRAME_PAYLOAD, WIRE_VERSION};
pub use server::{WireConfig, WireServer, WireServerStats};
