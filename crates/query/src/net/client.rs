//! The blocking wire client: connect, run queries, pull result batches, and
//! cancel from another thread.
//!
//! [`WireClient::connect`] performs the handshake (version, auth token,
//! session budget, requested credit window) and returns a connected client.
//! [`WireClient::query_sql`] / [`WireClient::query_ir`] send a query and
//! return a [`RemoteStream`] — the wire twin of the in-process
//! [`QueryStream`](crate::QueryStream): pull batches with
//! [`RemoteStream::next_batch`], or materialise with
//! [`RemoteStream::collect`]. Each consumed batch returns one flow-control
//! credit to the server, so a client that pulls slowly bounds what the server
//! may buffer ahead.
//!
//! [`WireClient::canceller`] hands out a [`Canceller`] — a cheap clone of the
//! connection's write half that any thread may use to send the out-of-band
//! `CANCEL` frame while the owning thread is blocked pulling batches. The
//! stream then terminates with the server's `CANCELLED` error frame (whose
//! message is the pinned `"query cancelled"` rendering).
//!
//! A [`RemoteStream`] dropped before its terminal frame leaves result frames
//! in flight, so the connection is poisoned: further queries fail with
//! [`ClientError::Poisoned`] and the socket is closed without `GOODBYE` on
//! drop. Drain a stream (to `Ok(None)` or an error) to keep the connection
//! reusable.

use std::io::{self, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};

use datablocks::DataType;
use exec::Batch;

use super::frame::{
    decode_batch, decode_done, decode_error, decode_hello_ok, decode_schema, encode_credit,
    encode_hello, encode_query, read_frame, write_frame, ErrorCode, FrameError, FrameType, Hello,
    QueryKind, WIRE_VERSION,
};

/// What a client presents (and requests) at handshake time.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Auth token; must match the server's
    /// [`WireConfig::auth_token`](super::WireConfig::auth_token).
    pub auth_token: String,
    /// Memory budget the session's queries request from the service pool.
    /// A budget larger than the pool is refused at the handshake.
    pub budget_bytes: u64,
    /// Requested credit window (the server may grant less; see
    /// [`WireClient::window`]).
    pub window: u32,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            auth_token: String::new(),
            budget_bytes: 32 << 20,
            window: 4,
        }
    }
}

/// Everything that can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, hangup).
    Io(io::Error),
    /// A received frame failed to parse or verify.
    Frame(FrameError),
    /// The server answered with a typed `ERROR` frame. For service errors
    /// the message is the pinned `Display` rendering of the corresponding
    /// [`crate::Error`] (so `code == Cancelled` comes with
    /// `"query cancelled"`).
    Remote {
        /// The wire error code.
        code: ErrorCode,
        /// The server's error message.
        message: String,
    },
    /// The server sent a frame this connection state does not allow.
    Protocol(String),
    /// A previous [`RemoteStream`] was dropped before its terminal frame;
    /// the connection cannot be resynchronized.
    Poisoned,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "wire i/o error: {err}"),
            ClientError::Frame(err) => write!(f, "wire frame error: {err}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Protocol(detail) => write!(f, "wire protocol error: {detail}"),
            ClientError::Poisoned => {
                write!(f, "connection poisoned by an undrained result stream")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> ClientError {
        ClientError::Io(err)
    }
}

impl From<FrameError> for ClientError {
    fn from(err: FrameError) -> ClientError {
        match err {
            FrameError::Io(err) => ClientError::Io(err),
            other => ClientError::Frame(other),
        }
    }
}

/// A connected wire session: one server connection, one query at a time.
pub struct WireClient {
    reader: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    window: u32,
    poisoned: bool,
}

impl WireClient {
    /// Connect and perform the handshake. A refused handshake (wrong version,
    /// bad token, over-budget) surfaces as [`ClientError::Remote`] with the
    /// server's typed error frame.
    pub fn connect(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
    ) -> Result<WireClient, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let hello = Hello {
            version: WIRE_VERSION,
            budget_bytes: config.budget_bytes,
            window: config.window,
            auth_token: config.auth_token.clone(),
        };
        write_frame(&mut stream, FrameType::Hello, &encode_hello(&hello))?;
        let (ty, payload) = read_frame(&mut stream)?;
        let window = match ty {
            FrameType::HelloOk => {
                let (version, window) = decode_hello_ok(&payload)?;
                if version != WIRE_VERSION {
                    return Err(ClientError::Protocol(format!(
                        "server speaks protocol version {version}, client speaks {WIRE_VERSION}"
                    )));
                }
                window
            }
            FrameType::Error => {
                let (code, message) = decode_error(&payload)?;
                return Err(ClientError::Remote { code, message });
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected HELLO_OK, got {other:?}"
                )))
            }
        };
        let writer = Arc::new(Mutex::new(stream.try_clone()?));
        Ok(WireClient {
            reader: stream,
            writer,
            window,
            poisoned: false,
        })
    }

    /// The credit window the server granted (≤ the requested window): the
    /// most result batches the server will send ahead of this client's
    /// consumption.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Run a SQL query; stream the result.
    pub fn query_sql(&mut self, sql: &str) -> Result<RemoteStream<'_>, ClientError> {
        self.query(QueryKind::Sql, sql)
    }

    /// Run a JSON-IR query; stream the result.
    pub fn query_ir(&mut self, ir: &str) -> Result<RemoteStream<'_>, ClientError> {
        self.query(QueryKind::Ir, ir)
    }

    fn query(&mut self, kind: QueryKind, text: &str) -> Result<RemoteStream<'_>, ClientError> {
        if self.poisoned {
            return Err(ClientError::Poisoned);
        }
        self.send(FrameType::Query, &encode_query(kind, text))?;
        // The first frame of a query's response is its schema — or the typed
        // error that prevented it from starting (parse, plan, admission).
        let (ty, payload) = read_frame(&mut self.reader)?;
        match ty {
            FrameType::ResultSchema => {
                let types = decode_schema(&payload)?;
                Ok(RemoteStream {
                    client: self,
                    types,
                    rows: 0,
                    batches: 0,
                    done: false,
                })
            }
            FrameType::Error => {
                let (code, message) = decode_error(&payload)?;
                Err(ClientError::Remote { code, message })
            }
            other => {
                self.poisoned = true;
                Err(ClientError::Protocol(format!(
                    "expected RESULT_SCHEMA or ERROR, got {other:?}"
                )))
            }
        }
    }

    /// A handle that can send the out-of-band `CANCEL` frame from any thread
    /// — including while this client is blocked in
    /// [`RemoteStream::next_batch`].
    pub fn canceller(&self) -> Canceller {
        Canceller {
            writer: Arc::clone(&self.writer),
        }
    }

    fn send(&self, ty: FrameType, payload: &[u8]) -> Result<(), ClientError> {
        let mut stream = self.writer.lock().expect("wire client writer");
        Ok(write_frame(&mut *stream, ty, payload)?)
    }

    /// Send raw bytes down the connection — deliberately bypassing the frame
    /// codec. This exists for protocol-robustness tests (malformed magic,
    /// corrupt checksums, oversized lengths); a well-behaved client never
    /// needs it.
    pub fn send_raw(&self, bytes: &[u8]) -> Result<(), ClientError> {
        let mut stream = self.writer.lock().expect("wire client writer");
        stream.write_all(bytes)?;
        stream.flush()?;
        Ok(())
    }

    /// Read the next raw frame off the connection — for tests asserting on
    /// the server's error frames after [`WireClient::send_raw`]. Poisons the
    /// client for further queries.
    pub fn read_raw_frame(&mut self) -> Result<(FrameType, Vec<u8>), ClientError> {
        self.poisoned = true;
        Ok(read_frame(&mut self.reader)?)
    }
}

impl std::fmt::Debug for WireClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireClient")
            .field("window", &self.window)
            .field("poisoned", &self.poisoned)
            .finish_non_exhaustive()
    }
}

impl Drop for WireClient {
    fn drop(&mut self) {
        // A clean goodbye lets the server drain deterministically; a poisoned
        // connection just hangs up (the server treats EOF as a disconnect and
        // reclaims the session budget either way).
        if !self.poisoned {
            let _ = self.send(FrameType::Goodbye, &[]);
        }
        let _ = self.reader.shutdown(Shutdown::Both);
    }
}

/// A cloneable handle for the out-of-band `CANCEL` frame.
#[derive(Clone)]
pub struct Canceller {
    writer: Arc<Mutex<TcpStream>>,
}

impl Canceller {
    /// Ask the server to cancel the connection's in-flight query. The running
    /// [`RemoteStream`] then terminates with a `CANCELLED` error frame (unless
    /// the query finished first). Errors are ignored — a cancel racing a
    /// closed connection is moot.
    pub fn cancel(&self) {
        let mut stream = self.writer.lock().expect("wire client writer");
        let _ = write_frame(&mut *stream, FrameType::Cancel, &[]);
    }
}

/// A streaming query result arriving over the wire. Pull with
/// [`RemoteStream::next_batch`]; every consumed batch is credited back to the
/// server, re-opening its flow-control window.
pub struct RemoteStream<'a> {
    client: &'a mut WireClient,
    types: Vec<DataType>,
    rows: u64,
    batches: u32,
    done: bool,
}

impl RemoteStream<'_> {
    /// Column types of the stream's batches (from the `RESULT_SCHEMA` frame).
    pub fn output_types(&self) -> &[DataType] {
        &self.types
    }

    /// Rows received so far.
    pub fn rows_received(&self) -> u64 {
        self.rows
    }

    /// Pull the next batch. `Ok(None)` once the query completed (the server's
    /// `RESULT_DONE` totals are verified against what was received); an `Err`
    /// is terminal. Server-side failures — including cancellation — arrive as
    /// [`ClientError::Remote`].
    pub fn next_batch(&mut self) -> Result<Option<Batch>, ClientError> {
        if self.done {
            return Ok(None);
        }
        let (ty, payload) = match read_frame(&mut self.client.reader) {
            Ok(frame) => frame,
            Err(err) => {
                self.done = true;
                self.client.poisoned = true;
                return Err(err.into());
            }
        };
        match ty {
            FrameType::ResultBatch => {
                let batch = decode_batch(&payload, &self.types)?;
                self.rows += batch.len() as u64;
                self.batches += 1;
                // Credit the batch back immediately: this client's window
                // re-opens as fast as it pulls.
                self.client.send(FrameType::Credit, &encode_credit(1))?;
                Ok(Some(batch))
            }
            FrameType::ResultDone => {
                self.done = true;
                let (rows, batches) = decode_done(&payload)?;
                if rows != self.rows || batches != self.batches {
                    self.client.poisoned = true;
                    return Err(ClientError::Protocol(format!(
                        "RESULT_DONE says {rows} rows / {batches} batches, received {} / {}",
                        self.rows, self.batches
                    )));
                }
                Ok(None)
            }
            FrameType::Error => {
                self.done = true;
                let (code, message) = decode_error(&payload)?;
                Err(ClientError::Remote { code, message })
            }
            other => {
                self.done = true;
                self.client.poisoned = true;
                Err(ClientError::Protocol(format!(
                    "expected a result frame, got {other:?}"
                )))
            }
        }
    }

    /// Drain the stream into one materialised [`Batch`].
    pub fn collect(mut self) -> Result<Batch, ClientError> {
        let mut out = Batch::new(&self.types.clone());
        while let Some(batch) = self.next_batch()? {
            out.append(&batch);
        }
        Ok(out)
    }
}

impl Drop for RemoteStream<'_> {
    fn drop(&mut self) {
        if !self.done {
            // Result frames are still in flight; the connection cannot serve
            // another query.
            self.client.poisoned = true;
        }
    }
}

impl Iterator for RemoteStream<'_> {
    type Item = Result<Batch, ClientError>;

    /// Iterator view: `Some(Err(_))` exactly once on failure, then `None`.
    fn next(&mut self) -> Option<Result<Batch, ClientError>> {
        self.next_batch().transpose()
    }
}
