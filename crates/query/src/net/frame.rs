//! The wire frame codec: length-prefixed, checksummed frames and the payload
//! encodings of every message of the protocol.
//!
//! The byte-level layout is normative and specified in
//! `crates/query/README.md` (§ "Wire protocol"); this module is its
//! implementation. Every frame is
//!
//! ```text
//! [magic "DBWP": 4][type: u8][len: u32 LE][payload: len bytes][checksum: u64 LE]
//! ```
//!
//! with the checksum an FNV-1a 64 ([`datablocks::frame::fnv1a64`], the same
//! function protecting the on-disk block frames and manifest records) over
//! `type || len || payload`. All multi-byte integers are little-endian,
//! matching the on-disk formats.

use std::io::{self, Read, Write};

use datablocks::frame::fnv1a64;
use datablocks::{DataType, Value};
use exec::Batch;

/// Frame magic: `DBWP` ("Data Blocks Wire Protocol").
pub const WIRE_MAGIC: [u8; 4] = *b"DBWP";

/// Protocol version carried in the handshake. A server speaking a different
/// version rejects the hello with [`ErrorCode::Protocol`].
pub const WIRE_VERSION: u16 = 1;

/// Hard cap on a frame's payload length. A `len` beyond this is rejected
/// *before* any allocation — a corrupt or hostile length prefix must not make
/// the server reserve gigabytes.
pub const MAX_FRAME_PAYLOAD: usize = 16 << 20;

/// Frame envelope overhead: magic + type + len + trailing checksum.
pub const FRAME_OVERHEAD: usize = 4 + 1 + 4 + 8;

/// Frame types (the `type` byte of the envelope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Client → server: protocol version, auth token, budget, credit window.
    Hello = 0x01,
    /// Server → client: handshake accepted (version + granted window).
    HelloOk = 0x02,
    /// Client → server: run a query (SQL text or JSON-IR document).
    Query = 0x03,
    /// Server → client: the output schema of the running query.
    ResultSchema = 0x04,
    /// Server → client: one result batch (consumes one window credit).
    ResultBatch = 0x05,
    /// Server → client: the query finished (total rows + batches).
    ResultDone = 0x06,
    /// Server → client: a typed error (see [`ErrorCode`]).
    Error = 0x07,
    /// Client → server, out of band: cancel the in-flight query.
    Cancel = 0x08,
    /// Client → server: return `n` window credits (batches consumed).
    Credit = 0x09,
    /// Client → server: graceful goodbye; the server closes the connection.
    Goodbye = 0x0a,
}

impl FrameType {
    fn from_u8(byte: u8) -> Option<FrameType> {
        Some(match byte {
            0x01 => FrameType::Hello,
            0x02 => FrameType::HelloOk,
            0x03 => FrameType::Query,
            0x04 => FrameType::ResultSchema,
            0x05 => FrameType::ResultBatch,
            0x06 => FrameType::ResultDone,
            0x07 => FrameType::Error,
            0x08 => FrameType::Cancel,
            0x09 => FrameType::Credit,
            0x0a => FrameType::Goodbye,
            _ => return None,
        })
    }
}

/// Error codes of an [`FrameType::Error`] frame — the wire rendering of the
/// [`crate::Error`] taxonomy plus the two connection-level failures that have
/// no in-process equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Parse / schema / planning failure ([`crate::Error::Query`]).
    Query = 1,
    /// Unreadable spilled block ([`crate::Error::ColdRead`]).
    ColdRead = 2,
    /// Admission rejection ([`crate::Error::OverBudget`]).
    OverBudget = 3,
    /// Other I/O failure ([`crate::Error::Io`]).
    Io = 4,
    /// The query was cancelled ([`crate::Error::Cancelled`]).
    Cancelled = 5,
    /// The handshake's auth token was rejected.
    Auth = 6,
    /// A malformed, oversized or out-of-order frame (or a version mismatch).
    Protocol = 7,
}

impl ErrorCode {
    /// Decode the code byte of an error frame.
    pub fn from_u8(byte: u8) -> Option<ErrorCode> {
        Some(match byte {
            1 => ErrorCode::Query,
            2 => ErrorCode::ColdRead,
            3 => ErrorCode::OverBudget,
            4 => ErrorCode::Io,
            5 => ErrorCode::Cancelled,
            6 => ErrorCode::Auth,
            7 => ErrorCode::Protocol,
            _ => return None,
        })
    }

    /// The wire code of a service error. The error *message* on the wire is
    /// the error's pinned `Display` rendering, so clients see the exact text
    /// in-process callers see.
    pub fn of_error(err: &crate::Error) -> ErrorCode {
        match err {
            crate::Error::Query(_) => ErrorCode::Query,
            crate::Error::ColdRead(_) => ErrorCode::ColdRead,
            crate::Error::OverBudget { .. } => ErrorCode::OverBudget,
            crate::Error::Io(_) => ErrorCode::Io,
            crate::Error::Cancelled => ErrorCode::Cancelled,
        }
    }
}

/// Why a frame could not be read. [`FrameError::Io`] wraps transport
/// failures (including EOF); everything else is a protocol violation the
/// server answers with a loud [`ErrorCode::Protocol`] error frame before
/// closing the connection.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure or peer hangup.
    Io(io::Error),
    /// The 4 magic bytes were wrong — the peer is not speaking this protocol.
    BadMagic([u8; 4]),
    /// Unknown frame-type byte.
    BadType(u8),
    /// Declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized(usize),
    /// The trailing checksum did not match the frame body.
    BadChecksum {
        /// Checksum carried by the frame.
        expected: u64,
        /// Checksum computed over the received body.
        actual: u64,
    },
    /// The payload did not decode as the frame type's message.
    BadPayload(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(err) => write!(f, "i/o: {err}"),
            FrameError::BadMagic(magic) => write!(f, "bad frame magic {magic:02x?}"),
            FrameError::BadType(byte) => write!(f, "unknown frame type 0x{byte:02x}"),
            FrameError::Oversized(len) => write!(
                f,
                "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte limit"
            ),
            FrameError::BadChecksum { expected, actual } => write!(
                f,
                "frame checksum mismatch: header says {expected:#018x}, body hashes to {actual:#018x}"
            ),
            FrameError::BadPayload(what) => write!(f, "malformed {what} payload"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(err: io::Error) -> FrameError {
        FrameError::Io(err)
    }
}

/// Serialize one frame into a writer (a single buffered `write_all`, so a
/// frame is never interleaved with another writer holding the same lock).
pub fn write_frame(w: &mut impl Write, ty: FrameType, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    buf.extend_from_slice(&WIRE_MAGIC);
    buf.push(ty as u8);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let checksum = fnv1a64(&buf[4..]);
    buf.extend_from_slice(&checksum.to_le_bytes());
    w.write_all(&buf)?;
    w.flush()
}

/// Read and verify one frame. Length is validated against
/// [`MAX_FRAME_PAYLOAD`] *before* the payload is allocated or read.
pub fn read_frame(r: &mut impl Read) -> Result<(FrameType, Vec<u8>), FrameError> {
    let mut head = [0u8; 9];
    r.read_exact(&mut head)?;
    if head[0..4] != WIRE_MAGIC {
        return Err(FrameError::BadMagic([head[0], head[1], head[2], head[3]]));
    }
    let ty = FrameType::from_u8(head[4]).ok_or(FrameError::BadType(head[4]))?;
    let len = u32::from_le_bytes([head[5], head[6], head[7], head[8]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let mut checksum = [0u8; 8];
    r.read_exact(&mut checksum)?;
    let expected = u64::from_le_bytes(checksum);
    let mut body = Vec::with_capacity(5 + len);
    body.push(head[4]);
    body.extend_from_slice(&head[5..9]);
    body.extend_from_slice(&payload);
    let actual = fnv1a64(&body);
    if actual != expected {
        return Err(FrameError::BadChecksum { expected, actual });
    }
    Ok((ty, payload))
}

// ------------------------------------------------------------------- payloads

/// The decoded `HELLO` message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the client speaks ([`WIRE_VERSION`]).
    pub version: u16,
    /// Memory budget (bytes) the session's queries request from the pool.
    pub budget_bytes: u64,
    /// Requested credit window (max unacknowledged result batches).
    pub window: u32,
    /// Auth token; must match the server's configured token.
    pub auth_token: String,
}

/// Encode a `HELLO` payload.
pub fn encode_hello(hello: &Hello) -> Vec<u8> {
    let auth = hello.auth_token.as_bytes();
    let mut buf = Vec::with_capacity(2 + 8 + 4 + 2 + auth.len());
    buf.extend_from_slice(&hello.version.to_le_bytes());
    buf.extend_from_slice(&hello.budget_bytes.to_le_bytes());
    buf.extend_from_slice(&hello.window.to_le_bytes());
    buf.extend_from_slice(&(auth.len() as u16).to_le_bytes());
    buf.extend_from_slice(auth);
    buf
}

/// Decode a `HELLO` payload.
pub fn decode_hello(payload: &[u8]) -> Result<Hello, FrameError> {
    let mut c = Cursor::new(payload);
    let version = c.u16()?;
    let budget_bytes = c.u64()?;
    let window = c.u32()?;
    let auth_len = c.u16()? as usize;
    let auth_token = c.str(auth_len)?;
    c.done()?;
    Ok(Hello {
        version,
        budget_bytes,
        window,
        auth_token,
    })
}

/// Encode a `HELLO_OK` payload (version + granted window).
pub fn encode_hello_ok(version: u16, window: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(6);
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&window.to_le_bytes());
    buf
}

/// Decode a `HELLO_OK` payload into `(version, granted window)`.
pub fn decode_hello_ok(payload: &[u8]) -> Result<(u16, u32), FrameError> {
    let mut c = Cursor::new(payload);
    let version = c.u16()?;
    let window = c.u32()?;
    c.done()?;
    Ok((version, window))
}

/// The query surface a `QUERY` frame addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// The payload text is SQL.
    Sql,
    /// The payload text is a JSON-IR document.
    Ir,
}

/// Encode a `QUERY` payload.
pub fn encode_query(kind: QueryKind, text: &str) -> Vec<u8> {
    let bytes = text.as_bytes();
    let mut buf = Vec::with_capacity(1 + 4 + bytes.len());
    buf.push(match kind {
        QueryKind::Sql => 0,
        QueryKind::Ir => 1,
    });
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
    buf
}

/// Decode a `QUERY` payload.
pub fn decode_query(payload: &[u8]) -> Result<(QueryKind, String), FrameError> {
    let mut c = Cursor::new(payload);
    let kind = match c.u8()? {
        0 => QueryKind::Sql,
        1 => QueryKind::Ir,
        _ => return Err(FrameError::BadPayload("query kind")),
    };
    let len = c.u32()? as usize;
    let text = c.str(len)?;
    c.done()?;
    Ok((kind, text))
}

fn type_code(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Str => 2,
    }
}

fn code_type(code: u8) -> Result<DataType, FrameError> {
    Ok(match code {
        0 => DataType::Int,
        1 => DataType::Double,
        2 => DataType::Str,
        _ => return Err(FrameError::BadPayload("column type")),
    })
}

/// Encode a `RESULT_SCHEMA` payload.
pub fn encode_schema(types: &[DataType]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2 + types.len());
    buf.extend_from_slice(&(types.len() as u16).to_le_bytes());
    buf.extend(types.iter().map(|&t| type_code(t)));
    buf
}

/// Decode a `RESULT_SCHEMA` payload.
pub fn decode_schema(payload: &[u8]) -> Result<Vec<DataType>, FrameError> {
    let mut c = Cursor::new(payload);
    let ncols = c.u16()? as usize;
    let mut types = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        types.push(code_type(c.u8()?)?);
    }
    c.done()?;
    Ok(types)
}

/// Encode a `RESULT_BATCH` payload: row count, column count, then each column
/// as `[type u8][null bitmap][values]` (values of every row; NULL rows carry
/// the type's default so decode needs no branching on lengths).
pub fn encode_batch(batch: &Batch) -> Vec<u8> {
    let rows = batch.len();
    let mut buf = Vec::with_capacity(16 + rows * 8 * batch.column_count().max(1));
    buf.extend_from_slice(&(rows as u32).to_le_bytes());
    buf.extend_from_slice(&(batch.column_count() as u16).to_le_bytes());
    for column in batch.columns() {
        buf.push(type_code(column.data_type()));
        let mut bitmap = vec![0u8; rows.div_ceil(8)];
        for row in 0..rows {
            if column.is_null(row) {
                bitmap[row / 8] |= 1 << (row % 8);
            }
        }
        buf.extend_from_slice(&bitmap);
        for row in 0..rows {
            match column.get(row) {
                Value::Int(v) => buf.extend_from_slice(&v.to_le_bytes()),
                Value::Double(v) => buf.extend_from_slice(&v.to_bits().to_le_bytes()),
                Value::Str(v) => {
                    buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    buf.extend_from_slice(v.as_bytes());
                }
                Value::Null => match column.data_type() {
                    DataType::Int => buf.extend_from_slice(&0i64.to_le_bytes()),
                    DataType::Double => buf.extend_from_slice(&0f64.to_bits().to_le_bytes()),
                    DataType::Str => buf.extend_from_slice(&0u32.to_le_bytes()),
                },
            }
        }
    }
    buf
}

/// Decode a `RESULT_BATCH` payload. `types` is the schema announced by the
/// query's `RESULT_SCHEMA` frame; a column-count or type mismatch is a
/// protocol error.
pub fn decode_batch(payload: &[u8], types: &[DataType]) -> Result<Batch, FrameError> {
    let mut c = Cursor::new(payload);
    let rows = c.u32()? as usize;
    let ncols = c.u16()? as usize;
    if ncols != types.len() {
        return Err(FrameError::BadPayload("batch column count"));
    }
    let mut columns = Vec::with_capacity(ncols);
    for &ty in types {
        if code_type(c.u8()?)? != ty {
            return Err(FrameError::BadPayload("batch column type"));
        }
        let bitmap = c.bytes(rows.div_ceil(8))?.to_vec();
        let mut column = datablocks::Column::new(ty);
        for row in 0..rows {
            let null = bitmap[row / 8] & (1 << (row % 8)) != 0;
            let value = match ty {
                DataType::Int => Value::Int(c.u64()? as i64),
                DataType::Double => Value::Double(f64::from_bits(c.u64()?)),
                DataType::Str => {
                    let len = c.u32()? as usize;
                    Value::Str(c.str(len)?)
                }
            };
            column.push(if null { Value::Null } else { value });
        }
        columns.push(column);
    }
    c.done()?;
    Ok(Batch::from_columns(columns))
}

/// Encode a `RESULT_DONE` payload (total rows + batches of the query).
pub fn encode_done(rows: u64, batches: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12);
    buf.extend_from_slice(&rows.to_le_bytes());
    buf.extend_from_slice(&batches.to_le_bytes());
    buf
}

/// Decode a `RESULT_DONE` payload into `(rows, batches)`.
pub fn decode_done(payload: &[u8]) -> Result<(u64, u32), FrameError> {
    let mut c = Cursor::new(payload);
    let rows = c.u64()?;
    let batches = c.u32()?;
    c.done()?;
    Ok((rows, batches))
}

/// Encode an `ERROR` payload.
pub fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let bytes = message.as_bytes();
    let mut buf = Vec::with_capacity(1 + 4 + bytes.len());
    buf.push(code as u8);
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
    buf
}

/// Decode an `ERROR` payload into `(code, message)`.
pub fn decode_error(payload: &[u8]) -> Result<(ErrorCode, String), FrameError> {
    let mut c = Cursor::new(payload);
    let code = ErrorCode::from_u8(c.u8()?).ok_or(FrameError::BadPayload("error code"))?;
    let len = c.u32()? as usize;
    let message = c.str(len)?;
    c.done()?;
    Ok((code, message))
}

/// Encode a `CREDIT` payload (`n` credits returned).
pub fn encode_credit(n: u32) -> Vec<u8> {
    n.to_le_bytes().to_vec()
}

/// Decode a `CREDIT` payload.
pub fn decode_credit(payload: &[u8]) -> Result<u32, FrameError> {
    let mut c = Cursor::new(payload);
    let n = c.u32()?;
    c.done()?;
    Ok(n)
}

/// A bounds-checked little-endian reader over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(FrameError::BadPayload("truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn str(&mut self, n: usize) -> Result<String, FrameError> {
        String::from_utf8(self.bytes(n)?.to_vec())
            .map_err(|_| FrameError::BadPayload("invalid utf-8"))
    }

    /// Every payload byte must be consumed — trailing garbage is a protocol
    /// error, not something to silently ignore.
    fn done(&self) -> Result<(), FrameError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(FrameError::BadPayload("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_checksum() {
        let payload = encode_query(QueryKind::Sql, "SELECT 1");
        let mut wire = Vec::new();
        write_frame(&mut wire, FrameType::Query, &payload).unwrap();
        assert_eq!(wire.len(), FRAME_OVERHEAD + payload.len());
        let (ty, decoded) = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(ty, FrameType::Query);
        assert_eq!(decoded, payload);

        // A flipped payload bit must fail the checksum loudly.
        let mut corrupt = wire.clone();
        corrupt[12] ^= 0x40;
        assert!(matches!(
            read_frame(&mut corrupt.as_slice()),
            Err(FrameError::BadChecksum { .. })
        ));

        // Wrong magic is rejected before anything is read.
        let mut bad_magic = wire.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad_magic.as_slice()),
            Err(FrameError::BadMagic(_))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&WIRE_MAGIC);
        wire.push(FrameType::Query as u8);
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn hello_roundtrip() {
        let hello = Hello {
            version: WIRE_VERSION,
            budget_bytes: 32 << 20,
            window: 4,
            auth_token: "secret".into(),
        };
        assert_eq!(decode_hello(&encode_hello(&hello)).unwrap(), hello);
    }

    #[test]
    fn batch_roundtrip_with_nulls() {
        let types = [DataType::Int, DataType::Double, DataType::Str];
        let batch = Batch::from_rows(
            &types,
            &[
                vec![Value::Int(-7), Value::Double(1.5), Value::Str("a".into())],
                vec![Value::Null, Value::Null, Value::Null],
                vec![Value::Int(9), Value::Double(-0.0), Value::Str("".into())],
            ],
        );
        let decoded = decode_batch(&encode_batch(&batch), &types).unwrap();
        assert_eq!(decoded.len(), batch.len());
        for row in 0..batch.len() {
            assert_eq!(decoded.row(row), batch.row(row));
        }
        // Schema mismatch is a loud protocol error.
        assert!(decode_batch(&encode_batch(&batch), &[DataType::Int]).is_err());
    }
}
