//! The wire server: a dependency-free `std::net` TCP front end over a
//! [`QueryService`].
//!
//! Each accepted connection is served by **two** threads:
//!
//! * the **executor** thread performs the handshake, then runs queued queries
//!   one at a time, draining each [`QueryStream`](crate::QueryStream) into
//!   `RESULT_BATCH` frames under credit-based flow control;
//! * the **reader** thread owns the socket's read half and parses incoming
//!   frames — `QUERY` and `GOODBYE` are queued for the executor, `CREDIT`
//!   replenishes the flow-control window, and `CANCEL` raises the session's
//!   [`CancelToken`] *immediately*, out of band, so a query streaming (or
//!   blocked on credits) is stopped at its next morsel boundary even while
//!   the executor is busy.
//!
//! Flow control bounds the server's memory: a query's results may be at most
//! `window` un-credited batches ahead of the client. A slow client therefore
//! backpressures the executor, which backpressures the parallel scan's bounded
//! reorder channel — server-side buffering is **O(window)**, never
//! O(result size). The high-water mark is recorded in
//! [`WireServerStats::peak_unacked_batches`] so tests can assert the bound.
//!
//! Connection lifecycle: malformed, oversized or out-of-order frames are
//! answered with a `PROTOCOL` error frame and the connection is closed — the
//! server itself and its other connections are unaffected. A connection idle
//! longer than [`WireConfig::idle_timeout`] (no frames, no running query) is
//! reaped. [`WireServer::shutdown`] drains gracefully: the listener stops
//! accepting, in-flight queries finish, idle connections close, and every
//! connection thread is joined. Whatever ends a connection, its session is
//! [closed](crate::Session::close), so the client's admission budget returns
//! to the pool deterministically — not whenever drop order gets around to it.

use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use exec::CancelToken;

use super::frame::{
    decode_credit, decode_hello, decode_query, encode_done, encode_error, encode_hello_ok,
    encode_schema, read_frame, write_frame, ErrorCode, FrameError, FrameType, QueryKind,
    WIRE_VERSION,
};
use crate::net::frame::encode_batch;
use crate::service::{Error, QueryService, Session};

/// How often the reader thread wakes to check idle/drain state when no frame
/// is arriving.
const READ_TICK: Duration = Duration::from_millis(200);

/// Configuration of a [`WireServer`].
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Shared-secret auth token; a `HELLO` whose token differs is refused
    /// with an `AUTH` error frame.
    pub auth_token: String,
    /// Upper bound on the per-connection credit window; a `HELLO` requesting
    /// more is granted this much (requests of 0 are granted 1).
    pub max_window: u32,
    /// Connections with no running query and no incoming frames for this long
    /// are closed.
    pub idle_timeout: Duration,
    /// How long a freshly accepted connection may take to send its `HELLO`.
    pub handshake_timeout: Duration,
}

impl Default for WireConfig {
    fn default() -> WireConfig {
        WireConfig {
            auth_token: String::new(),
            max_window: 8,
            idle_timeout: Duration::from_secs(30),
            handshake_timeout: Duration::from_secs(5),
        }
    }
}

/// Counters of a running [`WireServer`] (see [`WireServer::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireServerStats {
    /// Connections accepted since the server started.
    pub connections: u64,
    /// Connections currently being served.
    pub active_connections: usize,
    /// Queries received over the wire.
    pub queries: u64,
    /// Frames refused as protocol violations (bad magic, bad checksum,
    /// oversized, out of order, ...).
    pub protocol_errors: u64,
    /// High-water mark of result batches sent but not yet credited back by
    /// any one connection — the observable server-side buffering bound
    /// (never exceeds the largest granted window).
    pub peak_unacked_batches: u32,
}

/// A running TCP front end over a [`QueryService`]. Dropping the handle shuts
/// the server down (gracefully — see [`WireServer::shutdown`]).
pub struct WireServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

struct ServerShared {
    service: Arc<QueryService>,
    config: WireConfig,
    draining: AtomicBool,
    connections: AtomicU64,
    active: AtomicUsize,
    queries: AtomicU64,
    protocol_errors: AtomicU64,
    peak_unacked: AtomicU32,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

impl WireServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `service` in background threads. Returns once the listener is bound —
    /// clients may connect immediately.
    pub fn serve(
        service: Arc<QueryService>,
        addr: impl ToSocketAddrs,
        config: WireConfig,
    ) -> io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            service,
            config,
            draining: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            queries: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            peak_unacked: AtomicU32::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("wire-accept".into())
            .spawn(move || accept_loop(&accept_shared, &listener))?;
        Ok(WireServer {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the server's counters.
    pub fn stats(&self) -> WireServerStats {
        WireServerStats {
            connections: self.shared.connections.load(Ordering::Relaxed),
            active_connections: self.shared.active.load(Ordering::Relaxed),
            queries: self.shared.queries.load(Ordering::Relaxed),
            protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
            peak_unacked_batches: self.shared.peak_unacked.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain: stop accepting, let in-flight queries finish, close
    /// idle connections, and join every server thread. Returns when the last
    /// connection is gone.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.draining.store(true, Ordering::Release);
        // Poke the blocking accept() so the loop observes the drain flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let conns = std::mem::take(&mut *self.shared.conns.lock().expect("wire conn registry"));
        for conn in conns {
            let _ = conn.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(server: &Arc<ServerShared>, listener: &TcpListener) {
    for stream in listener.incoming() {
        if server.draining.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let conn_server = Arc::clone(server);
        let handle = std::thread::Builder::new()
            .name("wire-conn".into())
            .spawn(move || serve_connection(&conn_server, stream));
        if let Ok(handle) = handle {
            server
                .conns
                .lock()
                .expect("wire conn registry")
                .push(handle);
        }
    }
}

// ------------------------------------------------------------ per-connection

/// What the reader queues for the executor.
enum Command {
    Query {
        kind: QueryKind,
        text: String,
        /// A `CANCEL` frame arrived after this query was queued but before it
        /// started executing. Starting a query re-arms the session's cancel
        /// token, so the flag re-raises it post-start — the wire ordering
        /// "QUERY then CANCEL" must cancel *this* query, not evaporate.
        pre_cancelled: bool,
    },
    Goodbye,
}

/// State shared between a connection's reader and executor threads.
struct ConnShared {
    state: Mutex<ConnState>,
    cond: Condvar,
}

struct ConnState {
    queue: VecDeque<Command>,
    /// Remaining flow-control credits of the current query's result stream.
    credits: u32,
    /// A query is executing (idle-timeout accounting ignores this time).
    running: bool,
    /// Terminal: socket error, protocol violation, idle timeout, or drain.
    dead: bool,
}

impl ConnShared {
    fn new(window: u32) -> Arc<ConnShared> {
        Arc::new(ConnShared {
            state: Mutex::new(ConnState {
                queue: VecDeque::new(),
                credits: window,
                running: false,
                dead: false,
            }),
            cond: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ConnState> {
        self.state.lock().expect("wire conn state")
    }

    /// Mark the connection terminal and cancel whatever is running.
    fn kill(&self, cancel: &CancelToken) {
        self.lock().dead = true;
        cancel.cancel();
        self.cond.notify_all();
    }
}

fn serve_connection(server: &Arc<ServerShared>, stream: TcpStream) {
    server.connections.fetch_add(1, Ordering::Relaxed);
    server.active.fetch_add(1, Ordering::Relaxed);
    let _ = connection_loop(server, stream);
    server.active.fetch_sub(1, Ordering::Relaxed);
}

/// Handshake, then serve queries until the connection ends (any way it can).
/// `Err` only for transport failures — every protocol-level refusal has
/// already been answered with an `ERROR` frame.
fn connection_loop(server: &Arc<ServerShared>, mut stream: TcpStream) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(server.config.handshake_timeout))?;
    let hello = match read_frame(&mut stream) {
        Ok((FrameType::Hello, payload)) => match decode_hello(&payload) {
            Ok(hello) => hello,
            Err(err) => return refuse(server, &stream, ErrorCode::Protocol, &err.to_string()),
        },
        Ok((ty, _)) => {
            let msg = format!("expected HELLO, got {ty:?}");
            return refuse(server, &stream, ErrorCode::Protocol, &msg);
        }
        Err(FrameError::Io(err)) => return Err(err),
        Err(err) => return refuse(server, &stream, ErrorCode::Protocol, &err.to_string()),
    };
    if hello.version != WIRE_VERSION {
        let msg = format!(
            "unsupported protocol version {} (server speaks {WIRE_VERSION})",
            hello.version
        );
        return refuse(server, &stream, ErrorCode::Protocol, &msg);
    }
    if hello.auth_token != server.config.auth_token {
        return refuse(server, &stream, ErrorCode::Auth, "authentication failed");
    }
    let budget = hello.budget_bytes as usize;
    let total = server.service.config().total_budget_bytes;
    if budget > total {
        // The same typed rejection (and exact message) in-process admission
        // gives — it just rides an ERROR frame here.
        let err = Error::OverBudget {
            requested_bytes: budget,
            total_bytes: total,
        };
        return refuse(server, &stream, ErrorCode::OverBudget, &err.to_string());
    }
    let window = hello.window.clamp(1, server.config.max_window.max(1));
    write_frame(
        &mut stream,
        FrameType::HelloOk,
        &encode_hello_ok(WIRE_VERSION, window),
    )?;

    let session = server.service.session(budget);
    let cancel = session.cancel_token();
    let conn = ConnShared::new(window);
    let writer = Arc::new(Mutex::new(stream.try_clone()?));

    let reader = {
        let server = Arc::clone(server);
        let conn = Arc::clone(&conn);
        let writer = Arc::clone(&writer);
        let cancel = cancel.clone();
        std::thread::Builder::new()
            .name("wire-read".into())
            .spawn(move || reader_loop(&server, &conn, stream, &writer, &cancel))?
    };

    executor_loop(server, &session, &conn, &writer, window);

    // Whatever ended the loop: return the budget now, stop the reader, join.
    session.close();
    conn.kill(&cancel);
    let _ = writer.lock().expect("wire writer").shutdown(Shutdown::Both);
    let _ = reader.join();
    Ok(())
}

/// Refuse the handshake with a typed error frame and close the connection.
fn refuse(
    server: &ServerShared,
    mut stream: &TcpStream,
    code: ErrorCode,
    message: &str,
) -> io::Result<()> {
    if code == ErrorCode::Protocol {
        server.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }
    write_frame(&mut stream, FrameType::Error, &encode_error(code, message))
}

// ------------------------------------------------------------------ executor

fn executor_loop(
    server: &ServerShared,
    session: &Session<'_>,
    conn: &ConnShared,
    writer: &Mutex<TcpStream>,
    window: u32,
) {
    loop {
        let command = {
            let mut state = conn.lock();
            loop {
                if state.dead {
                    return;
                }
                if let Some(command) = state.queue.pop_front() {
                    state.running = true;
                    break command;
                }
                state = conn.cond.wait(state).expect("wire conn state");
            }
        };
        let alive = match command {
            Command::Goodbye => false,
            Command::Query {
                kind,
                text,
                pre_cancelled,
            } => {
                server.queries.fetch_add(1, Ordering::Relaxed);
                run_query(
                    server,
                    session,
                    conn,
                    writer,
                    window,
                    kind,
                    &text,
                    pre_cancelled,
                )
            }
        };
        {
            let mut state = conn.lock();
            state.running = false;
            if !alive {
                state.dead = true;
            }
        }
        conn.cond.notify_all();
        if !alive {
            return;
        }
    }
}

/// Run one query and stream its result frames. Returns whether the connection
/// is still usable (query-level errors are answered and keep it alive;
/// transport failures and disconnects do not).
#[allow(clippy::too_many_arguments)]
fn run_query(
    server: &ServerShared,
    session: &Session<'_>,
    conn: &ConnShared,
    writer: &Mutex<TcpStream>,
    window: u32,
    kind: QueryKind,
    text: &str,
    pre_cancelled: bool,
) -> bool {
    // Each query starts with a full window; CREDIT frames replenish it as the
    // client consumes batches.
    conn.lock().credits = window;
    let result = match kind {
        QueryKind::Sql => session.sql(text),
        QueryKind::Ir => session.query_ir(text),
    };
    let mut stream = match result {
        Ok(stream) => stream,
        Err(err) => return send_service_error(writer, &err),
    };
    if pre_cancelled {
        // The CANCEL outran the query's start (which re-armed the token):
        // re-raise it so the first pull reports Error::Cancelled.
        session.cancel_token().cancel();
    }
    if !send(
        writer,
        FrameType::ResultSchema,
        &encode_schema(stream.output_types()),
    ) {
        return false;
    }
    let mut batches = 0u32;
    loop {
        // Flow control: block until the client has window room. A CANCEL (or
        // a dead connection) wakes us; the cancelled pull below then reports
        // Error::Cancelled after the scan workers joined.
        {
            let mut state = conn.lock();
            while state.credits == 0 && !state.dead && !session.cancel_token().is_cancelled() {
                state = conn.cond.wait(state).expect("wire conn state");
            }
            if state.dead {
                // Dropping the stream cancels + joins the scan workers.
                return false;
            }
        }
        match stream.next_batch() {
            Ok(Some(batch)) => {
                {
                    let mut state = conn.lock();
                    state.credits = state.credits.saturating_sub(1);
                    let unacked = window - state.credits;
                    server.peak_unacked.fetch_max(unacked, Ordering::Relaxed);
                }
                batches += 1;
                if !send(writer, FrameType::ResultBatch, &encode_batch(&batch)) {
                    return false;
                }
            }
            Ok(None) => {
                let done = encode_done(stream.rows_yielded(), batches);
                return send(writer, FrameType::ResultDone, &done);
            }
            Err(err) => return send_service_error(writer, &err),
        }
    }
}

fn send(writer: &Mutex<TcpStream>, ty: FrameType, payload: &[u8]) -> bool {
    let mut stream = writer.lock().expect("wire writer");
    write_frame(&mut *stream, ty, payload).is_ok()
}

/// Answer a failed query with its typed error frame: the wire code from
/// [`ErrorCode::of_error`], the message the error's pinned `Display`.
fn send_service_error(writer: &Mutex<TcpStream>, err: &Error) -> bool {
    send(
        writer,
        FrameType::Error,
        &encode_error(ErrorCode::of_error(err), &err.to_string()),
    )
}

// -------------------------------------------------------------------- reader

/// The reader thread: parses client frames until the connection dies. Runs
/// with a short read timeout so it can account idle time and observe the
/// drain flag even when the client sends nothing.
fn reader_loop(
    server: &ServerShared,
    conn: &ConnShared,
    stream: TcpStream,
    writer: &Mutex<TcpStream>,
    cancel: &CancelToken,
) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    // A peer may stall mid-frame for at most the idle timeout before we treat
    // the connection as dead.
    let max_stalls =
        (server.config.idle_timeout.as_millis() / READ_TICK.as_millis().max(1)).max(1) as u32;
    let mut idle = Duration::ZERO;
    loop {
        if conn.lock().dead {
            return;
        }
        let mut ticked = TickedReader {
            stream: &stream,
            started: false,
            stalls: 0,
            max_stalls,
        };
        match read_frame(&mut ticked) {
            Ok((ty, payload)) => {
                idle = Duration::ZERO;
                match ty {
                    FrameType::Query => match decode_query(&payload) {
                        Ok((kind, text)) => {
                            let mut state = conn.lock();
                            state.queue.push_back(Command::Query {
                                kind,
                                text,
                                pre_cancelled: false,
                            });
                            drop(state);
                            conn.cond.notify_all();
                        }
                        Err(err) => return protocol_violation(server, conn, writer, cancel, &err),
                    },
                    FrameType::Cancel => {
                        // Out of band: stop the in-flight query at its next
                        // morsel boundary, even while the executor streams. A
                        // cancel that arrives while its query is still queued
                        // is pinned to that query instead (raising the token
                        // now would be erased by the query's start re-arm).
                        let mut state = conn.lock();
                        let running = state.running;
                        match state.queue.back_mut() {
                            Some(Command::Query { pre_cancelled, .. }) if !running => {
                                *pre_cancelled = true;
                            }
                            _ => cancel.cancel(),
                        }
                        drop(state);
                        conn.cond.notify_all();
                    }
                    FrameType::Credit => match decode_credit(&payload) {
                        Ok(n) => {
                            let mut state = conn.lock();
                            state.credits = state.credits.saturating_add(n);
                            drop(state);
                            conn.cond.notify_all();
                        }
                        Err(err) => return protocol_violation(server, conn, writer, cancel, &err),
                    },
                    FrameType::Goodbye => {
                        let mut state = conn.lock();
                        state.queue.push_back(Command::Goodbye);
                        drop(state);
                        conn.cond.notify_all();
                        return;
                    }
                    other => {
                        let msg = format!("unexpected {other:?} frame");
                        send_protocol_error(server, writer, &msg);
                        conn.kill(cancel);
                        return;
                    }
                }
            }
            Err(FrameError::Io(err))
                if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
            {
                // Idle tick: no frame started within the read timeout.
                let (running, draining) = {
                    let state = conn.lock();
                    (
                        state.running || !state.queue.is_empty(),
                        server.draining.load(Ordering::Acquire),
                    )
                };
                if running {
                    idle = Duration::ZERO;
                    continue;
                }
                if draining {
                    conn.kill(cancel);
                    return;
                }
                idle += READ_TICK;
                if idle >= server.config.idle_timeout {
                    conn.kill(cancel);
                    return;
                }
            }
            Err(FrameError::Io(_)) => {
                // Disconnect (EOF, reset, mid-frame stall limit): cancel the
                // in-flight query; the executor closes the session, which
                // returns the budget.
                conn.kill(cancel);
                return;
            }
            Err(err) => return protocol_violation(server, conn, writer, cancel, &err),
        }
    }
}

/// Answer a malformed frame with a `PROTOCOL` error frame and kill the
/// connection (the stream may be desynchronized, so it cannot continue).
fn protocol_violation(
    server: &ServerShared,
    conn: &ConnShared,
    writer: &Mutex<TcpStream>,
    cancel: &CancelToken,
    err: &FrameError,
) {
    send_protocol_error(server, writer, &err.to_string());
    conn.kill(cancel);
}

fn send_protocol_error(server: &ServerShared, writer: &Mutex<TcpStream>, message: &str) {
    server.protocol_errors.fetch_add(1, Ordering::Relaxed);
    let _ = send(
        writer,
        FrameType::Error,
        &encode_error(ErrorCode::Protocol, message),
    );
}

/// A read adapter over the reader's ticked socket: a timeout **before** a
/// frame's first byte surfaces as `WouldBlock` (an idle tick for the caller),
/// but a timeout **mid-frame** retries — a frame fragmented across TCP
/// segments must not be torn by the tick — up to `max_stalls` consecutive
/// stalls, after which the peer is considered gone.
struct TickedReader<'a> {
    stream: &'a TcpStream,
    started: bool,
    stalls: u32,
    max_stalls: u32,
}

impl Read for TickedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match (&mut self.stream).read(buf) {
                Ok(n) => {
                    self.started = true;
                    self.stalls = 0;
                    return Ok(n);
                }
                Err(err)
                    if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
                        && self.started =>
                {
                    self.stalls += 1;
                    if self.stalls > self.max_stalls {
                        return Err(io::Error::new(
                            ErrorKind::TimedOut,
                            "peer stalled mid-frame",
                        ));
                    }
                }
                Err(err) => return Err(err),
            }
        }
    }
}
